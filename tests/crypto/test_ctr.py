"""Counter mode: keystream structure, roundtrips, input-block packing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES
from repro.crypto.ctr import CtrMode, make_counter_block, xor_bytes


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_self_inverse(self):
        a, b = b"hello world!", b"pad pad pad "
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            xor_bytes(b"ab", b"abc")

    def test_empty(self):
        assert xor_bytes(b"", b"") == b""


class TestCounterBlock:
    def test_packs_address_high_seqnum_low(self):
        block = make_counter_block(0x1122334455667788, 0x99AABBCCDDEEFF00)
        assert block == bytes.fromhex("112233445566778899aabbccddeeff00")

    def test_zero(self):
        assert make_counter_block(0, 0) == bytes(16)

    def test_address_truncated_to_64_bits(self):
        assert make_counter_block(1 << 64, 0) == bytes(16)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            make_counter_block(-1, 0)
        with pytest.raises(ValueError):
            make_counter_block(0, -1)

    def test_distinct_addresses_distinct_blocks(self):
        assert make_counter_block(16, 5) != make_counter_block(32, 5)


class TestCtrMode:
    def test_keystream_is_block_cipher_of_counters(self):
        key = bytes(range(16))
        ctr = CtrMode(key)
        cipher = AES(key)
        stream = ctr.keystream(counter=7, length=32)
        assert stream[:16] == cipher.encrypt_block((7).to_bytes(16, "big"))
        assert stream[16:] == cipher.encrypt_block((8).to_bytes(16, "big"))

    def test_keystream_truncates_to_length(self):
        assert len(CtrMode(bytes(16)).keystream(0, 5)) == 5

    def test_keystream_zero_length(self):
        assert CtrMode(bytes(16)).keystream(0, 0) == b""

    def test_keystream_negative_length(self):
        with pytest.raises(ValueError):
            CtrMode(bytes(16)).keystream(0, -1)

    def test_encrypt_decrypt_roundtrip(self):
        ctr = CtrMode(bytes(32))
        message = b"the secret counter mode payload"
        assert ctr.decrypt(ctr.encrypt(message, 1234), 1234) == message

    def test_decrypt_equals_encrypt(self):
        ctr = CtrMode(bytes(16))
        data = b"symmetric!"
        assert ctr.encrypt(data, 9) == ctr.decrypt(data, 9)

    def test_counter_reuse_leaks_xor(self):
        # The classic counter-mode failure the architecture must avoid:
        # same counter, two plaintexts => ciphertext XOR = plaintext XOR.
        ctr = CtrMode(bytes(16))
        p1, p2 = b"attack at dawn!!", b"retreat at dusk!"
        c1 = ctr.encrypt(p1, 42)
        c2 = ctr.encrypt(p2, 42)
        assert xor_bytes(c1, c2) == xor_bytes(p1, p2)

    def test_counter_wraps_within_128_bits(self):
        ctr = CtrMode(bytes(16))
        top = (1 << 128) - 1
        stream = ctr.keystream(top, 32)  # wraps to counter 0 mid-stream
        assert stream[16:] == ctr.keystream(0, 16)

    @given(
        message=st.binary(max_size=200),
        counter=st.integers(min_value=0, max_value=1 << 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, message, counter):
        ctr = CtrMode(bytes(24))
        assert ctr.decrypt(ctr.encrypt(message, counter), counter) == message
