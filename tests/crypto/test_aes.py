"""AES block cipher: FIPS-197 vectors, structure, and properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE, KEY_SIZES, _INV_SBOX, _SBOX

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

FIPS_CASES = [
    # (key hex, expected ciphertext hex) — FIPS-197 Appendix C.
    (
        "000102030405060708090a0b0c0d0e0f",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


class TestFipsVectors:
    @pytest.mark.parametrize("key_hex,ct_hex", FIPS_CASES)
    def test_encrypt_matches_fips_197(self, key_hex, ct_hex):
        cipher = AES(bytes.fromhex(key_hex))
        assert cipher.encrypt_block(FIPS_PLAINTEXT).hex() == ct_hex

    @pytest.mark.parametrize("key_hex,ct_hex", FIPS_CASES)
    def test_decrypt_matches_fips_197(self, key_hex, ct_hex):
        cipher = AES(bytes.fromhex(key_hex))
        assert cipher.decrypt_block(bytes.fromhex(ct_hex)) == FIPS_PLAINTEXT

    def test_aes128_nist_sp800_38a_vector(self):
        # First ECB block of SP 800-38A F.1.1.
        cipher = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert cipher.encrypt_block(plaintext).hex() == "3ad77bb40d7a3660a89ecaf32466ef97"


class TestStructure:
    def test_round_counts(self):
        assert AES(bytes(16)).rounds == 10
        assert AES(bytes(24)).rounds == 12
        assert AES(bytes(32)).rounds == 14

    def test_key_sizes_constant(self):
        assert KEY_SIZES == (16, 24, 32)

    @pytest.mark.parametrize("bad_length", [0, 1, 15, 17, 20, 31, 33, 64])
    def test_rejects_bad_key_length(self, bad_length):
        with pytest.raises(ValueError, match="key must be"):
            AES(bytes(bad_length))

    def test_rejects_non_bytes_key(self):
        with pytest.raises(TypeError):
            AES("0" * 16)

    def test_accepts_bytearray_key(self):
        assert AES(bytearray(16)).rounds == 10

    @pytest.mark.parametrize("bad_length", [0, 15, 17, 32])
    def test_rejects_bad_block_length(self, bad_length):
        cipher = AES(bytes(16))
        with pytest.raises(ValueError, match="block must be"):
            cipher.encrypt_block(bytes(bad_length))
        with pytest.raises(ValueError, match="block must be"):
            cipher.decrypt_block(bytes(bad_length))


class TestSboxDerivation:
    def test_sbox_is_a_bijection(self):
        assert sorted(_SBOX) == list(range(256))

    def test_inverse_sbox_inverts(self):
        for value in range(256):
            assert _INV_SBOX[_SBOX[value]] == value

    def test_known_sbox_entries(self):
        # S-box corners from FIPS-197 Figure 7.
        assert _SBOX[0x00] == 0x63
        assert _SBOX[0x01] == 0x7C
        assert _SBOX[0x53] == 0xED
        assert _SBOX[0xFF] == 0x16

    def test_sbox_has_no_fixed_points(self):
        assert all(_SBOX[v] != v for v in range(256))


class TestProperties:
    @given(
        key=st.binary(min_size=16, max_size=16)
        | st.binary(min_size=24, max_size=24)
        | st.binary(min_size=32, max_size=32),
        block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
    )
    @settings(max_examples=40, deadline=None)
    def test_decrypt_inverts_encrypt(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE))
    @settings(max_examples=20, deadline=None)
    def test_different_keys_give_different_ciphertexts(self, block):
        a = AES(bytes(16)).encrypt_block(block)
        b = AES(bytes([1] + [0] * 15)).encrypt_block(block)
        assert a != b

    def test_single_bit_avalanche(self):
        cipher = AES(bytes(16))
        base = cipher.encrypt_block(bytes(16))
        flipped = cipher.encrypt_block(b"\x01" + bytes(15))
        differing_bits = sum(
            bin(x ^ y).count("1") for x, y in zip(base, flipped)
        )
        # A healthy block cipher flips roughly half of the 128 output bits.
        assert 40 <= differing_bits <= 90

    def test_encryption_is_deterministic(self):
        cipher = AES(bytes(32))
        block = bytes(range(16))
        assert cipher.encrypt_block(block) == cipher.encrypt_block(block)
