"""MACs: HMAC RFC-4231 vectors, CBC-MAC behaviour, constant-time compare."""

import hashlib
import hmac as hmac_reference

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.mac import CbcMac, HmacSha256, constant_time_equal


class TestHmacVectors:
    def test_rfc4231_case_1(self):
        mac = HmacSha256(b"\x0b" * 20)
        assert (
            mac.tag(b"Hi There").hex()
            == "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_rfc4231_case_2(self):
        mac = HmacSha256(b"Jefe")
        assert (
            mac.tag(b"what do ya want for nothing?").hex()
            == "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )

    def test_rfc4231_case_6_long_key(self):
        mac = HmacSha256(b"\xaa" * 131)
        message = b"Test Using Larger Than Block-Size Key - Hash Key First"
        assert (
            mac.tag(message).hex()
            == "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        )

    @given(key=st.binary(min_size=1, max_size=100), message=st.binary(max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_matches_stdlib_hmac(self, key, message):
        ours = HmacSha256(key).tag(message)
        reference = hmac_reference.new(key, message, hashlib.sha256).digest()
        assert ours == reference


class TestHmacVerify:
    def test_verify_accepts_valid_tag(self):
        mac = HmacSha256(b"key")
        assert mac.verify(b"message", mac.tag(b"message"))

    def test_verify_rejects_tampered_message(self):
        mac = HmacSha256(b"key")
        tag = mac.tag(b"message")
        assert not mac.verify(b"messagf", tag)

    def test_verify_rejects_truncated_tag(self):
        mac = HmacSha256(b"key")
        tag = mac.tag(b"message")
        assert not mac.verify(b"message", tag[:-1])


class TestCbcMac:
    def test_tag_is_16_bytes(self):
        assert len(CbcMac(bytes(16)).tag(b"hello")) == 16

    def test_verify_roundtrip(self):
        mac = CbcMac(bytes(32))
        message = b"cache line payload!" * 2
        assert mac.verify(message, mac.tag(message))

    def test_different_messages_different_tags(self):
        mac = CbcMac(bytes(16))
        assert mac.tag(b"a") != mac.tag(b"b")

    def test_length_is_bound_into_tag(self):
        # Without length prepending, "m" and "m\x00" would collide after
        # zero padding; the construction must distinguish them.
        mac = CbcMac(bytes(16))
        assert mac.tag(b"m") != mac.tag(b"m\x00")

    def test_empty_message_has_a_tag(self):
        mac = CbcMac(bytes(16))
        assert mac.verify(b"", mac.tag(b""))

    @given(message=st.binary(max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_tag_deterministic(self, message):
        mac = CbcMac(bytes(24))
        assert mac.tag(message) == mac.tag(message)

    @given(message=st.binary(min_size=1, max_size=64), flip=st.integers(0, 7))
    @settings(max_examples=30, deadline=None)
    def test_single_bit_flip_detected(self, message, flip):
        mac = CbcMac(bytes(16))
        tag = mac.tag(message)
        tampered = bytearray(message)
        tampered[0] ^= 1 << flip
        assert not mac.verify(bytes(tampered), tag)


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_unequal_content(self):
        assert not constant_time_equal(b"abc", b"abd")

    def test_unequal_length(self):
        assert not constant_time_equal(b"abc", b"abcd")

    def test_empty(self):
        assert constant_time_equal(b"", b"")
