"""Hardware RNG model: determinism, ranges, and rough uniformity."""

import pytest

from repro.crypto.rng import HardwareRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = HardwareRng(42)
        b = HardwareRng(42)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_different_streams(self):
        a = HardwareRng(1)
        b = HardwareRng(2)
        assert [a.next_u64() for _ in range(4)] != [b.next_u64() for _ in range(4)]


class TestRanges:
    def test_u64_in_range(self):
        rng = HardwareRng()
        for _ in range(100):
            value = rng.next_u64()
            assert 0 <= value < (1 << 64)

    @pytest.mark.parametrize("bits", [1, 8, 17, 32, 63, 64])
    def test_next_bits_bound(self, bits):
        rng = HardwareRng(7)
        for _ in range(50):
            assert 0 <= rng.next_bits(bits) < (1 << bits)

    @pytest.mark.parametrize("bits", [0, 65, -1])
    def test_next_bits_validates(self, bits):
        with pytest.raises(ValueError):
            HardwareRng().next_bits(bits)

    @pytest.mark.parametrize("bound", [1, 2, 3, 10, 1000, 1 << 40])
    def test_next_below_bound(self, bound):
        rng = HardwareRng(9)
        for _ in range(30):
            assert 0 <= rng.next_below(bound) < bound

    def test_next_below_one_is_always_zero(self):
        rng = HardwareRng()
        assert all(rng.next_below(1) == 0 for _ in range(10))

    @pytest.mark.parametrize("bound", [0, -5])
    def test_next_below_validates(self, bound):
        with pytest.raises(ValueError):
            HardwareRng().next_below(bound)

    @pytest.mark.parametrize("count", [0, 1, 7, 8, 9, 33])
    def test_next_bytes_length(self, count):
        assert len(HardwareRng().next_bytes(count)) == count

    def test_next_float_in_unit_interval(self):
        rng = HardwareRng(3)
        values = [rng.next_float() for _ in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)


class TestDistribution:
    def test_float_mean_near_half(self):
        rng = HardwareRng(11)
        values = [rng.next_float() for _ in range(5000)]
        mean = sum(values) / len(values)
        assert 0.47 < mean < 0.53

    def test_next_below_covers_all_values(self):
        rng = HardwareRng(13)
        seen = {rng.next_below(8) for _ in range(500)}
        assert seen == set(range(8))

    def test_bit_balance(self):
        rng = HardwareRng(17)
        ones = sum(bin(rng.next_u64()).count("1") for _ in range(500))
        total = 500 * 64
        assert 0.48 < ones / total < 0.52
