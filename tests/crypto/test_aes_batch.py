"""Vectorized batch encryption: bit-exactness, fallback, lazy tables."""

import os
import pathlib
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import (
    AES,
    BATCH_THRESHOLD,
    BLOCK_SIZE,
    set_vectorized,
    vectorized_enabled,
)

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

FIPS_CASES = [
    # (key hex, expected ciphertext hex) — FIPS-197 Appendix C.
    (
        "000102030405060708090a0b0c0d0e0f",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


@pytest.fixture
def force_vectorized():
    """Run a test with the numpy path on (skipping if numpy is absent)."""
    if not vectorized_enabled():
        pytest.skip("numpy unavailable")
    yield


def _scalar_reference(cipher: AES, data: bytes) -> bytes:
    previous = set_vectorized(False)
    try:
        return b"".join(
            cipher.encrypt_block(data[i : i + BLOCK_SIZE])
            for i in range(0, len(data), BLOCK_SIZE)
        )
    finally:
        set_vectorized(previous)


class TestBatchCorrectness:
    @pytest.mark.parametrize("key_hex,ct_hex", FIPS_CASES)
    def test_fips_vectors_through_batch_path(self, key_hex, ct_hex, force_vectorized):
        # Repeat the FIPS block enough times to clear the batch threshold,
        # so the numpy path (not the small-batch scalar loop) is exercised.
        count = BATCH_THRESHOLD + 5
        cipher = AES(bytes.fromhex(key_hex))
        out = cipher.encrypt_blocks(FIPS_PLAINTEXT * count)
        assert out == bytes.fromhex(ct_hex) * count

    @pytest.mark.parametrize("key_size", [16, 24, 32])
    def test_batch_matches_scalar_on_random_blocks(
        self, key_size, rng, force_vectorized
    ):
        cipher = AES(rng.next_bytes(key_size))
        data = rng.next_bytes((BATCH_THRESHOLD * 3 + 7) * BLOCK_SIZE)
        assert cipher.encrypt_blocks(data) == _scalar_reference(cipher, data)

    @given(count=st.integers(min_value=0, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_small_batches_match_scalar(self, count):
        cipher = AES(bytes(range(16)))
        data = bytes(range(256))[: count * BLOCK_SIZE]
        assert cipher.encrypt_blocks(data) == _scalar_reference(cipher, data)

    def test_empty_input(self):
        assert AES(bytes(16)).encrypt_blocks(b"") == b""

    @pytest.mark.parametrize("bad_length", [1, 15, 17, 47])
    def test_rejects_non_multiple_of_block(self, bad_length):
        with pytest.raises(ValueError, match="multiple"):
            AES(bytes(16)).encrypt_blocks(bytes(bad_length))


class TestVectorizedToggle:
    def test_set_vectorized_returns_previous(self):
        previous = set_vectorized(False)
        try:
            assert vectorized_enabled() is False
            assert set_vectorized(previous) is False
        finally:
            set_vectorized(previous)

    def test_disabled_path_still_correct(self):
        cipher = AES(bytes(range(16)))
        data = FIPS_PLAINTEXT * (BATCH_THRESHOLD + 1)
        previous = set_vectorized(False)
        try:
            scalar_out = cipher.encrypt_blocks(data)
        finally:
            set_vectorized(previous)
        assert scalar_out == cipher.encrypt_blocks(data)


class TestLazyDecryptTables:
    def test_ctr_style_use_never_builds_inverse_tables(self):
        # CTR mode only ever encrypts; a fresh interpreter that encrypts
        # must not pay for the decryption T-tables or inverse key schedule.
        code = (
            "import repro.crypto.aes as aes\n"
            "cipher = aes.AES(bytes(16))\n"
            "cipher.encrypt_blocks(bytes(64 * 16))\n"
            "assert aes._DEC_TABLES is None, 'decrypt tables built eagerly'\n"
            "assert cipher._dec_keys_lazy is None, 'inverse schedule built eagerly'\n"
            "cipher.decrypt_block(bytes(16))\n"
            "assert aes._DEC_TABLES is not None\n"
        )
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        subprocess.run([sys.executable, "-c", code], check=True, env=env)

    def test_decrypt_still_inverts_after_batch_encrypt(self, rng):
        cipher = AES(rng.next_bytes(32))
        block = rng.next_bytes(16)
        batch = cipher.encrypt_blocks(block * (BATCH_THRESHOLD + 1))
        assert cipher.decrypt_block(batch[:16]) == block
