"""SHA-256: NIST vectors, incremental interface, and an hashlib oracle."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.sha256 import Sha256, sha256


class TestVectors:
    def test_empty_message(self):
        assert (
            sha256(b"").hex()
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert (
            sha256(b"abc").hex()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        message = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert (
            sha256(message).hex()
            == "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_million_a(self):
        digest = sha256(b"a" * 1_000_000)
        assert (
            digest.hex()
            == "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        )


class TestIncremental:
    def test_update_returns_self(self):
        h = Sha256()
        assert h.update(b"ab") is h

    def test_split_updates_match_one_shot(self):
        message = bytes(range(200))
        h = Sha256()
        h.update(message[:63]).update(message[63:64]).update(message[64:])
        assert h.digest() == sha256(message)

    def test_digest_is_idempotent(self):
        h = Sha256(b"hello")
        first = h.digest()
        assert h.digest() == first
        h.update(b" world")
        assert h.digest() == sha256(b"hello world")

    def test_hexdigest(self):
        assert Sha256(b"abc").hexdigest() == sha256(b"abc").hex()


class TestAgainstHashlib:
    @given(data=st.binary(max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_matches_hashlib(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()

    @given(chunks=st.lists(st.binary(max_size=100), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_incremental_matches_hashlib(self, chunks):
        ours = Sha256()
        reference = hashlib.sha256()
        for chunk in chunks:
            ours.update(chunk)
            reference.update(chunk)
        assert ours.digest() == reference.digest()

    @pytest.mark.parametrize("length", [0, 1, 55, 56, 57, 63, 64, 65, 127, 128, 129])
    def test_padding_boundaries(self, length):
        data = b"\xa5" * length
        assert sha256(data) == hashlib.sha256(data).digest()
