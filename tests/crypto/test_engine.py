"""Crypto engine timing model: latency, pipelining, queueing, idle slots."""

import pytest

from repro.crypto.engine import CryptoEngine, CryptoEngineConfig


class TestConfig:
    def test_table1_default_latency_is_96ns(self):
        config = CryptoEngineConfig()
        assert config.latency_ns == 96.0
        assert config.latency_cycles == 96

    def test_latency_scales_with_clock(self):
        config = CryptoEngineConfig(cpu_ghz=2.0)
        assert config.latency_cycles == 192

    def test_custom_pipeline_shape(self):
        config = CryptoEngineConfig(rounds=10, stages_per_round=4, stage_latency_ns=2.0)
        assert config.latency_ns == 80.0


class TestIssue:
    def test_single_block_completes_after_latency(self):
        engine = CryptoEngine()
        assert engine.issue(now=100, count=1) == [100 + 96]

    def test_pipelined_batch_completes_back_to_back(self):
        engine = CryptoEngine()
        completions = engine.issue(now=0, count=4)
        assert completions == [96, 97, 98, 99]

    def test_queueing_behind_earlier_work(self):
        engine = CryptoEngine()
        engine.issue(now=0, count=10)
        # The port frees at cycle 10; a request at cycle 3 waits.
        assert engine.issue(now=3, count=1) == [10 + 96]
        assert engine.stats.queue_delay_cycles == 7

    def test_zero_count_is_noop(self):
        engine = CryptoEngine()
        assert engine.issue(now=0, count=0) == []
        assert engine.stats.total_blocks == 0

    def test_issue_interval_spacing(self):
        engine = CryptoEngine(CryptoEngineConfig(issue_interval=2))
        completions = engine.issue(now=0, count=3)
        assert completions == [96, 98, 100]


class TestStats:
    def test_speculative_vs_demand_accounting(self):
        engine = CryptoEngine()
        engine.issue(0, 5, speculative=True)
        engine.issue(10, 2, speculative=False)
        assert engine.stats.speculative_blocks == 5
        assert engine.stats.demand_blocks == 2
        assert engine.stats.total_blocks == 7

    def test_utilization(self):
        engine = CryptoEngine()
        engine.issue(0, 50)
        assert engine.stats.utilization(100) == pytest.approx(0.5)
        assert engine.stats.utilization(0) == 0.0

    def test_reset_clears_state(self):
        engine = CryptoEngine()
        engine.issue(0, 10)
        engine.reset()
        assert engine.stats.total_blocks == 0
        assert engine.issue(0, 1) == [96]


class TestIdleSlots:
    def test_idle_slots_before_deadline(self):
        engine = CryptoEngine()
        assert engine.idle_slots_before(deadline=50, now=10) == 40

    def test_no_idle_slots_when_busy(self):
        engine = CryptoEngine()
        engine.issue(0, 100)
        assert engine.idle_slots_before(deadline=50, now=10) == 0

    def test_next_free_slot(self):
        engine = CryptoEngine()
        assert engine.next_free_slot(5) == 5
        engine.issue(5, 3)
        assert engine.next_free_slot(5) == 8


class TestPadCache:
    def test_round_trip(self):
        from repro.crypto.engine import PadCache

        cache = PadCache(4)
        key = (b"id", 0x1000, 7)
        assert cache.get(key) is None
        cache.put(key, b"pad")
        assert cache.get(key) == b"pad"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        from repro.crypto.engine import PadCache

        cache = PadCache(2)
        cache.put(("a",), b"1")
        cache.put(("b",), b"2")
        cache.get(("a",))          # refresh 'a'; 'b' is now the LRU entry
        cache.put(("c",), b"3")
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == b"1"
        assert cache.get(("c",)) == b"3"
        assert cache.stats.evictions == 1

    def test_capacity_zero_disables(self):
        from repro.crypto.engine import PadCache

        cache = PadCache(0)
        assert not cache.enabled
        cache.put(("a",), b"1")
        assert len(cache) == 0
        assert cache.get(("a",)) is None

    def test_negative_capacity_rejected(self):
        from repro.crypto.engine import PadCache
        import pytest

        with pytest.raises(ValueError):
            PadCache(-1)

    def test_clear_keeps_stats(self):
        from repro.crypto.engine import PadCache

        cache = PadCache(4)
        cache.put(("a",), b"1")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.stores == 1
