"""Lease protocol: claims, takeover, fencing tokens, torn files."""

import dataclasses
import json

import pytest

from repro.fabric.lease import Lease, LeaseLost, LeaseManager

KEY = "a" * 64
KEY2 = "b" * 64


class FakeClock:
    def __init__(self, now: float = 1_000_000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def manager(tmp_path, clock, owner: str, ttl: float = 10.0) -> LeaseManager:
    return LeaseManager(tmp_path / "leases", owner=owner, ttl_seconds=ttl,
                        clock=clock)


class TestClaim:
    def test_fresh_claim_wins_with_token_one(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, "a:1")
        lease = mgr.try_acquire(KEY)
        assert lease is not None
        assert (lease.owner, lease.token, lease.state) == ("a:1", 1, "held")
        assert mgr.stats.acquired == 1
        assert mgr._lease_path(KEY).exists()

    def test_live_lease_contends(self, tmp_path, clock):
        manager(tmp_path, clock, "a:1").try_acquire(KEY)
        other = manager(tmp_path, clock, "b:2")
        assert other.try_acquire(KEY) is None
        assert other.stats.contended == 1

    def test_reclaim_by_owner_is_idempotent(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, "a:1")
        first = mgr.try_acquire(KEY)
        again = mgr.try_acquire(KEY)
        assert again is not None
        assert again.token == first.token
        assert mgr.stats.acquired == 1

    def test_invalid_ttl_rejected(self, tmp_path, clock):
        with pytest.raises(ValueError):
            manager(tmp_path, clock, "a:1", ttl=0.0)


class TestTakeover:
    def test_expired_lease_taken_over_with_higher_token(self, tmp_path, clock):
        stale = manager(tmp_path, clock, "a:1")
        old = stale.try_acquire(KEY)
        clock.advance(11.0)
        fresh = manager(tmp_path, clock, "b:2")
        taken = fresh.try_acquire(KEY)
        assert taken is not None
        assert taken.token == old.token + 1
        assert fresh.stats.taken_over == 1

    def test_stale_owner_renewal_raises_lease_lost(self, tmp_path, clock):
        stale = manager(tmp_path, clock, "a:1")
        old = stale.try_acquire(KEY)
        clock.advance(11.0)
        manager(tmp_path, clock, "b:2").try_acquire(KEY)
        with pytest.raises(LeaseLost):
            stale.renew(old)
        assert stale.stats.lost == 1

    def test_released_lease_reissued_with_higher_token(self, tmp_path, clock):
        first = manager(tmp_path, clock, "a:1")
        lease = first.try_acquire(KEY)
        first.release(lease)
        assert first.stats.released == 1
        second = manager(tmp_path, clock, "b:2")
        reissued = second.try_acquire(KEY)
        assert reissued is not None
        assert reissued.token == lease.token + 1

    def test_release_of_stolen_lease_is_a_noop(self, tmp_path, clock):
        stale = manager(tmp_path, clock, "a:1")
        old = stale.try_acquire(KEY)
        clock.advance(11.0)
        fresh = manager(tmp_path, clock, "b:2")
        fresh.try_acquire(KEY)
        stale.release(old)
        current = fresh.read(KEY)
        assert current.owner == "b:2"
        assert current.state == "held"

    def test_takeover_lost_race_detected_by_verify_read(self, tmp_path, clock):
        # The loser's os.replace lands first; the winner's rename then
        # overwrites it before the loser's verify read — which must see
        # the foreign owner and walk away.
        stale = manager(tmp_path, clock, "a:1")
        stale.try_acquire(KEY)
        clock.advance(11.0)

        rival = manager(tmp_path, clock, "rival:9")
        loser = manager(tmp_path, clock, "b:2")
        original_write = LeaseManager._write_lease
        raced = []

        def write_then_lose(self, lease):
            original_write(self, lease)
            if not raced:
                raced.append(True)
                original_write(
                    rival,
                    dataclasses.replace(lease, owner="rival:9"),
                )

        loser._write_lease = write_then_lose.__get__(loser)
        assert loser.try_acquire(KEY) is None
        assert loser.stats.lost_races == 1
        assert loser.read(KEY).owner == "rival:9"


class TestTornLeases:
    def tear(self, mgr: LeaseManager, key: str) -> None:
        path = mgr._lease_path(key)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])

    def test_torn_lease_reads_as_none_and_counts(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, "a:1")
        mgr.try_acquire(KEY)
        self.tear(mgr, KEY)
        assert mgr.read(KEY) is None
        assert mgr.stats.corrupt_leases == 1

    def test_torn_lease_taken_over_immediately(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, "a:1")
        mgr.try_acquire(KEY)
        self.tear(mgr, KEY)
        other = manager(tmp_path, clock, "b:2")
        taken = other.try_acquire(KEY)
        assert taken is not None
        assert other.stats.taken_over == 1

    def test_token_floor_survives_torn_payload(self, tmp_path, clock):
        # Claim -> release -> claim pushes the high-water file to 2; a
        # torn lease payload must not let the next claim reuse token <= 2.
        first = manager(tmp_path, clock, "a:1")
        lease = first.try_acquire(KEY)
        first.release(lease)
        second = manager(tmp_path, clock, "b:2")
        second_lease = second.try_acquire(KEY)
        assert second_lease.token == 2
        self.tear(second, KEY)
        third = manager(tmp_path, clock, "c:3")
        third_lease = third.try_acquire(KEY)
        assert third_lease.token == 3


class TestHeartbeat:
    def test_renewal_refreshes_heartbeat(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, "a:1")
        lease = mgr.try_acquire(KEY)
        clock.advance(6.0)
        renewed = mgr.renew(lease)
        assert renewed.heartbeat == clock()
        clock.advance(6.0)  # 12s since claim, 6s since renewal
        assert not mgr.expired(renewed)
        assert mgr.stats.renewals == 1


class TestFencing:
    def test_store_after_takeover_is_fenced_out(self, tmp_path, clock):
        stale = manager(tmp_path, clock, "a:1")
        old = stale.try_acquire(KEY)
        clock.advance(11.0)
        manager(tmp_path, clock, "b:2").try_acquire(KEY)
        assert not stale.fence_ok(old)
        assert stale.stats.fenced_rejects == 1
        assert stale.fence(old)() is False

    def test_expired_but_untaken_lease_still_passes(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, "a:1")
        lease = mgr.try_acquire(KEY)
        clock.advance(60.0)
        assert mgr.fence_ok(lease)

    def test_same_token_different_owner_is_rejected(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, "a:1")
        lease = mgr.try_acquire(KEY)
        forged = dataclasses.replace(lease, owner="z:9")
        assert not mgr.fence_ok(forged)


class TestJournal:
    def test_stored_tokens_round_trip(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, "a:1")
        lease_a = mgr.try_acquire(KEY)
        lease_b = mgr.try_acquire(KEY2)
        mgr.journal_store(lease_a)
        mgr.journal_store(lease_b)
        assert mgr.stored_tokens() == [
            (KEY, 1, "a:1"),
            (KEY2, 1, "a:1"),
        ]

    def test_torn_journal_tail_is_skipped(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, "a:1")
        mgr.journal_store(mgr.try_acquire(KEY))
        with mgr._store_journal.open("a") as handle:
            handle.write('{"key": "trunc')
        assert mgr.stored_tokens() == [(KEY, 1, "a:1")]


class TestSnapshot:
    def test_snapshot_shows_held_and_torn(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, "a:1")
        mgr.try_acquire(KEY)
        mgr.try_acquire(KEY2)
        path = mgr._lease_path(KEY2)
        path.write_bytes(path.read_bytes()[:10])
        rows = {row["key"]: row for row in mgr.snapshot()}
        assert rows[KEY]["state"] == "held"
        assert rows[KEY]["owner"] == "a:1"
        assert rows[KEY]["heartbeat_age"] == 0.0
        assert rows[KEY2]["state"] == "torn"
        assert rows[KEY2]["expired"]

    def test_payload_digest_is_verified(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, "a:1")
        mgr.try_acquire(KEY)
        path = mgr._lease_path(KEY)
        body = json.loads(path.read_text())
        body["owner"] = "evil:1"  # digest now stale
        path.write_text(json.dumps(body))
        assert mgr.read(KEY) is None
        assert mgr.stats.corrupt_leases == 1
