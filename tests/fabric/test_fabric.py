"""Fabric workers and the swarm coordinator: drain, takeover, merging."""

import dataclasses
import json

import pytest

from repro.experiments import cache as result_cache
from repro.experiments.sweep import run_grid
from repro.faults.orchestration import FabricChaos, FabricChaosSpec
from repro.fabric import (
    FabricPolicy,
    FabricWorker,
    SwarmSpec,
    collect_sweep,
    drain_swarm,
    render_status,
    start_swarm,
    swarm_status,
)
from repro.fabric.worker import CHAOS_KILL_EXIT, LeaseDirUnavailable
from repro.telemetry.events import EventTracer
from repro.telemetry.registry import MetricRegistry

REFS = 1200
SPEC = SwarmSpec(
    benchmarks=("gzip",), schemes=("oracle", "pred_regular"),
    references=REFS, seed=1,
)
FAST = FabricPolicy(
    ttl_seconds=2.0,
    claim_backoff_seconds=0.01,
    claim_backoff_cap_seconds=0.1,
    drain_timeout_seconds=180.0,
)


def _metrics(sweep) -> dict:
    return {
        f"{benchmark}/{scheme}": dataclasses.asdict(metrics)
        for (benchmark, scheme), metrics in sweep.results.items()
    }


def _merged(sweep) -> str:
    merged = sweep.merged_snapshot()
    return json.dumps(merged.values if merged else {}, sort_keys=True)


class TestSwarmSpec:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            SwarmSpec(benchmarks=("gzip",), schemes=("nope",))

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            SwarmSpec(benchmarks=("gzip",), schemes=("oracle",), machine="huge")

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            SwarmSpec(benchmarks=(), schemes=("oracle",))

    def test_round_trip_preserves_key(self):
        clone = SwarmSpec.from_dict(SPEC.to_dict())
        assert clone == SPEC
        assert clone.key == SPEC.key

    def test_cells_enumerates_grid(self):
        cells = SPEC.cells()
        assert [(b, spec.name) for b, spec, _ in cells] == [
            ("gzip", "oracle"), ("gzip", "pred_regular"),
        ]


class TestSingleWorkerDrain:
    def test_drain_equals_serial(self):
        worker = FabricWorker(SPEC, owner="solo:1", policy=FAST)
        stats = worker.drain()
        assert stats.cells_executed == 2
        assert stats.stores == 2
        assert stats.cells_fenced_out == 0
        sweep = collect_sweep(SPEC)
        serial = run_grid(
            ["gzip"], ["oracle", "pred_regular"], references=REFS, seed=1,
        )
        assert _metrics(sweep) == _metrics(serial)
        assert _merged(sweep) == _merged(serial)

    def test_second_drain_skips_verified_done(self):
        FabricWorker(SPEC, owner="solo:1", policy=FAST).drain()
        second = FabricWorker(SPEC, owner="solo:2", policy=FAST)
        stats = second.drain()
        assert stats.cells_executed == 0
        assert stats.stores == 0

    def test_stale_done_event_is_recomputed(self):
        # The manifest says done, but the cache entry is gone: a drain
        # must not trust the journal blindly.
        FabricWorker(SPEC, owner="solo:1", policy=FAST).drain()
        disk = result_cache.default_cache()
        _, _, victim_key = SPEC.cells()[0]
        disk._result_path(victim_key).unlink()
        repair = FabricWorker(SPEC, owner="solo:2", policy=FAST)
        stats = repair.drain()
        assert stats.cells_executed == 1
        assert collect_sweep(SPEC).results  # victim is back

    def test_lease_dir_unavailable_raises(self, tmp_path):
        disk = result_cache.default_cache()
        (disk.root / "leases").parent.mkdir(parents=True, exist_ok=True)
        (disk.root / "leases").write_text("not a directory")
        worker = FabricWorker(SPEC, owner="solo:1", policy=FAST)
        with pytest.raises(LeaseDirUnavailable):
            worker.drain()


class TestMultiWorkerDrain:
    def test_two_worker_drain_equals_serial(self):
        sweep = drain_swarm(SPEC, workers=2, policy=FAST, owner_prefix="m")
        assert not sweep.fabric["degraded"]
        assert sweep.fabric["worker_exit_codes"] == [0]
        serial = run_grid(
            ["gzip"], ["oracle", "pred_regular"], references=REFS, seed=1,
        )
        assert _metrics(sweep) == _metrics(serial)
        assert _merged(sweep) == _merged(serial)
        tokens = sweep.fabric["stored_tokens"]
        assert len({(key, token) for key, token, _ in tokens}) == len(tokens)

    def test_takeover_after_worker_kill(self):
        chaos = FabricChaos(
            FabricChaosSpec(kill_rate=1.0, immune_owners=("k0",))
        )
        sweep = drain_swarm(
            SPEC, workers=2, policy=FAST, chaos=chaos, owner_prefix="k",
        )
        assert CHAOS_KILL_EXIT in sweep.fabric["worker_exit_codes"]
        assert sweep.fabric["local_leases"]["taken_over"] >= 1
        assert len(sweep.results) == 2
        serial = run_grid(
            ["gzip"], ["oracle", "pred_regular"], references=REFS, seed=1,
        )
        assert _metrics(sweep) == _metrics(serial)

    def test_degrades_to_supervised_when_lease_dir_unusable(self):
        disk = result_cache.default_cache()
        disk.root.mkdir(parents=True, exist_ok=True)
        (disk.root / "leases").write_text("not a directory")
        sweep = drain_swarm(SPEC, workers=1, policy=FAST)
        assert sweep.fabric["degraded"]
        assert len(sweep.results) == 2
        serial = run_grid(
            ["gzip"], ["oracle", "pred_regular"], references=REFS, seed=1,
        )
        assert _metrics(sweep) == _metrics(serial)


class TestCoordinator:
    def test_start_is_idempotent_and_persists_spec(self):
        key_a = start_swarm(SPEC)
        key_b = start_swarm(SPEC)
        assert key_a == key_b == SPEC.key
        disk = result_cache.default_cache()
        payload = json.loads((disk.root / f"swarm-{key_a}.json").read_text())
        assert SwarmSpec.from_dict(payload) == SPEC

    def test_status_tracks_pending_to_done(self):
        start_swarm(SPEC)
        before = swarm_status(SPEC)
        assert not before["complete"]
        assert before["counts"]["pending"] == 2
        FabricWorker(SPEC, owner="solo:1", policy=FAST).drain()
        after = swarm_status(SPEC)
        assert after["complete"]
        assert after["counts"]["done"] == 2
        assert after["hosts"]["solo:1"]["state"] == "finished"
        rendered = render_status(after)
        assert "complete" in rendered
        assert "solo:1" in rendered

    def test_status_flags_stale_done_cells(self):
        FabricWorker(SPEC, owner="solo:1", policy=FAST).drain()
        disk = result_cache.default_cache()
        _, _, victim_key = SPEC.cells()[0]
        disk._result_path(victim_key).unlink()
        status = swarm_status(SPEC)
        assert status["counts"]["stale"] == 1
        assert not status["complete"]

    def test_collect_strict_raises_on_missing_cells(self):
        start_swarm(SPEC)
        with pytest.raises(RuntimeError, match="swarm incomplete"):
            collect_sweep(SPEC)
        partial = collect_sweep(SPEC, strict=False)
        assert partial.results == {}


class TestHeartbeatTelemetry:
    def test_heartbeat_age_track_emitted(self):
        # A tight heartbeat interval guarantees at least one tick during
        # the cell's execution; every tick lands on the fabric track.
        tracer = EventTracer(capacity=4096)
        registry = MetricRegistry()
        policy = FabricPolicy(
            ttl_seconds=2.0,
            heartbeat_interval_seconds=0.01,
            claim_backoff_seconds=0.01,
            claim_backoff_cap_seconds=0.1,
            drain_timeout_seconds=180.0,
        )
        worker = FabricWorker(
            SPEC, owner="hb:1", policy=policy, tracer=tracer,
            registry=registry,
        )
        stats = worker.drain()
        assert stats.heartbeats >= 1
        samples = [
            event for event in tracer.events()
            if getattr(event, "name", None) == "fabric.lease.heartbeat_age"
        ]
        assert samples
        assert all(event.track == "fabric" for event in samples)
        published = registry.snapshot().values
        assert published.get("fabric.worker.cells_executed") == 2
        assert "fabric.lease.heartbeat_age" in published
