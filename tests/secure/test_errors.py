"""The structured error taxonomy."""

import pytest

from repro.secure.errors import (
    CounterOverflowError,
    FetchFailedError,
    IntegrityError,
    ReplayDetectedError,
    SecureMemoryError,
    TamperDetectedError,
)
from repro.secure.threat import PadReuseError


class TestHierarchy:
    def test_everything_derives_from_secure_memory_error(self):
        for error_class in (
            IntegrityError,
            TamperDetectedError,
            ReplayDetectedError,
            CounterOverflowError,
            FetchFailedError,
            PadReuseError,
        ):
            assert issubclass(error_class, SecureMemoryError)

    def test_tamper_and_replay_refine_integrity(self):
        assert issubclass(TamperDetectedError, IntegrityError)
        assert issubclass(ReplayDetectedError, IntegrityError)
        # ... but the operational errors are NOT integrity errors.
        assert not issubclass(CounterOverflowError, IntegrityError)
        assert not issubclass(FetchFailedError, IntegrityError)

    def test_legacy_import_location_still_works(self):
        from repro.secure.integrity import IntegrityError as legacy

        assert legacy is IntegrityError

    def test_package_reexports(self):
        import repro.secure as secure

        assert secure.SecureMemoryError is SecureMemoryError
        assert secure.TamperDetectedError is TamperDetectedError
        assert secure.FetchFailedError is FetchFailedError


class TestContext:
    def test_tamper_carries_location(self):
        err = TamperDetectedError("bad", line_address=0x40, seqnum=7, level=2)
        assert (err.line_address, err.seqnum, err.level) == (0x40, 7, 2)

    def test_tamper_level_defaults_to_leaf(self):
        assert TamperDetectedError("bad", line_address=0, seqnum=0).level == 0

    def test_replay_carries_location(self):
        err = ReplayDetectedError("stale", line_address=0x80, seqnum=3, level=14)
        assert (err.line_address, err.seqnum, err.level) == (0x80, 3, 14)

    def test_overflow_carries_page(self):
        err = CounterOverflowError(
            "saturated", line_address=0x1000, page=1, seqnum=(1 << 64) - 1
        )
        assert err.page == 1
        assert err.seqnum == (1 << 64) - 1

    def test_fetch_failed_carries_outcome(self):
        cause = TamperDetectedError("bad", line_address=0x40, seqnum=7)
        err = FetchFailedError(
            "gave up", line_address=0x40, attempts=3, quarantined=True, cause=cause
        )
        assert err.attempts == 3
        assert err.quarantined
        assert err.cause is cause

    def test_fetch_failed_defaults(self):
        err = FetchFailedError("dropped", line_address=0x40)
        assert err.attempts == 1
        assert not err.quarantined
        assert err.cause is None

    def test_errors_are_catchable_as_base(self):
        with pytest.raises(SecureMemoryError):
            raise ReplayDetectedError("stale", line_address=0, seqnum=0, level=1)
