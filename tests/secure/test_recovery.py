"""RecoveryPolicy semantics: retries, quarantine, degradation, overflow."""

import time

import pytest

from repro.crypto.rng import HardwareRng
from repro.faults import FaultInjector
from repro.secure.controller import RecoveryPolicy, SecureMemoryController
from repro.secure.errors import (
    CounterOverflowError,
    FetchFailedError,
    TamperDetectedError,
)
from repro.secure.predictors import RegularOtpPredictor
from repro.secure.seqcache import SequenceNumberCache
from repro.secure.seqnum import PageSecurityTable

_MASK64 = (1 << 64) - 1
LINE = 0x40000


def make_controller(key, recovery=None, predictor_depth=None, seqcache=None):
    table = PageSecurityTable(rng=HardwareRng(11))
    predictor = (
        RegularOtpPredictor(table, depth=predictor_depth)
        if predictor_depth
        else None
    )
    return SecureMemoryController(
        page_table=table,
        predictor=predictor,
        key=key,
        integrity=True,
        recovery=recovery,
        seqcache=seqcache,
    )


class TestPolicyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_base_cycles=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_multiplier=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(degrade_after_faults=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_cap_cycles=-1)

    def test_backoff_is_geometric(self):
        policy = RecoveryPolicy(backoff_base_cycles=100, backoff_multiplier=3)
        assert [policy.backoff_cycles(n) for n in (1, 2, 3)] == [100, 300, 900]

    def test_backoff_cap_clamps_growth(self):
        policy = RecoveryPolicy(
            backoff_base_cycles=100, backoff_multiplier=3,
            backoff_cap_cycles=500,
        )
        assert [policy.backoff_cycles(n) for n in (1, 2, 3, 4)] == [
            100, 300, 500, 500,
        ]

    def test_capped_backoff_is_cheap_at_huge_attempts(self):
        # Uncapped geometric growth at attempt 10**6 would be a
        # multi-megabit integer; the cap must short-circuit long before.
        policy = RecoveryPolicy(
            backoff_base_cycles=200, backoff_multiplier=2,
            backoff_cap_cycles=10_000,
        )
        start = time.monotonic()
        assert policy.backoff_cycles(10**6) == 10_000
        assert time.monotonic() - start < 0.5

    def test_degenerate_multiplier_and_base_respect_cap(self):
        flat = RecoveryPolicy(
            backoff_base_cycles=800, backoff_multiplier=1,
            backoff_cap_cycles=500,
        )
        assert flat.backoff_cycles(10**9) == 500
        zero = RecoveryPolicy(backoff_base_cycles=0, backoff_cap_cycles=500)
        assert zero.backoff_cycles(10**9) == 0


class TestTransientRecovery:
    def test_bit_flip_is_retried_and_recovered(self, key256):
        controller = make_controller(key256, RecoveryPolicy(max_retries=2))
        injector = FaultInjector(controller, seed=7)
        plaintext = bytes(range(32))
        clock = controller.writeback_line(0, LINE, plaintext).completion_time

        injector.inject_bit_flip(LINE)
        result = controller.fetch_line(clock, LINE)

        assert result.plaintext == plaintext
        stats = controller.resilience
        assert stats.integrity_faults == 1
        assert stats.retries == 1
        assert stats.recovered_fetches == 1
        assert stats.quarantined_lines == 0
        assert LINE not in controller.quarantine

    def test_recovery_costs_cycles(self, key256):
        recovered = make_controller(key256, RecoveryPolicy(max_retries=2))
        clean = make_controller(key256, RecoveryPolicy(max_retries=2))
        plaintext = bytes(32)
        clock = recovered.writeback_line(0, LINE, plaintext).completion_time
        clean.writeback_line(0, LINE, plaintext)
        FaultInjector(recovered, seed=7).inject_bit_flip(LINE)

        faulty = recovered.fetch_line(clock, LINE)
        baseline = clean.fetch_line(clock, LINE)
        assert faulty.exposed_latency > baseline.exposed_latency

    def test_dropped_response_is_retried(self, key256):
        controller = make_controller(key256, RecoveryPolicy(max_retries=2))
        injector = FaultInjector(controller, seed=7)
        clock = controller.writeback_line(0, LINE, bytes(32)).completion_time

        injector.inject_drop(LINE)
        result = controller.fetch_line(clock, LINE)
        assert result.plaintext == bytes(32)
        assert controller.resilience.dram_faults == 1
        assert controller.resilience.recovered_fetches == 1

    def test_drop_storm_exhausts_retries(self, key256):
        controller = make_controller(key256, RecoveryPolicy(max_retries=2))
        injector = FaultInjector(controller, seed=7)
        clock = controller.writeback_line(0, LINE, bytes(32)).completion_time

        injector.inject_drop(LINE, count=4)
        with pytest.raises(FetchFailedError) as exc:
            controller.fetch_line(clock, LINE)
        assert exc.value.attempts == 3          # initial + 2 retries
        assert controller.resilience.failed_fetches == 1

    def test_without_policy_integrity_failure_propagates(self, key256):
        controller = make_controller(key256, recovery=None)
        injector = FaultInjector(controller, seed=7)
        clock = controller.writeback_line(0, LINE, bytes(32)).completion_time
        injector.inject_bit_flip(LINE)
        with pytest.raises(TamperDetectedError):
            controller.fetch_line(clock, LINE)


class TestQuarantine:
    def test_persistent_fault_quarantines_line(self, key256):
        controller = make_controller(key256, RecoveryPolicy(max_retries=1))
        injector = FaultInjector(controller, seed=7)
        clock = controller.writeback_line(0, LINE, bytes(32)).completion_time

        injector.inject_counter_corruption(LINE)
        with pytest.raises(FetchFailedError) as exc:
            controller.fetch_line(clock, LINE)
        assert exc.value.quarantined
        assert exc.value.attempts == 2
        assert isinstance(exc.value.cause, TamperDetectedError)
        assert LINE in controller.quarantine
        assert controller.resilience.quarantined_lines == 1

    def test_quarantined_line_refuses_fetches_immediately(self, key256):
        controller = make_controller(key256, RecoveryPolicy(max_retries=0))
        injector = FaultInjector(controller, seed=7)
        clock = controller.writeback_line(0, LINE, bytes(32)).completion_time
        injector.inject_counter_corruption(LINE)
        with pytest.raises(FetchFailedError):
            controller.fetch_line(clock, LINE)

        fetches_before = controller.stats.fetches
        with pytest.raises(FetchFailedError) as exc:
            controller.fetch_line(clock, LINE)
        assert exc.value.quarantined
        assert exc.value.attempts == 0          # refused before any DRAM work
        assert controller.stats.fetches == fetches_before


class TestGracefulDegradation:
    def test_consecutive_faults_disable_speculation(self, key256):
        policy = RecoveryPolicy(max_retries=0, degrade_after_faults=2)
        controller = make_controller(key256, policy, predictor_depth=5)
        injector = FaultInjector(controller, seed=7)
        lines = [LINE, LINE + 32, LINE + 64]
        clock = 0
        for line in lines:
            clock = controller.writeback_line(clock, line, bytes(32)).completion_time

        # A healthy fetch speculates.
        controller.fetch_line(clock, lines[2])
        assert controller.engine.stats.speculative_blocks > 0

        for line in lines[:2]:
            injector.inject_mac_tamper(line)
            with pytest.raises(FetchFailedError):
                controller.fetch_line(clock, line)
            injector.repair_all()
        assert controller.degraded
        assert controller.resilience.degrade_events == 1

        # Degraded: the same fetch path issues no speculative work.
        speculative_before = controller.engine.stats.speculative_blocks
        result = controller.fetch_line(clock, lines[2])
        assert result.plaintext == bytes(32)
        assert controller.engine.stats.speculative_blocks == speculative_before

        controller.restore_speculation()
        assert not controller.degraded
        controller.fetch_line(clock, lines[2])
        assert controller.engine.stats.speculative_blocks > speculative_before

    def test_clean_fetches_reset_the_fault_run(self, key256):
        policy = RecoveryPolicy(max_retries=0, degrade_after_faults=2)
        controller = make_controller(key256, policy)
        injector = FaultInjector(controller, seed=7)
        lines = [LINE, LINE + 32]
        clock = 0
        for line in lines:
            clock = controller.writeback_line(clock, line, bytes(32)).completion_time

        injector.inject_mac_tamper(lines[0])
        with pytest.raises(FetchFailedError):
            controller.fetch_line(clock, lines[0])
        injector.repair_all()
        controller.fetch_line(clock, lines[1])   # clean: breaks the run

        injector.inject_mac_tamper(lines[1])
        with pytest.raises(FetchFailedError):
            controller.fetch_line(clock, lines[1])
        assert not controller.degraded


def saturate_line(controller, line, plaintext):
    """Install a consistent sealed state at the counter's saturation point."""
    page = controller.address_map.page_number(line)
    controller.page_table.state(page).root = _MASK64
    ciphertext = controller.otp.seal(line, _MASK64, plaintext)
    controller.auditor.on_seal(line, _MASK64)
    controller.backing.write_line(line, ciphertext)
    controller.backing.write_seqnum(line, _MASK64)
    controller.integrity_tree.update(line, _MASK64, ciphertext)


class TestCounterOverflow:
    def test_without_policy_saturation_raises(self, key256):
        controller = make_controller(key256, recovery=None)
        saturate_line(controller, LINE, bytes(32))
        with pytest.raises(CounterOverflowError) as exc:
            controller.writeback_line(0, LINE, bytes(32))
        assert exc.value.line_address == LINE
        assert exc.value.seqnum == _MASK64
        # Refused before any state mutation.
        assert controller.current_seqnum(LINE) == _MASK64
        assert controller.stats.writebacks == 0

    def test_reencrypt_disabled_policy_also_raises(self, key256):
        policy = RecoveryPolicy(reencrypt_on_overflow=False)
        controller = make_controller(key256, policy)
        saturate_line(controller, LINE, bytes(32))
        with pytest.raises(CounterOverflowError):
            controller.writeback_line(0, LINE, bytes(32))

    def test_forced_wrap_never_reuses_a_pad(self, key256):
        """Regression: counter saturation must not silently wrap.

        The strict PadReuseAuditor raises on any (line, seqnum) repeat, so
        simply completing this write-back proves the wrap was not silent
        and no pad was reused.
        """
        controller = make_controller(key256, RecoveryPolicy())
        sibling = LINE + 32
        old = bytes(range(32))
        saturate_line(controller, LINE, old)
        saturate_line(controller, sibling, bytes(reversed(range(32))))

        new = bytes(reversed(range(32)))
        result = controller.writeback_line(0, LINE, new)

        assert result.reencrypted_page
        page = controller.address_map.page_number(LINE)
        new_root = controller.page_table.state(page).root
        assert result.seqnum == (new_root + 1) & _MASK64
        assert controller.auditor.reuses == 0
        assert controller.resilience.counter_overflows == 1
        assert controller.resilience.pages_reencrypted == 1

        # Both the written line and its re-encrypted sibling round-trip.
        fetched = controller.fetch_line(result.completion_time, LINE)
        assert fetched.plaintext == new
        fetched = controller.fetch_line(fetched.data_ready, sibling)
        assert fetched.plaintext == bytes(reversed(range(32)))


class TestWritebackValidation:
    def test_rejected_writeback_mutates_nothing(self, key256):
        seqcache = SequenceNumberCache(4 * 1024)
        controller = make_controller(
            key256, RecoveryPolicy(), predictor_depth=5, seqcache=seqcache
        )
        before = controller.current_seqnum(LINE)

        with pytest.raises(ValueError):
            controller.writeback_line(0, LINE, None)
        with pytest.raises(ValueError):
            controller.writeback_line(0, LINE, b"short")

        assert controller.current_seqnum(LINE) == before
        assert controller.stats.writebacks == 0
        assert not seqcache.lookup(LINE)
        assert controller.backing.read_seqnum(LINE) is None
