"""Sequence-number cache: demand accounting, spatial sharing, capacity."""

from repro.secure.seqcache import SequenceNumberCache


class TestDemandPath:
    def test_cold_lookup_misses(self):
        cache = SequenceNumberCache(4096)
        assert not cache.lookup(0x1000)
        assert cache.demand_lookups == 1
        assert cache.demand_hits == 0

    def test_fill_then_lookup_hits(self):
        cache = SequenceNumberCache(4096)
        cache.fill(0x1000)
        assert cache.lookup(0x1000)
        assert cache.hit_rate == 1.0

    def test_update_then_lookup_hits(self):
        cache = SequenceNumberCache(4096)
        cache.update(0x1000)  # write-back path installs the counter
        assert cache.lookup(0x1000)

    def test_hit_rate_counts_lookups_only(self):
        cache = SequenceNumberCache(4096)
        cache.fill(0x1000)
        cache.update(0x2000)
        cache.fill(0x1000)       # second fill is a no-op
        assert cache.demand_lookups == 0
        assert cache.hit_rate == 0.0


class TestSpatialSharing:
    def test_four_adjacent_lines_share_a_counter_line(self):
        # 32B cache line / 8B counters -> lines 0..3 share one entry.
        cache = SequenceNumberCache(4096)
        cache.fill(0)
        assert cache.lookup(32)
        assert cache.lookup(64)
        assert cache.lookup(96)
        assert not cache.lookup(128)  # next counter line

    def test_contains_is_nondestructive(self):
        cache = SequenceNumberCache(4096)
        cache.fill(0)
        lookups_before = cache.demand_lookups
        assert cache.contains(0)
        assert not cache.contains(0x8000)
        assert cache.demand_lookups == lookups_before


class TestCapacity:
    def test_capacity_eviction(self):
        cache = SequenceNumberCache(1024, associativity=1)  # 32 counter lines
        covered_lines = 32 * 4  # each counter line covers 4 memory lines
        for i in range(covered_lines * 2):
            cache.fill(i * 32)
        # The first half was evicted by the second half.
        assert not cache.lookup(0)
        assert cache.lookup((covered_lines * 2 - 4) * 32)

    def test_size_property(self):
        assert SequenceNumberCache(128 * 1024).size_bytes == 128 * 1024

    def test_independent_instances(self):
        a = SequenceNumberCache(4096)
        b = SequenceNumberCache(4096)
        a.fill(0)
        assert not b.lookup(0)
