"""Pre-decryption controller (Section 9.2 comparison + hybrid)."""

import pytest

from repro.crypto.rng import HardwareRng
from repro.secure.controller import SecureMemoryController
from repro.secure.predecrypt import PredecryptingController
from repro.secure.predictors import RegularOtpPredictor
from repro.secure.seqnum import PageSecurityTable

LINE = 0x1000


def build(prefetch_depth=1, buffer_lines=32, predictor=False, **kwargs):
    table = PageSecurityTable(rng=HardwareRng(7))
    return PredecryptingController(
        page_table=table,
        predictor=RegularOtpPredictor(table) if predictor else None,
        prefetch_depth=prefetch_depth,
        buffer_lines=buffer_lines,
        **kwargs,
    )


def train_stride(controller, start=LINE, stride=32, count=3, t0=0):
    """Establish a stable stride (three misses with equal deltas)."""
    for i in range(count):
        controller.fetch_line(t0 + i * 1000, start + i * stride)
    return start + count * stride  # the address the prefetcher targeted


class TestValidation:
    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            build(prefetch_depth=0)

    def test_rejects_zero_buffer(self):
        with pytest.raises(ValueError):
            build(buffer_lines=0)


class TestStrideDetection:
    def test_single_miss_does_not_prefetch(self):
        controller = build()
        controller.fetch_line(0, LINE)
        assert controller.predecrypt_stats.prefetches_issued == 0

    def test_stable_stride_triggers_prefetch(self):
        controller = build()
        train_stride(controller)
        assert controller.predecrypt_stats.prefetches_issued == 1

    def test_non_unit_strides_detected(self):
        controller = build()
        next_addr = train_stride(controller, stride=128)
        result = controller.fetch_line(50_000, next_addr)
        assert result.data_ready == 50_000
        assert controller.predecrypt_stats.prefetch_hits == 1

    def test_irregular_pattern_prefetches_nothing(self):
        controller = build()
        for i, offset in enumerate((0, 96, 32, 224, 128)):
            controller.fetch_line(i * 1000, LINE + offset)
        assert controller.predecrypt_stats.prefetches_issued == 0


class TestPrefetchPath:
    def test_prefetched_line_served_without_latency(self):
        controller = build()
        next_addr = train_stride(controller)
        result = controller.fetch_line(50_000, next_addr)
        assert result.data_ready == 50_000
        assert controller.predecrypt_stats.prefetch_hits == 1

    def test_buffer_entry_consumed_once(self):
        controller = build()
        next_addr = train_stride(controller)
        controller.fetch_line(50_000, next_addr)
        result = controller.fetch_line(90_000, next_addr)
        assert result.data_ready > 90_000  # real fetch the second time

    def test_prefetches_charge_dram(self):
        plain = SecureMemoryController()
        prefetching = build()
        for i in range(3):
            plain.fetch_line(i * 1000, LINE + i * 32)
        train_stride(prefetching)
        assert prefetching.dram.stats.reads == plain.dram.stats.reads + 1

    def test_depth_prefetches_multiple_strides_ahead(self):
        controller = build(prefetch_depth=3)
        train_stride(controller)
        assert controller.predecrypt_stats.prefetches_issued == 3

    def test_buffer_capacity_lru(self):
        controller = build(prefetch_depth=4, buffer_lines=2)
        train_stride(controller)
        assert controller.predecrypt_stats.prefetch_discards == 2

    def test_early_use_waits_for_prefetch(self):
        controller = build()
        controller.fetch_line(0, LINE)
        controller.fetch_line(1, LINE + 32)
        controller.fetch_line(2, LINE + 64)   # prefetch of LINE+96 at t=2
        result = controller.fetch_line(3, LINE + 96)
        assert result.data_ready > 3          # still in flight

    def test_writeback_invalidates_buffered_copy(self):
        controller = build()
        next_addr = train_stride(controller)
        controller.writeback_line(5000, next_addr)
        result = controller.fetch_line(50_000, next_addr)
        assert result.data_ready > 50_000
        assert controller.predecrypt_stats.prefetch_hits == 0
        assert controller.predecrypt_stats.prefetch_discards == 1

    def test_accuracy_metric(self):
        controller = build()
        next_addr = train_stride(controller)          # one prefetch issued
        controller.fetch_line(50_000, next_addr)      # hit (also prefetches)
        controller.fetch_line(60_000, 0x900000)       # unrelated
        stats = controller.predecrypt_stats
        assert stats.accuracy == stats.prefetch_hits / stats.prefetches_issued
        assert 0.0 < stats.accuracy <= 1.0


class TestHybrid:
    def test_hybrid_combines_both_mechanisms(self):
        controller = build(predictor=True)
        first = controller.fetch_line(0, LINE)
        assert first.predicted                         # prediction active
        next_addr = train_stride(controller)
        result = controller.fetch_line(50_000, next_addr)
        assert controller.predecrypt_stats.prefetch_hits == 1
        assert result.data_ready == 50_000             # prefetch active too

    def test_functional_roundtrip_through_buffer(self, key256):
        controller = build(key=key256)
        plaintext = bytes(range(32))
        target = LINE + 96
        controller.writeback_line(0, target, plaintext)
        train_stride(controller, t0=1000)              # prefetches `target`
        result = controller.fetch_line(90_000, target)
        assert result.plaintext == plaintext
