"""Security self-checks: pad reuse auditing, uniqueness, malleability."""

import pytest

from repro.secure.threat import (
    PadReuseAuditor,
    PadReuseError,
    malleability_demo,
    pads_are_unique,
)


class TestAuditor:
    def test_distinct_pads_are_clean(self):
        auditor = PadReuseAuditor()
        auditor.on_seal(0x1000, 1)
        auditor.on_seal(0x1000, 2)
        auditor.on_seal(0x2000, 1)
        assert auditor.clean
        assert auditor.seals == 3

    def test_reuse_raises_in_strict_mode(self):
        auditor = PadReuseAuditor()
        auditor.on_seal(0x1000, 1)
        with pytest.raises(PadReuseError):
            auditor.on_seal(0x1000, 1)

    def test_reuse_counted_in_lenient_mode(self):
        auditor = PadReuseAuditor(strict=False)
        auditor.on_seal(0x1000, 1)
        auditor.on_seal(0x1000, 1)
        assert not auditor.clean
        assert auditor.reuses == 1


class TestPadUniqueness:
    def test_shared_seqnum_distinct_addresses(self, key256):
        # Section 4: blocks of a freshly mapped page share the root seqnum;
        # the address in the AES input keeps their pads distinct.
        addresses = [0x1000 + i * 32 for i in range(128)]
        assert pads_are_unique(key256, addresses, seqnum=42)

    def test_duplicate_addresses_collide(self, key256):
        assert not pads_are_unique(key256, [0x1000, 0x1000], seqnum=42)


class TestMalleability:
    def test_bit_flip_propagates_to_plaintext(self, key256):
        plaintext = bytes(32)
        recovered = malleability_demo(key256, 0x1000, 7, plaintext)
        assert recovered != plaintext
        assert recovered[0] == 0x01          # exactly the flipped bit
        assert recovered[1:] == plaintext[1:]
