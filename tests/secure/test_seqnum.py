"""Per-page security state: roots, PHV, distance test, history."""

import pytest

from repro.crypto.rng import HardwareRng
from repro.secure.seqnum import (
    DISTANCE_WINDOW,
    PageSecurityTable,
    seqnum_distance,
)


class TestDistance:
    def test_forward_distance(self):
        assert seqnum_distance(105, 100) == 5

    def test_wraps_modulo_64_bits(self):
        assert seqnum_distance(2, (1 << 64) - 1) == 3

    def test_negative_becomes_huge(self):
        assert seqnum_distance(99, 100) == (1 << 64) - 1


class TestRoots:
    def test_root_assigned_on_first_touch(self):
        table = PageSecurityTable(rng=HardwareRng(1))
        root = table.root(7)
        assert 0 <= root < (1 << 64)
        assert table.root(7) == root  # stable

    def test_roots_differ_across_pages(self):
        table = PageSecurityTable(rng=HardwareRng(1))
        assert table.root(1) != table.root(2)

    def test_deterministic_given_seed(self):
        a = PageSecurityTable(rng=HardwareRng(5))
        b = PageSecurityTable(rng=HardwareRng(5))
        assert a.root(0) == b.root(0)

    def test_mapping_root_preserved_across_reset(self):
        table = PageSecurityTable(rng=HardwareRng(1))
        state = table.state(3)
        mapping_root = state.mapping_root
        table.reset_root(3)
        assert table.state(3).mapping_root == mapping_root
        assert table.state(3).root != mapping_root

    def test_contains_and_len(self):
        table = PageSecurityTable()
        assert 4 not in table
        table.state(4)
        assert 4 in table
        assert len(table) == 1

    def test_pages_listing(self):
        table = PageSecurityTable()
        table.state(9)
        table.state(2)
        assert table.pages() == [2, 9]


class TestDistanceTest:
    def test_current_root_counts(self):
        table = PageSecurityTable()
        root = table.root(0)
        assert table.counts_from_current_root(0, root)
        assert table.counts_from_current_root(0, root + DISTANCE_WINDOW - 1)

    def test_old_root_does_not_count(self):
        table = PageSecurityTable()
        old_root = table.root(0)
        table.reset_root(0)
        assert not table.counts_from_current_root(0, old_root)

    def test_too_large_distance_rejected(self):
        table = PageSecurityTable()
        root = table.root(0)
        assert not table.counts_from_current_root(0, root + DISTANCE_WINDOW)


class TestPhv:
    def test_reset_after_threshold_misses(self):
        table = PageSecurityTable(phv_bits=16, phv_threshold=12)
        root = table.root(0)
        resets = 0
        for _ in range(16):
            resets += table.record_prediction(0, hit=False)
        assert resets == 1
        assert table.root(0) != root
        assert table.total_resets == 1

    def test_no_reset_until_window_full(self):
        # 12 misses alone must not reset: the PHV needs 16 valid slots.
        table = PageSecurityTable(phv_bits=16, phv_threshold=12)
        for _ in range(12):
            assert not table.record_prediction(0, hit=False)

    def test_hits_prevent_reset(self):
        table = PageSecurityTable(phv_bits=16, phv_threshold=12)
        for i in range(64):
            assert not table.record_prediction(0, hit=(i % 2 == 0))

    def test_phv_cleared_after_reset(self):
        table = PageSecurityTable(phv_bits=16, phv_threshold=12)
        for _ in range(16):
            table.record_prediction(0, hit=False)
        # Immediately after a reset the window must refill before another.
        for _ in range(11):
            assert not table.record_prediction(0, hit=False)

    def test_per_page_isolation(self):
        table = PageSecurityTable(phv_bits=16, phv_threshold=12)
        for _ in range(16):
            table.record_prediction(0, hit=False)
        assert table.state(1).phv == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(phv_bits=0),
            dict(phv_bits=65),
            dict(phv_bits=16, phv_threshold=0),
            dict(phv_bits=16, phv_threshold=17),
            dict(history_depth=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PageSecurityTable(**kwargs)


class TestRootHistory:
    def test_history_disabled_by_default(self):
        table = PageSecurityTable()
        table.reset_root(0)
        assert table.state(0).old_roots == ()

    def test_history_keeps_old_roots(self):
        table = PageSecurityTable(history_depth=2)
        first = table.root(0)
        table.reset_root(0)
        second = table.root(0)
        table.reset_root(0)
        assert table.state(0).old_roots == (second, first)

    def test_history_is_bounded(self):
        table = PageSecurityTable(history_depth=1)
        table.root(0)
        table.reset_root(0)
        latest = table.root(0)
        table.reset_root(0)
        assert table.state(0).old_roots == (latest,)
