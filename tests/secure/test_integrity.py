"""Integrity tree: verification, updates, tamper detection."""

import pytest

from repro.secure.integrity import IntegrityError, IntegrityTree

KEY = bytes(32)
LINE = 0x4000
CIPHERTEXT = bytes(range(32))


class TestConstruction:
    def test_levels_positive(self):
        tree = IntegrityTree(KEY)
        assert tree.levels >= 1

    @pytest.mark.parametrize("arity", [1, 3, 6])
    def test_rejects_bad_arity(self, arity):
        with pytest.raises(ValueError):
            IntegrityTree(KEY, arity=arity)

    def test_empty_tree_has_a_root(self):
        assert len(IntegrityTree(KEY).root) == 32


class TestUpdateVerify:
    def test_verify_after_update(self):
        tree = IntegrityTree(KEY)
        tree.update(LINE, 5, CIPHERTEXT)
        tree.verify(LINE, 5, CIPHERTEXT)  # must not raise
        assert tree.verifications == 1
        assert tree.updates == 1

    def test_multiple_lines_coexist(self):
        tree = IntegrityTree(KEY)
        lines = [LINE + i * 32 for i in range(10)]
        for i, line in enumerate(lines):
            tree.update(line, i, bytes([i]) * 32)
        for i, line in enumerate(lines):
            tree.verify(line, i, bytes([i]) * 32)

    def test_update_changes_root(self):
        tree = IntegrityTree(KEY)
        before = tree.root
        tree.update(LINE, 1, CIPHERTEXT)
        assert tree.root != before

    def test_reupdate_supersedes(self):
        tree = IntegrityTree(KEY)
        tree.update(LINE, 1, CIPHERTEXT)
        tree.update(LINE, 2, bytes(32))
        tree.verify(LINE, 2, bytes(32))
        with pytest.raises(IntegrityError):
            tree.verify(LINE, 1, CIPHERTEXT)

    def test_distant_lines_share_tree(self):
        tree = IntegrityTree(KEY)
        far = 0x7FFF_FFE0
        tree.update(LINE, 1, CIPHERTEXT)
        tree.update(far, 2, bytes(32))
        tree.verify(LINE, 1, CIPHERTEXT)
        tree.verify(far, 2, bytes(32))


class TestTamperDetection:
    def test_data_tamper_detected(self):
        tree = IntegrityTree(KEY)
        tree.update(LINE, 5, CIPHERTEXT)
        tampered = bytes([CIPHERTEXT[0] ^ 1]) + CIPHERTEXT[1:]
        with pytest.raises(IntegrityError, match="leaf"):
            tree.verify(LINE, 5, tampered)

    def test_counter_tamper_detected(self):
        tree = IntegrityTree(KEY)
        tree.update(LINE, 5, CIPHERTEXT)
        with pytest.raises(IntegrityError):
            tree.verify(LINE, 6, CIPHERTEXT)

    def test_interior_node_tamper_detected(self):
        tree = IntegrityTree(KEY)
        tree.update(LINE, 5, CIPHERTEXT)
        tree.tamper_node(1, tree.address_map.line_index(LINE) >> 2, b"\x00" * 32)
        with pytest.raises(IntegrityError):
            tree.verify(LINE, 5, CIPHERTEXT)

    def test_unwritten_line_fails_verification(self):
        tree = IntegrityTree(KEY)
        tree.update(LINE, 1, CIPHERTEXT)
        with pytest.raises(IntegrityError):
            tree.verify(LINE + 32, 0, bytes(32))

    def test_splice_attack_detected(self):
        # Copy line A's (ciphertext, counter) pair over line B's slot.
        tree = IntegrityTree(KEY)
        tree.update(LINE, 1, CIPHERTEXT)
        tree.update(LINE + 32, 2, bytes(32))
        with pytest.raises(IntegrityError):
            tree.verify(LINE + 32, 1, CIPHERTEXT)


class TestKeySeparation:
    def test_different_keys_different_leaves(self):
        a = IntegrityTree(bytes(32))
        b = IntegrityTree(bytes([1]) * 32)
        a.update(LINE, 1, CIPHERTEXT)
        b.update(LINE, 1, CIPHERTEXT)
        assert a.root != b.root
