"""SecureMemory facade."""

import pytest

from repro.secure.api import SecureMemory
from repro.secure.integrity import IntegrityError
from repro.secure.predictors import RegularOtpPredictor


class TestStoreLoad:
    def test_single_line_roundtrip(self, key256):
        memory = SecureMemory(key256)
        data = b"attack at dawn".ljust(32, b"\x00")
        memory.store(0x1000, data)
        assert memory.load(0x1000, 32) == data

    def test_multi_line_roundtrip(self, key256):
        memory = SecureMemory(key256)
        data = bytes(range(256)) * 2  # 512 bytes = 16 lines
        memory.store(0x4000, data)
        assert memory.load(0x4000, len(data)) == data

    def test_overwrite(self, key256):
        memory = SecureMemory(key256)
        memory.store(0, bytes(32))
        memory.store(0, bytes([0xAA]) * 32)
        assert memory.load(0, 32) == bytes([0xAA]) * 32

    def test_unwritten_reads_zero(self, key256):
        assert SecureMemory(key256).load(0x8000, 32) == bytes(32)

    def test_clock_advances(self, key256):
        memory = SecureMemory(key256)
        start = memory.clock
        memory.store(0, bytes(32))
        assert memory.clock > start


class TestValidation:
    def test_store_alignment(self, key256):
        with pytest.raises(ValueError, match="aligned"):
            SecureMemory(key256).store(1, bytes(32))

    def test_store_length(self, key256):
        with pytest.raises(ValueError, match="multiple"):
            SecureMemory(key256).store(0, bytes(31))
        with pytest.raises(ValueError, match="multiple"):
            SecureMemory(key256).store(0, b"")

    def test_load_alignment(self, key256):
        with pytest.raises(ValueError, match="aligned"):
            SecureMemory(key256).load(1, 32)

    def test_load_length(self, key256):
        with pytest.raises(ValueError, match="multiple"):
            SecureMemory(key256).load(0, 0)


class TestSecurityIntegration:
    def test_ciphertext_in_backing_differs_from_plaintext(self, key256):
        memory = SecureMemory(key256)
        data = bytes(range(32))
        memory.store(0x1000, data)
        assert memory.controller.backing.read_line(0x1000) != data

    def test_tamper_detected_on_load(self, key256):
        memory = SecureMemory(key256)
        memory.store(0x1000, bytes(32))
        memory.controller.backing.tamper_line(0x1000, b"\xff")
        with pytest.raises(IntegrityError):
            memory.load(0x1000, 32)

    def test_integrity_optional(self, key256):
        memory = SecureMemory(key256, integrity=False)
        memory.store(0x1000, bytes(32))
        memory.controller.backing.tamper_line(0x1000, b"\xff")
        # Without the tree, tampering silently garbles (counter mode is
        # malleable) — the load succeeds but returns flipped plaintext.
        assert memory.load(0x1000, 32)[0] == 0xFF

    def test_pad_reuse_never_happens(self, key256):
        memory = SecureMemory(key256)
        for _ in range(10):
            memory.store(0x2000, bytes(64))
        assert memory.controller.auditor.clean


class TestPrediction:
    def test_custom_predictor_factory(self, key256):
        memory = SecureMemory(
            key256,
            predictor_factory=lambda table: RegularOtpPredictor(table, depth=5),
        )
        assert isinstance(memory.controller.predictor, RegularOtpPredictor)

    def test_prediction_rate_on_fresh_lines(self, key256):
        memory = SecureMemory(key256, integrity=False)
        for i in range(20):
            memory.load_line(0x9000 + i * 32)
        # Fresh lines sit at their page root: perfectly predictable.
        assert memory.prediction_rate == 1.0
