"""OTP generation: pad structure, seal/open, uniqueness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES
from repro.crypto.ctr import make_counter_block
from repro.secure.otp import OtpGenerator, blocks_per_line


class TestBlocksPerLine:
    def test_32_byte_line_is_two_blocks(self):
        assert blocks_per_line(32) == 2

    def test_64_byte_line_is_four_blocks(self):
        assert blocks_per_line(64) == 4

    @pytest.mark.parametrize("bad", [0, -16, 8, 24, 33])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            blocks_per_line(bad)


class TestPadStructure:
    def test_pad_is_two_aes_blocks_of_addr_seqnum(self, key256):
        generator = OtpGenerator(key256)
        cipher = AES(key256)
        pad = generator.pad(0x1000, 77)
        assert pad[:16] == cipher.encrypt_block(make_counter_block(0x1000, 77))
        assert pad[16:] == cipher.encrypt_block(make_counter_block(0x1010, 77))

    def test_pad_length_matches_line(self, key256):
        assert len(OtpGenerator(key256).pad(0, 0)) == 32
        assert len(OtpGenerator(key256, line_bytes=64).pad(0, 0)) == 64

    def test_pad_changes_with_seqnum(self, key256):
        generator = OtpGenerator(key256)
        assert generator.pad(0x1000, 1) != generator.pad(0x1000, 2)

    def test_pad_changes_with_address(self, key256):
        generator = OtpGenerator(key256)
        assert generator.pad(0x1000, 1) != generator.pad(0x2000, 1)

    def test_half_line_pads_differ_within_line(self, key256):
        # The two 16B halves use different addresses -> different pads.
        pad = OtpGenerator(key256).pad(0x1000, 5)
        assert pad[:16] != pad[16:]


class TestSealOpen:
    def test_roundtrip(self, key256):
        generator = OtpGenerator(key256)
        plaintext = bytes(range(32))
        sealed = generator.seal(0x40, 9, plaintext)
        assert sealed != plaintext
        assert generator.open(0x40, 9, sealed) == plaintext

    def test_open_with_wrong_seqnum_garbles(self, key256):
        generator = OtpGenerator(key256)
        sealed = generator.seal(0x40, 9, bytes(32))
        assert generator.open(0x40, 10, sealed) != bytes(32)

    @pytest.mark.parametrize("length", [0, 31, 33])
    def test_seal_length_validation(self, key256, length):
        with pytest.raises(ValueError):
            OtpGenerator(key256).seal(0, 0, bytes(length))

    @pytest.mark.parametrize("length", [0, 31, 33])
    def test_open_length_validation(self, key256, length):
        with pytest.raises(ValueError):
            OtpGenerator(key256).open(0, 0, bytes(length))

    @given(
        plaintext=st.binary(min_size=32, max_size=32),
        address=st.integers(min_value=0, max_value=1 << 40).map(lambda a: a & ~31),
        seqnum=st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, plaintext, address, seqnum):
        generator = OtpGenerator(bytes(32))
        assert generator.open(address, seqnum, generator.seal(address, seqnum, plaintext)) == plaintext
