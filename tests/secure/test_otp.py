"""OTP generation: pad structure, seal/open, uniqueness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES
from repro.crypto.ctr import make_counter_block
from repro.secure.otp import OtpGenerator, blocks_per_line


class TestBlocksPerLine:
    def test_32_byte_line_is_two_blocks(self):
        assert blocks_per_line(32) == 2

    def test_64_byte_line_is_four_blocks(self):
        assert blocks_per_line(64) == 4

    @pytest.mark.parametrize("bad", [0, -16, 8, 24, 33])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            blocks_per_line(bad)


class TestPadStructure:
    def test_pad_is_two_aes_blocks_of_addr_seqnum(self, key256):
        generator = OtpGenerator(key256)
        cipher = AES(key256)
        pad = generator.pad(0x1000, 77)
        assert pad[:16] == cipher.encrypt_block(make_counter_block(0x1000, 77))
        assert pad[16:] == cipher.encrypt_block(make_counter_block(0x1010, 77))

    def test_pad_length_matches_line(self, key256):
        assert len(OtpGenerator(key256).pad(0, 0)) == 32
        assert len(OtpGenerator(key256, line_bytes=64).pad(0, 0)) == 64

    def test_pad_changes_with_seqnum(self, key256):
        generator = OtpGenerator(key256)
        assert generator.pad(0x1000, 1) != generator.pad(0x1000, 2)

    def test_pad_changes_with_address(self, key256):
        generator = OtpGenerator(key256)
        assert generator.pad(0x1000, 1) != generator.pad(0x2000, 1)

    def test_half_line_pads_differ_within_line(self, key256):
        # The two 16B halves use different addresses -> different pads.
        pad = OtpGenerator(key256).pad(0x1000, 5)
        assert pad[:16] != pad[16:]


class TestSealOpen:
    def test_roundtrip(self, key256):
        generator = OtpGenerator(key256)
        plaintext = bytes(range(32))
        sealed = generator.seal(0x40, 9, plaintext)
        assert sealed != plaintext
        assert generator.open(0x40, 9, sealed) == plaintext

    def test_open_with_wrong_seqnum_garbles(self, key256):
        generator = OtpGenerator(key256)
        sealed = generator.seal(0x40, 9, bytes(32))
        assert generator.open(0x40, 10, sealed) != bytes(32)

    @pytest.mark.parametrize("length", [0, 31, 33])
    def test_seal_length_validation(self, key256, length):
        with pytest.raises(ValueError):
            OtpGenerator(key256).seal(0, 0, bytes(length))

    @pytest.mark.parametrize("length", [0, 31, 33])
    def test_open_length_validation(self, key256, length):
        with pytest.raises(ValueError):
            OtpGenerator(key256).open(0, 0, bytes(length))

    @given(
        plaintext=st.binary(min_size=32, max_size=32),
        address=st.integers(min_value=0, max_value=1 << 40).map(lambda a: a & ~31),
        seqnum=st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, plaintext, address, seqnum):
        generator = OtpGenerator(bytes(32))
        assert generator.open(address, seqnum, generator.seal(address, seqnum, plaintext)) == plaintext


class TestPadMemo:
    def test_memo_enabled_by_default(self, key256):
        assert OtpGenerator(key256).memo_enabled

    def test_zero_capacity_disables_memo(self, key256):
        from repro.crypto.engine import PadCache

        generator = OtpGenerator(key256, pad_cache=PadCache(0))
        assert not generator.memo_enabled
        generator.pad(0x1000, 1)
        assert generator.pad_cache.stats.stores == 0

    def test_repeated_pad_hits_memo(self, key256):
        generator = OtpGenerator(key256)
        first = generator.pad(0x1000, 7)
        second = generator.pad(0x1000, 7)
        assert first == second
        assert generator.pad_cache.stats.hits == 1
        assert generator.pad_cache.stats.misses == 1

    def test_memoized_pad_matches_fresh_generator(self, key256):
        warm = OtpGenerator(key256)
        warm.pad(0x2000, 3)
        assert warm.pad(0x2000, 3) == OtpGenerator(key256).pad(0x2000, 3)

    def test_shared_cache_separates_keys(self, key256):
        from repro.crypto.engine import PadCache

        shared = PadCache(16)
        a = OtpGenerator(key256, pad_cache=shared)
        b = OtpGenerator(bytes(32), pad_cache=shared)
        assert a.pad(0x1000, 1) != b.pad(0x1000, 1)


class TestPadsBatch:
    def test_batch_matches_individual_pads(self, key256):
        generator = OtpGenerator(key256)
        reference = OtpGenerator(key256)
        seqnums = [5, 6, 7, 8, 9]
        batch = generator.pads(0x3000, seqnums)
        assert list(batch) == seqnums
        for seqnum in seqnums:
            assert batch[seqnum] == reference.pad(0x3000, seqnum)

    def test_batch_skips_memoized_candidates(self, key256):
        generator = OtpGenerator(key256)
        generator.pad(0x3000, 5)
        stores_before = generator.pad_cache.stats.stores
        batch = generator.pads(0x3000, [5, 6])
        assert generator.pad_cache.stats.stores == stores_before + 1
        assert batch[5] == OtpGenerator(key256).pad(0x3000, 5)

    def test_batch_dedups_candidates(self, key256):
        generator = OtpGenerator(key256)
        batch = generator.pads(0x3000, [4, 4, 4, 5])
        assert list(batch) == [4, 5]

    def test_batch_with_memo_disabled_still_correct(self, key256):
        from repro.crypto.engine import PadCache

        generator = OtpGenerator(key256, pad_cache=PadCache(0))
        batch = generator.pads(0x3000, [1, 2])
        reference = OtpGenerator(key256)
        assert batch[1] == reference.pad(0x3000, 1)
        assert batch[2] == reference.pad(0x3000, 2)
