"""Flat MAC store vs the Merkle tree: the replay-protection distinction."""

import pytest

from repro.secure.integrity import FlatMacStore, IntegrityError, IntegrityTree

KEY = bytes(32)
LINE = 0x4000


class TestFlatMacBasics:
    def test_verify_after_update(self):
        store = FlatMacStore(KEY)
        store.update(LINE, 5, bytes(32))
        store.verify(LINE, 5, bytes(32))
        assert store.verifications == 1

    def test_detects_data_tamper(self):
        store = FlatMacStore(KEY)
        store.update(LINE, 5, bytes(32))
        with pytest.raises(IntegrityError):
            store.verify(LINE, 5, b"\x01" + bytes(31))

    def test_detects_counter_tamper(self):
        store = FlatMacStore(KEY)
        store.update(LINE, 5, bytes(32))
        with pytest.raises(IntegrityError):
            store.verify(LINE, 6, bytes(32))

    def test_detects_splice(self):
        store = FlatMacStore(KEY)
        store.update(LINE, 1, bytes(32))
        store.update(LINE + 32, 1, bytes([1]) * 32)
        with pytest.raises(IntegrityError):
            store.verify(LINE + 32, 1, bytes(32))

    def test_unknown_line_rejected(self):
        with pytest.raises(IntegrityError):
            FlatMacStore(KEY).verify(LINE, 0, bytes(32))


class TestReplayDistinction:
    def _consistent_replay(self, protector):
        """Record a full old state, advance, then restore the old state."""
        old_ciphertext = bytes(32)
        protector.update(LINE, 1, old_ciphertext)
        old_macs = dict(getattr(protector, "macs", {}))
        old_nodes = dict(getattr(protector, "nodes", {}))
        new_ciphertext = bytes([7]) * 32
        protector.update(LINE, 2, new_ciphertext)
        # Adversary restores every untrusted byte of the old state.
        if old_macs:
            protector.macs.clear()
            protector.macs.update(old_macs)
        if old_nodes:
            protector.nodes.clear()
            protector.nodes.update(old_nodes)
        protector.verify(LINE, 1, old_ciphertext)

    def test_flat_mac_accepts_consistent_replay(self):
        # The weakness: a consistent old (data, counter, MAC) triple passes.
        self._consistent_replay(FlatMacStore(KEY))  # no exception

    def test_tree_rejects_consistent_replay(self):
        # The on-chip root cannot be rolled back, so the tree catches it.
        with pytest.raises(IntegrityError):
            self._consistent_replay(IntegrityTree(KEY))
