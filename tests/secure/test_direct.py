"""Direct-encryption baseline (the pre-counter-mode scheme)."""

import pytest

from repro.secure.controller import SecureMemoryController
from repro.secure.direct import DirectEncryptionController

LINE = 0x1000


class TestTiming:
    def test_decryption_serializes_after_line(self):
        controller = DirectEncryptionController()
        result = controller.fetch_line(0, LINE)
        assert result.pad_ready >= result.line_ready + controller.engine.latency
        assert result.data_ready == result.pad_ready

    def test_slower_than_ctr_baseline(self):
        # CTR can start pad generation as soon as the (earlier) counter
        # arrives; direct encryption must wait for the whole line.
        direct = DirectEncryptionController()
        ctr = SecureMemoryController()
        assert (
            direct.fetch_line(0, LINE).data_ready
            > ctr.fetch_line(0, LINE).data_ready
        )

    def test_no_counter_traffic(self):
        direct = DirectEncryptionController()
        direct.fetch_line(0, LINE)
        direct.writeback_line(1000, LINE)
        # One read and one write, both line-sized (no 8B counter rides).
        assert direct.dram.bus.stats.bytes_moved == 64

    def test_writeback_unchanged_counterless(self):
        controller = DirectEncryptionController()
        result = controller.writeback_line(0, LINE)
        assert result.seqnum == 0
        assert not result.rebased
        assert controller.backing.read_seqnum(LINE) is None


class TestFunctional:
    def test_roundtrip(self, key256):
        controller = DirectEncryptionController(key=key256)
        plaintext = bytes(range(32))
        controller.writeback_line(0, LINE, plaintext)
        assert controller.backing.read_line(LINE) != plaintext
        assert controller.fetch_line(1000, LINE).plaintext == plaintext

    def test_unwritten_reads_zero(self, key256):
        controller = DirectEncryptionController(key=key256)
        assert controller.fetch_line(0, LINE).plaintext == bytes(32)

    def test_requires_plaintext(self, key256):
        controller = DirectEncryptionController(key=key256)
        with pytest.raises(ValueError):
            controller.writeback_line(0, LINE)

    def test_address_tweak_separates_identical_plaintexts(self, key256):
        controller = DirectEncryptionController(key=key256)
        controller.writeback_line(0, LINE, bytes(32))
        controller.writeback_line(100, LINE + 32, bytes(32))
        assert controller.backing.read_line(LINE) != controller.backing.read_line(
            LINE + 32
        )

    def test_determinism_leak(self, key256):
        # The scheme's inherent weakness: rewriting the same value yields
        # the same ciphertext (no freshness) — observable by the adversary.
        controller = DirectEncryptionController(key=key256)
        controller.writeback_line(0, LINE, bytes(32))
        first = controller.backing.read_line(LINE)
        controller.writeback_line(100, LINE, bytes(32))
        assert controller.backing.read_line(LINE) == first
