"""Secure memory controller: timing paths, counters, functional crypto."""

import pytest

from repro.crypto.engine import CryptoEngine
from repro.crypto.rng import HardwareRng
from repro.memory.dram import Dram
from repro.secure.controller import FetchClass, SecureMemoryController
from repro.secure.integrity import IntegrityError
from repro.secure.predictors import (
    ContextOtpPredictor,
    NullPredictor,
    RegularOtpPredictor,
)
from repro.secure.seqcache import SequenceNumberCache
from repro.secure.seqnum import PageSecurityTable

LINE = 0x1000


def build_controller(**kwargs):
    table = kwargs.pop("page_table", None) or PageSecurityTable(rng=HardwareRng(7))
    predictor_factory = kwargs.pop("predictor_factory", None)
    predictor = predictor_factory(table) if predictor_factory else None
    return SecureMemoryController(page_table=table, predictor=predictor, **kwargs)


class TestConstruction:
    def test_defaults(self):
        controller = SecureMemoryController()
        assert isinstance(controller.predictor, NullPredictor)
        assert not controller.functional

    def test_foreign_page_table_rejected(self):
        table_a = PageSecurityTable()
        table_b = PageSecurityTable()
        with pytest.raises(ValueError, match="share"):
            SecureMemoryController(
                page_table=table_a, predictor=NullPredictor(table_b)
            )

    def test_pad_buffer_must_hold_one_line(self):
        with pytest.raises(ValueError, match="pad buffer"):
            SecureMemoryController(pad_buffer_entries=1)

    def test_integrity_requires_key(self):
        with pytest.raises(ValueError, match="functional"):
            SecureMemoryController(integrity=True)


class TestBaselineTiming:
    def test_pad_generation_serialized_after_seqnum(self):
        controller = build_controller()
        result = controller.fetch_line(0, LINE)
        # Figure 4(a): demand pad can only start once the seqnum returned.
        assert result.pad_ready >= result.seqnum_ready + controller.engine.latency
        assert result.data_ready == result.pad_ready

    def test_exposed_latency_accounts_from_issue(self):
        controller = build_controller()
        result = controller.fetch_line(100, LINE)
        assert result.exposed_latency == result.data_ready - 100


class TestOracleTiming:
    def test_pad_overlaps_fetch(self):
        controller = build_controller(oracle=True)
        result = controller.fetch_line(0, LINE)
        # Two pipelined blocks issued at t=0: last completes at latency + 1.
        assert result.pad_ready == controller.engine.latency + 1
        assert result.data_ready == max(result.line_ready, result.pad_ready)

    def test_oracle_beats_baseline(self):
        oracle = build_controller(oracle=True)
        baseline = build_controller()
        assert (
            oracle.fetch_line(0, LINE).data_ready
            < baseline.fetch_line(0, LINE).data_ready
        )


class TestSeqcachePath:
    def test_miss_then_hit(self):
        controller = build_controller(seqcache=SequenceNumberCache(4096))
        first = controller.fetch_line(0, LINE)
        assert not first.seqcache_hit
        second = controller.fetch_line(10_000, LINE)
        assert second.seqcache_hit
        assert second.data_ready - 10_000 < first.data_ready - 0

    def test_writeback_installs_counter(self):
        controller = build_controller(seqcache=SequenceNumberCache(4096))
        controller.writeback_line(0, LINE)
        result = controller.fetch_line(10_000, LINE)
        assert result.seqcache_hit


class TestPredictionPath:
    def test_fresh_line_predicted(self):
        controller = build_controller(
            predictor_factory=lambda t: RegularOtpPredictor(t, depth=5)
        )
        result = controller.fetch_line(0, LINE)
        assert result.predicted
        assert result.fetch_class is FetchClass.PRED_ONLY
        # Speculative pads were ready long before the demand path would be.
        assert result.pad_ready < result.seqnum_ready + controller.engine.latency

    def test_prediction_hides_latency_vs_baseline(self):
        pred = build_controller(
            predictor_factory=lambda t: RegularOtpPredictor(t, depth=5)
        )
        base = build_controller()
        assert (
            pred.fetch_line(0, LINE).data_ready
            < base.fetch_line(0, LINE).data_ready
        )

    def test_out_of_depth_seqnum_mispredicts(self):
        controller = build_controller(
            predictor_factory=lambda t: RegularOtpPredictor(t, depth=5)
        )
        page = controller.address_map.page_number(LINE)
        root = controller.page_table.state(page).mapping_root
        controller.backing.write_seqnum(LINE, root + 50)
        result = controller.fetch_line(0, LINE)
        assert not result.predicted
        assert result.fetch_class is FetchClass.NEITHER
        # Fell back to the demand path.
        assert result.pad_ready >= result.seqnum_ready + controller.engine.latency

    def test_context_predictor_covers_drifted_lines(self):
        controller = build_controller(
            predictor_factory=lambda t: ContextOtpPredictor(t, depth=5, swing=3)
        )
        page = controller.address_map.page_number(LINE)
        root = controller.page_table.state(page).mapping_root
        controller.backing.write_seqnum(LINE, root + 20)
        controller.backing.write_seqnum(LINE + 32, root + 21)
        first = controller.fetch_line(0, LINE)          # trains the LOR
        second = controller.fetch_line(10_000, LINE + 32)
        assert not first.predicted
        assert second.predicted

    def test_guess_list_capped_by_pad_buffer(self):
        controller = build_controller(
            predictor_factory=lambda t: RegularOtpPredictor(t, depth=63),
            pad_buffer_entries=8,  # 4 guesses of 2 blocks
        )
        controller.fetch_line(0, LINE)
        assert controller.engine.stats.speculative_blocks == 8

    def test_speculation_charged_to_engine(self):
        controller = build_controller(
            predictor_factory=lambda t: RegularOtpPredictor(t, depth=5)
        )
        controller.fetch_line(0, LINE)
        assert controller.engine.stats.speculative_blocks == 12  # 6 guesses x 2


class TestClassification:
    def test_both_hit(self):
        controller = build_controller(
            predictor_factory=lambda t: RegularOtpPredictor(t, depth=5),
            seqcache=SequenceNumberCache(4096),
        )
        controller.fetch_line(0, LINE)
        result = controller.fetch_line(10_000, LINE)
        assert result.fetch_class is FetchClass.BOTH
        assert controller.stats.class_counts[FetchClass.BOTH] == 1

    def test_cache_only(self):
        controller = build_controller(
            predictor_factory=lambda t: RegularOtpPredictor(t, depth=5),
            seqcache=SequenceNumberCache(4096),
        )
        page = controller.address_map.page_number(LINE)
        root = controller.page_table.state(page).mapping_root
        controller.backing.write_seqnum(LINE, root + 50)
        controller.fetch_line(0, LINE)
        result = controller.fetch_line(10_000, LINE)
        assert result.fetch_class is FetchClass.CACHE_ONLY


class TestWriteback:
    def test_counter_increments(self):
        controller = build_controller()
        before = controller.current_seqnum(LINE)
        result = controller.writeback_line(0, LINE)
        assert result.seqnum == before + 1
        assert controller.current_seqnum(LINE) == before + 1
        assert not result.rebased

    def test_repeated_writebacks_keep_incrementing(self):
        controller = build_controller()
        first = controller.writeback_line(0, LINE).seqnum
        second = controller.writeback_line(100, LINE).seqnum
        assert second == first + 1

    def test_rebase_after_root_reset(self):
        controller = build_controller()
        page = controller.address_map.page_number(LINE)
        controller.writeback_line(0, LINE)
        controller.page_table.reset_root(page)
        result = controller.writeback_line(100, LINE)
        assert result.rebased
        assert result.seqnum == controller.page_table.root(page)
        assert controller.stats.rebased_writebacks == 1

    def test_writeback_uses_engine_and_dram(self):
        controller = build_controller()
        result = controller.writeback_line(0, LINE)
        assert controller.engine.stats.demand_blocks == 2
        assert controller.dram.stats.writes == 1
        assert result.completion_time > controller.engine.latency


class TestFunctionalMode:
    def test_roundtrip_through_untrusted_memory(self, key256):
        controller = build_controller(key=key256)
        plaintext = bytes(range(32))
        controller.writeback_line(0, LINE, plaintext)
        # The backing store never sees the plaintext.
        assert controller.backing.read_line(LINE) != plaintext
        result = controller.fetch_line(1000, LINE)
        assert result.plaintext == plaintext

    def test_unwritten_line_reads_zero(self, key256):
        controller = build_controller(key=key256)
        assert controller.fetch_line(0, LINE).plaintext == bytes(32)

    def test_writeback_requires_plaintext(self, key256):
        controller = build_controller(key=key256)
        with pytest.raises(ValueError, match="plaintext"):
            controller.writeback_line(0, LINE)

    def test_wrong_length_plaintext_rejected(self, key256):
        controller = build_controller(key=key256)
        with pytest.raises(ValueError):
            controller.writeback_line(0, LINE, bytes(16))

    def test_pad_reuse_audited(self, key256):
        controller = build_controller(key=key256)
        for i in range(20):
            controller.writeback_line(i * 100, LINE, bytes(32))
        assert controller.auditor.clean
        assert controller.auditor.seals == 20

    def test_integrity_detects_tampering(self, key256):
        controller = build_controller(key=key256, integrity=True)
        controller.writeback_line(0, LINE, bytes(32))
        controller.backing.tamper_line(LINE, b"\x01")
        with pytest.raises(IntegrityError):
            controller.fetch_line(1000, LINE)

    def test_integrity_passes_untampered(self, key256):
        controller = build_controller(key=key256, integrity=True)
        controller.writeback_line(0, LINE, bytes(range(32)))
        assert controller.fetch_line(1000, LINE).plaintext == bytes(range(32))

    def test_integrity_detects_counter_replay(self, key256):
        # Adversary rolls the stored counter back to an old value (with the
        # matching old ciphertext withheld — just the counter here).
        controller = build_controller(key=key256, integrity=True)
        controller.writeback_line(0, LINE, bytes(32))
        old_counter = controller.backing.read_seqnum(LINE)
        controller.writeback_line(100, LINE, bytes(range(32)))
        controller.backing.write_seqnum(LINE, old_counter)
        with pytest.raises(IntegrityError):
            controller.fetch_line(1000, LINE)


class TestStats:
    def test_fetch_counters(self):
        controller = build_controller()
        controller.fetch_line(0, LINE)
        controller.fetch_line(500, LINE + 32)
        assert controller.stats.fetches == 2
        assert controller.stats.mean_exposed_latency > 0

    def test_coverage_oracle_is_high(self):
        controller = build_controller(oracle=True)
        for i in range(5):
            controller.fetch_line(i * 1000, LINE + i * 32)
        assert controller.stats.coverage == 1.0
