"""OTP predictors: guess sets, adaptivity, range tables, context LOR."""

import pytest

from repro.crypto.rng import HardwareRng
from repro.secure.predictors import (
    ContextOtpPredictor,
    NullPredictor,
    RangePredictionTable,
    RegularOtpPredictor,
    TwoLevelOtpPredictor,
)
from repro.secure.seqnum import PageSecurityTable

PAGE = 3
LINE = PAGE * 4096 + 2 * 32  # line 2 of page 3


def fresh_table(**kwargs):
    return PageSecurityTable(rng=HardwareRng(99), **kwargs)


class TestNullPredictor:
    def test_never_guesses(self):
        table = fresh_table()
        predictor = NullPredictor(table)
        assert predictor.predict(PAGE, LINE) == []


class TestRegular:
    def test_guesses_cover_root_to_depth(self):
        table = fresh_table()
        predictor = RegularOtpPredictor(table, depth=5)
        root = table.root(PAGE)
        assert predictor.predict(PAGE, LINE) == [root + i for i in range(6)]

    def test_depth_zero_single_guess(self):
        table = fresh_table()
        predictor = RegularOtpPredictor(table, depth=0)
        assert predictor.predict(PAGE, LINE) == [table.root(PAGE)]

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            RegularOtpPredictor(fresh_table(), depth=-1)

    def test_guesses_wrap_in_64_bits(self):
        table = fresh_table()
        table.state(PAGE).root = (1 << 64) - 2
        predictor = RegularOtpPredictor(table, depth=3)
        guesses = predictor.predict(PAGE, LINE)
        assert guesses == [(1 << 64) - 2, (1 << 64) - 1, 0, 1]

    def test_adaptive_reset_on_sustained_misses(self):
        table = fresh_table()
        predictor = RegularOtpPredictor(table, depth=5, adaptive=True)
        root = table.root(PAGE)
        for _ in range(16):
            predictor.observe_fetch(PAGE, LINE, actual_seqnum=root + 100, hit=False)
        assert table.root(PAGE) != root
        assert predictor.stats.root_resets == 1

    def test_non_adaptive_never_resets(self):
        table = fresh_table()
        predictor = RegularOtpPredictor(table, depth=5, adaptive=False)
        root = table.root(PAGE)
        for _ in range(32):
            predictor.observe_fetch(PAGE, LINE, root + 100, hit=False)
        assert table.root(PAGE) == root

    def test_root_history_guesses(self):
        table = fresh_table(history_depth=1)
        predictor = RegularOtpPredictor(table, depth=2, use_root_history=True)
        old_root = table.root(PAGE)
        table.reset_root(PAGE)
        new_root = table.root(PAGE)
        guesses = predictor.predict(PAGE, LINE)
        for i in range(3):
            assert new_root + i in guesses
            assert old_root + i in guesses

    def test_record_tracks_stats(self):
        table = fresh_table()
        predictor = RegularOtpPredictor(table, depth=5)
        guesses = predictor.predict(PAGE, LINE)
        assert predictor.record(guesses, guesses[3]) is True
        assert predictor.record(guesses, guesses[-1] + 1) is False
        assert predictor.stats.lookups == 2
        assert predictor.stats.hits == 1
        assert predictor.stats.guesses_issued == 12
        assert predictor.stats.hit_rate == 0.5
        assert predictor.stats.guesses_per_lookup == 6.0


class TestRangeTable:
    def test_cold_lookup_is_bucket_zero_and_counts_miss(self):
        table = RangePredictionTable(entries=4)
        assert table.bucket(0, 0) == 0
        assert table.misses == 1

    def test_train_then_lookup(self):
        table = RangePredictionTable(entries=4)
        table.train(0, 5, distance=13, window=6)
        assert table.bucket(0, 5) == 2

    def test_fresh_entry_filled_with_observed_bucket(self):
        table = RangePredictionTable(entries=4)
        table.train(0, 5, distance=13, window=6)
        # Other lines of the page inherit the bucket until retrained.
        assert table.bucket(0, 99) == 2

    def test_retraining_specializes_per_line(self):
        table = RangePredictionTable(entries=4)
        table.train(0, 5, distance=13, window=6)
        table.train(0, 7, distance=0, window=6)
        assert table.bucket(0, 7) == 0
        assert table.bucket(0, 5) == 2

    def test_bucket_saturates(self):
        table = RangePredictionTable(entries=4, range_bits=4)
        table.train(0, 0, distance=10_000, window=6)
        assert table.bucket(0, 0) == 15

    def test_lru_capacity(self):
        table = RangePredictionTable(entries=2)
        table.train(0, 0, 6, 6)
        table.train(1, 0, 6, 6)
        table.bucket(0, 0)           # touch page 0
        table.train(2, 0, 6, 6)      # evicts page 1
        assert table.bucket(1, 0) == 0
        assert table.bucket(0, 0) == 1

    def test_invalidate_page(self):
        table = RangePredictionTable(entries=4)
        table.train(0, 0, 6, 6)
        table.invalidate_page(0)
        assert table.bucket(0, 0) == 0

    def test_storage_bits_matches_paper_budget(self):
        # 64 entries x 128 lines x 4 bits = 32768 bits = 4KB.
        table = RangePredictionTable(entries=64, range_bits=4, lines_per_page=128)
        assert table.storage_bits == 64 * 128 * 4
        assert table.storage_bits // 8 == 4096

    @pytest.mark.parametrize("kwargs", [dict(entries=0), dict(range_bits=0), dict(range_bits=17)])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RangePredictionTable(**kwargs)


class TestTwoLevel:
    def test_cold_page_behaves_like_regular(self):
        table = fresh_table()
        predictor = TwoLevelOtpPredictor(table, depth=5)
        root = table.root(PAGE)
        assert predictor.predict(PAGE, LINE)[:6] == [root + i for i in range(6)]

    def test_trained_bucket_shifts_window(self):
        table = fresh_table()
        predictor = TwoLevelOtpPredictor(table, depth=5)
        root = table.root(PAGE)
        predictor.observe_writeback(PAGE, LINE, root + 13)  # bucket 2
        guesses = predictor.predict(PAGE, LINE)
        assert root + 12 in guesses
        assert root + 13 in guesses
        assert root + 17 in guesses
        assert root in guesses  # fallback to the root guess

    def test_fetch_observation_trains(self):
        table = fresh_table()
        predictor = TwoLevelOtpPredictor(table, depth=5)
        root = table.root(PAGE)
        predictor.observe_fetch(PAGE, LINE, root + 20, hit=False)
        assert root + 20 in predictor.predict(PAGE, LINE)

    def test_reset_invalidates_ranges(self):
        table = fresh_table()
        predictor = TwoLevelOtpPredictor(table, depth=5)
        root = table.root(PAGE)
        predictor.observe_writeback(PAGE, LINE, root + 13)
        for _ in range(16):  # force an adaptive reset
            predictor.observe_fetch(PAGE, LINE, root + 500, hit=False)
        new_root = table.root(PAGE)
        assert new_root != root
        guesses = predictor.predict(PAGE, LINE)
        assert guesses[:6] == [(new_root + i) & ((1 << 64) - 1) for i in range(6)]

    def test_window_equals_depth_plus_one(self):
        predictor = TwoLevelOtpPredictor(fresh_table(), depth=5)
        assert predictor.window == 6


class TestContext:
    def test_initial_guesses_are_regular_plus_swing_from_zero(self):
        table = fresh_table()
        predictor = ContextOtpPredictor(table, depth=5, swing=3)
        root = table.root(PAGE)
        guesses = predictor.predict(PAGE, LINE)
        # LOR = 0: swing window [max(0-3,0), 3] folds into the regular set.
        assert guesses == [root + i for i in range(6)]

    def test_lor_extends_reach(self):
        table = fresh_table()
        predictor = ContextOtpPredictor(table, depth=5, swing=3)
        root = table.root(PAGE)
        predictor.observe_fetch(PAGE, LINE, root + 20, hit=False)
        guesses = predictor.predict(PAGE, LINE)
        for offset in range(17, 24):
            assert root + offset in guesses

    def test_lor_window_clamped_at_root(self):
        table = fresh_table()
        predictor = ContextOtpPredictor(table, depth=5, swing=3)
        root = table.root(PAGE)
        predictor.observe_fetch(PAGE, LINE, root + 1, hit=True)
        guesses = predictor.predict(PAGE, LINE)
        assert min(g - root for g in guesses) == 0

    def test_max_guess_count(self):
        # depth+1 regular + 2*swing+1 context, minus overlap.
        table = fresh_table()
        predictor = ContextOtpPredictor(table, depth=5, swing=3)
        root = table.root(PAGE)
        predictor.observe_fetch(PAGE, LINE, root + 50, hit=False)
        guesses = predictor.predict(PAGE, LINE)
        assert len(guesses) == 6 + 7

    def test_lor_not_updated_by_old_root_seqnums(self):
        table = fresh_table()
        predictor = ContextOtpPredictor(table, depth=5, swing=3)
        predictor.observe_fetch(PAGE, LINE, table.root(PAGE) + 9, hit=False)
        predictor.observe_fetch(PAGE, LINE, 0xDEAD_BEEF_0000_0000, hit=False)
        assert predictor.latest_offset == 9

    def test_negative_swing_rejected(self):
        with pytest.raises(ValueError):
            ContextOtpPredictor(fresh_table(), swing=-1)

    def test_guesses_deduplicated(self):
        table = fresh_table()
        predictor = ContextOtpPredictor(table, depth=5, swing=3)
        root = table.root(PAGE)
        predictor.observe_fetch(PAGE, LINE, root + 4, hit=True)
        guesses = predictor.predict(PAGE, LINE)
        assert len(guesses) == len(set(guesses))
