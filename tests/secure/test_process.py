"""Multiprogramming: per-process contexts, isolation, shared hardware."""

import pytest

from repro.secure.process import SecureProcessManager
from repro.secure.predictors import ContextOtpPredictor, RegularOtpPredictor
from repro.secure.seqcache import SequenceNumberCache


class TestProcessLifecycle:
    def test_first_process_becomes_active(self):
        manager = SecureProcessManager()
        context = manager.create_process(1)
        assert manager.active is context
        assert context.switches_in == 1

    def test_duplicate_pid_rejected(self):
        manager = SecureProcessManager()
        manager.create_process(1)
        with pytest.raises(ValueError, match="already exists"):
            manager.create_process(1)

    @pytest.mark.parametrize("pid", [-1, 1 << 16])
    def test_pid_range(self, pid):
        with pytest.raises(ValueError):
            SecureProcessManager().create_process(pid)

    def test_switch_unknown_pid(self):
        manager = SecureProcessManager()
        manager.create_process(1)
        with pytest.raises(KeyError):
            manager.switch_to(9)

    def test_active_without_processes(self):
        with pytest.raises(RuntimeError):
            SecureProcessManager().active

    def test_switch_counting(self):
        manager = SecureProcessManager()
        manager.create_process(1)
        manager.create_process(2)
        manager.switch_to(2)
        manager.switch_to(2)  # no-op
        manager.switch_to(1)
        assert manager.context_switches == 2

    def test_processes_listing(self):
        manager = SecureProcessManager()
        manager.create_process(3)
        manager.create_process(1)
        assert manager.processes() == [1, 3]


class TestIsolation:
    def test_asid_separates_address_spaces(self):
        manager = SecureProcessManager()
        a = manager.create_process(1)
        b = manager.create_process(2)
        assert a.translate(0x1000) != b.translate(0x1000)

    def test_address_window_enforced(self):
        manager = SecureProcessManager()
        context = manager.create_process(1)
        with pytest.raises(ValueError):
            context.translate(1 << 44)

    def test_processes_have_distinct_roots(self):
        manager = SecureProcessManager()
        a = manager.create_process(1)
        b = manager.create_process(2)
        assert a.page_table.root(0) != b.page_table.root(0)

    def test_per_process_keys_yield_distinct_ciphertexts(self):
        manager = SecureProcessManager()
        manager.create_process(1, key=bytes(32))
        manager.create_process(2, key=bytes([1]) * 32)
        plaintext = bytes(range(32))
        manager.switch_to(1)
        manager.writeback(0, 0x1000, plaintext)
        ct_a = manager.backing.read_line(manager.active.translate(0x1000))
        manager.switch_to(2)
        manager.writeback(100, 0x1000, plaintext)
        ct_b = manager.backing.read_line(manager.active.translate(0x1000))
        assert ct_a != ct_b

    def test_context_state_survives_switches(self):
        manager = SecureProcessManager()
        manager.create_process(
            1, predictor_factory=lambda t: ContextOtpPredictor(t)
        )
        manager.create_process(
            2, predictor_factory=lambda t: ContextOtpPredictor(t)
        )
        # Drift process 1's LOR, then bounce through process 2 and back.
        manager.switch_to(1)
        root = manager.active.page_table.state(
            manager.active.translate(0x1000) >> 12
        ).mapping_root
        manager.active.controller.backing.write_seqnum(
            manager.active.translate(0x1000), root + 9
        )
        manager.fetch(0, 0x1000)
        assert manager.active.predictor.latest_offset == 9
        manager.switch_to(2)
        manager.fetch(1000, 0x2000)
        manager.switch_to(1)
        assert manager.active.predictor.latest_offset == 9  # preserved


class TestSharedHardware:
    def test_engine_shared_across_processes(self):
        manager = SecureProcessManager()
        manager.create_process(1, predictor_factory=lambda t: RegularOtpPredictor(t))
        manager.create_process(2, predictor_factory=lambda t: RegularOtpPredictor(t))
        manager.switch_to(1)
        manager.fetch(0, 0x1000)
        manager.switch_to(2)
        manager.fetch(10, 0x1000)
        assert manager.engine.stats.speculative_blocks == 24  # 2 x 6 guesses x 2

    def test_seqcache_interference_between_processes(self):
        # A tiny shared counter cache: process 2's traffic evicts process
        # 1's counters — the "in-between context switches" effect the paper
        # mentions for caching schemes.
        manager = SecureProcessManager(seqcache=SequenceNumberCache(1024, associativity=1))
        manager.create_process(1)
        manager.create_process(2)
        manager.switch_to(1)
        manager.fetch(0, 0x1000)
        again = manager.fetch(10_000, 0x1000)
        assert again.seqcache_hit
        manager.switch_to(2)
        for i in range(1024):  # flood the shared cache
            manager.fetch(20_000 + i, i * 32)
        manager.switch_to(1)
        after = manager.fetch(900_000, 0x1000)
        assert not after.seqcache_hit

    def test_prediction_unaffected_by_other_process_traffic(self):
        # Prediction state lives in the per-process context, so it is
        # immune to the interference that hurts the shared counter cache.
        manager = SecureProcessManager()
        manager.create_process(1, predictor_factory=lambda t: RegularOtpPredictor(t))
        manager.create_process(2, predictor_factory=lambda t: RegularOtpPredictor(t))
        manager.switch_to(2)
        for i in range(256):
            manager.fetch(i * 100, i * 32)
        manager.switch_to(1)
        result = manager.fetch(1_000_000, 0x1000)
        assert result.predicted
