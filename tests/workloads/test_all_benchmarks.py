"""Per-benchmark sanity across the whole SPEC2000-like suite."""

import pytest

from repro.cpu.system import collect_miss_trace
from repro.cpu.trace import summarize_trace
from repro.memory.hierarchy import MemoryHierarchy
from repro.experiments.config import TABLE1_256K
from repro.workloads.spec import SPEC_BENCHMARKS, build_workload

REFS = 2500


@pytest.fixture(scope="module")
def workloads():
    return {name: build_workload(name, references=REFS) for name in SPEC_BENCHMARKS}


class TestEveryBenchmark:
    @pytest.mark.parametrize("name", SPEC_BENCHMARKS)
    def test_trace_shape(self, workloads, name):
        workload = workloads[name]
        summary = summarize_trace(workload.trace)
        assert summary.references == REFS
        assert summary.instructions > 0
        assert 0.0 < summary.write_fraction < 0.9
        assert summary.unique_pages > 4

    @pytest.mark.parametrize("name", SPEC_BENCHMARKS)
    def test_preseed_covers_miss_stream(self, workloads, name):
        # Every line the workload can miss on has fast-forward counter
        # state, except the cache-resident hot set (whose misses are rare).
        workload = workloads[name]
        preseed_lines = set(workload.preseed)
        summary = summarize_trace(workload.trace)
        covered = sum(
            1 for access in workload.trace
            if (access.address & ~31) in preseed_lines
        )
        # Hot/static regions carry no preseed by design; the rest must.
        assert covered / summary.references > 0.2

    @pytest.mark.parametrize("name", SPEC_BENCHMARKS)
    def test_produces_l2_misses(self, workloads, name):
        miss_trace = collect_miss_trace(
            workloads[name].trace,
            hierarchy=MemoryHierarchy(TABLE1_256K.hierarchy),
        )
        # The paper subsets SPEC "for those with high L2 misses".
        assert miss_trace.l2_misses > REFS * 0.1
        assert miss_trace.l2_misses < REFS

    def test_memory_boundness_spectrum(self, workloads):
        mpki = {}
        for name, workload in workloads.items():
            miss_trace = collect_miss_trace(
                workload.trace, hierarchy=MemoryHierarchy(TABLE1_256K.hierarchy)
            )
            mpki[name] = miss_trace.misses_per_kilo_instruction
        # The pointer/FP heavyweights sit above the mild INT codes.
        assert mpki["mcf"] > mpki["gzip"]
        assert mpki["swim"] > mpki["gcc"]
        assert max(mpki.values()) > 2 * min(mpki.values())
