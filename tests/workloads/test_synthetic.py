"""Synthetic stream primitives: determinism, geometry, preseed structure."""

import pytest

from repro.crypto.rng import HardwareRng
from repro.workloads.synthetic import (
    HotStream,
    IterativeSweep,
    StaticStream,
    StridedSweep,
    TiledSweep,
    ZipfStream,
    interleave,
    update_band,
)

BASE = 0x1000_0000


def drain(stream, count, seed=1):
    rng = HardwareRng(seed)
    return [stream.next_access(rng) for _ in range(count)]


class TestStridedSweep:
    def test_addresses_stay_in_region(self):
        stream = StridedSweep(BASE, num_lines=64)
        for access in drain(stream, 200):
            assert BASE <= access.address < BASE + 64 * 32

    def test_counter_line_disjointness_within_pass(self):
        # No two accesses of one pass share a 32B sequence-number-cache
        # line (4 adjacent 8B counters) — the property that defeats the
        # cache's spatial locality.
        stream = StridedSweep(BASE, num_lines=64, stride_lines=4)
        pass_accesses = drain(stream, 16)  # one full offset-0 lap
        counter_lines = {(a.address // 32) // 4 for a in pass_accesses}
        assert len(counter_lines) == 16

    def test_all_lines_covered_after_stride_passes(self):
        stream = StridedSweep(BASE, num_lines=16, stride_lines=4)
        touched = {a.address for a in drain(stream, 16)}
        assert len(touched) == 16

    def test_ascending_page_clustered_order(self):
        stream = StridedSweep(BASE, num_lines=1024, stride_lines=4)
        addresses = [a.address for a in drain(stream, 255)]
        assert addresses == sorted(addresses)

    def test_preseed_covers_whole_region_uniformly_per_block(self):
        stream = StridedSweep(BASE, num_lines=2048, phase_spread=3)
        seeds = stream.preseed(HardwareRng(3))
        assert len(seeds) == 2048
        # 8-page blocks share a phase.
        pages = {}
        for line, distance in seeds.items():
            pages.setdefault(line // 4096, set()).add(distance)
        assert all(len(values) == 1 for values in pages.values())

    def test_write_prob_extremes(self):
        all_writes = StridedSweep(BASE, num_lines=8, write_prob=1.0)
        assert all(a.is_write for a in drain(all_writes, 20))
        no_writes = StridedSweep(BASE, num_lines=8, write_prob=0.0)
        assert not any(a.is_write for a in drain(no_writes, 20))

    @pytest.mark.parametrize("kwargs", [dict(num_lines=0), dict(num_lines=4, stride_lines=0)])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StridedSweep(BASE, **kwargs)


class TestUpdateBand:
    def test_band_distances_beyond_depth(self):
        band = update_band(BASE, 256)
        seeds = band.preseed(HardwareRng(5))
        assert all(distance >= 10 for distance in seeds.values())

    def test_deep_band_beyond_range_table(self):
        band = update_band(BASE, 256, deep=True)
        seeds = band.preseed(HardwareRng(5))
        # 4-bit table with depth 5 reaches distance 95 at most.
        assert all(distance > 95 for distance in seeds.values())


class TestIterativeSweep:
    def test_every_pass_is_a_permutation(self):
        stream = IterativeSweep(BASE, num_lines=32)
        first_pass = {a.address for a in drain(stream, 32)}
        assert len(first_pass) == 32

    def test_sequential_mode(self):
        stream = IterativeSweep(BASE, num_lines=8, permuted=False)
        addresses = [a.address for a in drain(stream, 8)]
        assert addresses == [BASE + i * 32 for i in range(8)]

    def test_validation(self):
        with pytest.raises(ValueError):
            IterativeSweep(BASE, num_lines=0)


class TestTiledSweep:
    def test_stays_within_current_tile(self):
        stream = TiledSweep(BASE, total_lines=64, tile_lines=16, passes_per_tile=1)
        first_tile = drain(stream, 16)
        assert all(BASE <= a.address < BASE + 16 * 32 for a in first_tile)

    def test_advances_to_next_tile(self):
        stream = TiledSweep(BASE, total_lines=64, tile_lines=16, passes_per_tile=1)
        drain(stream, 16)
        second_tile = drain(stream, 16, seed=2)
        assert all(
            BASE + 16 * 32 <= a.address < BASE + 32 * 32 for a in second_tile
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(total_lines=0, tile_lines=1),
            dict(total_lines=8, tile_lines=0),
            dict(total_lines=8, tile_lines=16),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TiledSweep(BASE, **kwargs)


class TestZipfStream:
    def test_popularity_is_skewed(self):
        stream = ZipfStream(BASE, num_lines=1024, alpha=1.0)
        counts = {}
        for access in drain(stream, 3000):
            counts[access.address] = counts.get(access.address, 0) + 1
        top_share = max(counts.values()) / 3000
        assert top_share > 0.02  # the hottest line is far above uniform (1/1024)

    def test_addresses_in_region(self):
        stream = ZipfStream(BASE, num_lines=64)
        assert all(
            BASE <= a.address < BASE + 64 * 32 for a in drain(stream, 200)
        )

    def test_preseed_tiers(self):
        stream = ZipfStream(BASE, num_lines=1024, alpha=0.8)
        seeds = stream.preseed(HardwareRng(5))
        distances = sorted(seeds.values())
        assert distances[0] <= 3            # tail at the base phase
        assert distances[-1] >= 6           # hot tier beyond depth

    @pytest.mark.parametrize(
        "kwargs", [dict(num_lines=0), dict(num_lines=8, alpha=-1.0)]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ZipfStream(BASE, **kwargs)


class TestStaticAndHot:
    def test_static_never_writes(self):
        stream = StaticStream(BASE, num_lines=32)
        assert not any(a.is_write for a in drain(stream, 100))

    def test_static_no_preseed(self):
        assert StaticStream(BASE, num_lines=4).preseed(HardwareRng(1)) == {}

    def test_hot_stays_small(self):
        stream = HotStream(BASE, num_lines=16)
        lines = {a.address // 32 for a in drain(stream, 500)}
        assert len(lines) <= 16

    def test_instruction_flag(self):
        stream = StaticStream(BASE, num_lines=4, is_instruction=True)
        assert all(a.is_instruction for a in drain(stream, 10))


class TestInterleave:
    def test_exact_reference_count(self):
        streams = [(1.0, HotStream(BASE))]
        trace = interleave(streams, 123, HardwareRng(1))
        assert len(trace) == 123

    def test_deterministic(self):
        def build():
            return interleave(
                [(0.5, HotStream(BASE)), (0.5, StaticStream(BASE + 4096, 16))],
                200,
                HardwareRng(7),
            )

        assert [a.address for a in build()] == [a.address for a in build()]

    def test_weights_respected(self):
        streams = [
            (0.9, HotStream(BASE, num_lines=1)),
            (0.1, HotStream(BASE + 0x100000, num_lines=1)),
        ]
        trace = interleave(streams, 2000, HardwareRng(3), burst_mean=1)
        heavy = sum(a.address < BASE + 0x100000 for a in trace)
        assert heavy > 1600

    def test_burstiness(self):
        streams = [
            (0.5, HotStream(BASE, num_lines=1)),
            (0.5, HotStream(BASE + 0x100000, num_lines=1)),
        ]
        trace = interleave(streams, 2000, HardwareRng(3), burst_mean=10)
        switches = sum(
            (trace[i].address < BASE + 0x100000)
            != (trace[i + 1].address < BASE + 0x100000)
            for i in range(len(trace) - 1)
        )
        assert switches < 600  # far fewer than per-access mixing

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(streams=[], references=10),
            dict(streams=[(0.0, None)], references=10),
            dict(streams=[(1.0, None)], references=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            interleave(rng=HardwareRng(1), **kwargs)

    def test_burst_mean_validated(self):
        with pytest.raises(ValueError):
            interleave([(1.0, HotStream(BASE))], 10, HardwareRng(1), burst_mean=0)
