"""SPEC2000-like workload models."""

import pytest

from repro.cpu.trace import summarize_trace
from repro.workloads.spec import (
    SPEC_BENCHMARKS,
    build_streams,
    build_workload,
)


class TestCatalog:
    def test_fourteen_benchmarks(self):
        assert len(SPEC_BENCHMARKS) == 14
        assert "mcf" in SPEC_BENCHMARKS and "swim" in SPEC_BENCHMARKS

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            build_streams("quake")

    @pytest.mark.parametrize("name", SPEC_BENCHMARKS)
    def test_stream_weights_sum_to_one(self, name):
        weights = [weight for weight, _ in build_streams(name)]
        assert sum(weights) == pytest.approx(1.0)

    @pytest.mark.parametrize("name", SPEC_BENCHMARKS)
    def test_stream_regions_do_not_overlap(self, name):
        regions = []
        for _, stream in build_streams(name):
            lines = stream.touched_lines()
            regions.append((min(lines), max(lines)))
        regions.sort()
        for (_, end), (start, _) in zip(regions, regions[1:]):
            assert end < start


class TestBuildWorkload:
    def test_reference_count(self):
        workload = build_workload("gzip", references=500)
        assert workload.references == 500

    def test_deterministic(self):
        a = build_workload("mcf", references=300, seed=4)
        b = build_workload("mcf", references=300, seed=4)
        assert [x.address for x in a.trace] == [x.address for x in b.trace]
        assert a.preseed == b.preseed

    def test_seed_changes_trace(self):
        a = build_workload("mcf", references=300, seed=1)
        b = build_workload("mcf", references=300, seed=2)
        assert [x.address for x in a.trace] != [x.address for x in b.trace]

    def test_benchmarks_differ(self):
        a = build_workload("swim", references=300)
        b = build_workload("twolf", references=300)
        assert [x.address for x in a.trace] != [x.address for x in b.trace]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_workload("swim", references=0)

    def test_preseed_lines_are_aligned(self):
        workload = build_workload("vpr", references=100)
        assert all(line % 32 == 0 for line in workload.preseed)
        assert all(distance >= 0 for distance in workload.preseed.values())


class TestPersonalities:
    def test_memory_bound_codes_have_tighter_gaps(self):
        mcf = summarize_trace(build_workload("mcf", references=2000).trace)
        gzip = summarize_trace(build_workload("gzip", references=2000).trace)
        assert (
            mcf.references_per_kilo_instruction
            > gzip.references_per_kilo_instruction
        )

    def test_fp_sweeps_have_large_footprints(self):
        swim = summarize_trace(build_workload("swim", references=4000).trace)
        assert swim.footprint_bytes > 64 * 1024

    def test_write_fractions_are_moderate(self):
        for name in ("swim", "twolf", "gcc"):
            summary = summarize_trace(build_workload(name, references=2000).trace)
            assert 0.02 < summary.write_fraction < 0.8
