"""Set-associative cache model: LRU, dirty bits, eviction, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache, CacheConfig


def small_cache(sets=4, ways=2, line=32):
    return Cache(CacheConfig(size_bytes=sets * ways * line, line_bytes=line, associativity=ways))


class TestConfig:
    def test_geometry(self):
        config = CacheConfig(size_bytes=256 * 1024, line_bytes=32, associativity=4)
        assert config.num_sets == 2048
        assert config.num_lines == 8192

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size_bytes=0),
            dict(size_bytes=-1),
            dict(size_bytes=1024, line_bytes=33),
            dict(size_bytes=1024, associativity=0),
            dict(size_bytes=100, line_bytes=32, associativity=4),
            dict(size_bytes=32 * 3 * 1, line_bytes=32, associativity=1),  # 3 sets
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CacheConfig(**kwargs)


class TestBasicBehaviour:
    def test_first_access_misses(self):
        cache = small_cache()
        result = cache.access(0)
        assert not result.hit
        assert result.victim_address is None

    def test_second_access_hits(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(0).hit

    def test_offsets_within_line_hit(self):
        cache = small_cache()
        cache.access(0x100)
        assert cache.access(0x11F).hit  # same 32B line
        assert not cache.access(0x120).hit  # next line

    def test_stats(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(32)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)
        assert cache.stats.miss_rate == pytest.approx(2 / 3)


class TestLru:
    def test_lru_eviction_order(self):
        cache = small_cache(sets=1, ways=2)
        cache.access(0 * 32)
        cache.access(1 * 32)
        cache.access(0 * 32)  # touch 0: now 1 is LRU
        result = cache.access(2 * 32)
        assert result.victim_address == 1 * 32

    def test_eviction_only_when_set_full(self):
        cache = small_cache(sets=2, ways=2)
        # Addresses mapping to set 0: line indices 0, 2, 4 ...
        cache.access(0 * 32)
        cache.access(2 * 32)
        result = cache.access(4 * 32)
        assert result.victim_address == 0 * 32

    def test_different_sets_do_not_interfere(self):
        cache = small_cache(sets=2, ways=1)
        cache.access(0 * 32)  # set 0
        cache.access(1 * 32)  # set 1
        assert cache.access(0 * 32).hit
        assert cache.access(1 * 32).hit


class TestDirty:
    def test_write_marks_dirty(self):
        cache = small_cache(sets=1, ways=1)
        cache.access(0, is_write=True)
        result = cache.access(32)
        assert result.victim_dirty

    def test_clean_eviction(self):
        cache = small_cache(sets=1, ways=1)
        cache.access(0, is_write=False)
        assert not cache.access(32).victim_dirty

    def test_write_hit_marks_dirty(self):
        cache = small_cache(sets=1, ways=1)
        cache.access(0)
        cache.access(0, is_write=True)
        assert cache.access(32).victim_dirty

    def test_mark_dirty(self):
        cache = small_cache()
        cache.access(0)
        assert cache.mark_dirty(0)
        assert not cache.mark_dirty(64 * 32)

    def test_dirty_eviction_stat(self):
        cache = small_cache(sets=1, ways=1)
        cache.access(0, is_write=True)
        cache.access(32)
        assert cache.stats.dirty_evictions == 1


class TestMaintenance:
    def test_probe_does_not_touch(self):
        cache = small_cache(sets=1, ways=2)
        cache.access(0 * 32)
        cache.access(1 * 32)
        accesses_before = cache.stats.accesses
        assert cache.probe(0)
        assert cache.stats.accesses == accesses_before
        # Probe must not have refreshed line 0's LRU position.
        assert cache.access(2 * 32).victim_address == 0

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0)
        assert cache.invalidate(0)
        assert not cache.probe(0)
        assert not cache.invalidate(0)

    def test_pop_line_reports_dirty(self):
        cache = small_cache()
        cache.access(0, is_write=True)
        assert cache.pop_line(0) == (True, True)
        assert cache.pop_line(0) == (False, False)

    def test_flush_dirty_returns_addresses_and_cleans(self):
        cache = small_cache()
        cache.access(0, is_write=True)
        cache.access(32, is_write=False)
        cache.access(64, is_write=True)
        flushed = sorted(cache.flush_dirty())
        assert flushed == [0, 64]
        assert cache.flush_dirty() == []
        assert cache.probe(0)  # stays resident, now clean

    def test_resident_lines(self):
        cache = small_cache()
        cache.access(0)
        cache.access(32)
        assert sorted(cache.resident_lines()) == [0, 32]

    def test_len(self):
        cache = small_cache()
        assert len(cache) == 0
        cache.access(0)
        cache.access(4096)
        assert len(cache) == 2


class TestInvariants:
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=4095), min_size=1, max_size=300
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_capacity_never_exceeded(self, addresses):
        cache = small_cache(sets=4, ways=2)
        for address in addresses:
            cache.access(address)
        assert len(cache) <= cache.config.num_lines

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=2047), min_size=1, max_size=200
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_last_access_always_resident(self, addresses):
        cache = small_cache(sets=2, ways=2)
        for address in addresses:
            cache.access(address)
            assert cache.probe(address)

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1023), st.booleans()
            ),
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, ops):
        cache = small_cache()
        for address, is_write in ops:
            cache.access(address, is_write=is_write)
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses
