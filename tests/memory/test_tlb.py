"""TLB model."""

from repro.memory.tlb import Tlb, TlbConfig


class TestTlb:
    def test_first_translation_misses(self):
        tlb = Tlb()
        assert not tlb.access(0x1000)

    def test_second_translation_hits(self):
        tlb = Tlb()
        tlb.access(0x1000)
        assert tlb.access(0x1000)

    def test_same_page_different_offset_hits(self):
        tlb = Tlb()
        tlb.access(0x1000)
        assert tlb.access(0x1FFF)

    def test_different_page_misses(self):
        tlb = Tlb()
        tlb.access(0x1000)
        assert not tlb.access(0x2000)

    def test_resident_probe(self):
        tlb = Tlb()
        assert not tlb.resident(0x1000)
        tlb.access(0x1000)
        assert tlb.resident(0x1000)

    def test_capacity_eviction(self):
        tlb = Tlb(TlbConfig(entries=4, associativity=4))
        for page in range(5):
            tlb.access(page * 4096)
        resident = sum(tlb.resident(page * 4096) for page in range(5))
        assert resident == 4

    def test_flush(self):
        tlb = Tlb()
        tlb.access(0x1000)
        tlb.flush()
        assert not tlb.resident(0x1000)

    def test_stats_exposed(self):
        tlb = Tlb()
        tlb.access(0x1000)
        tlb.access(0x1000)
        assert tlb.stats.accesses == 2
        assert tlb.stats.hits == 1
