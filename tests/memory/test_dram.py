"""DRAM timing: row hits/empties/conflicts, pipelined line+counter fetch."""

import pytest

from repro.memory.dram import Dram, DramConfig


class TestConfig:
    @pytest.mark.parametrize("banks", [0, 3, 5])
    def test_rejects_bad_bank_count(self, banks):
        with pytest.raises(ValueError):
            DramConfig(num_banks=banks)

    def test_rejects_bad_row_size(self):
        with pytest.raises(ValueError):
            DramConfig(row_bytes=1000)


class TestRowBuffer:
    def test_first_access_is_row_empty(self):
        dram = Dram()
        dram.read(0, 0x1000, 32)
        assert dram.stats.row_empties == 1
        assert dram.stats.row_hits == 0

    def test_same_row_hits(self):
        dram = Dram()
        dram.read(0, 0x1000, 32)
        dram.read(1000, 0x1020, 32)
        assert dram.stats.row_hits == 1

    def test_different_row_same_bank_conflicts(self):
        config = DramConfig()
        dram = Dram(config)
        stride = config.row_bytes * config.num_banks  # same bank, next row
        dram.read(0, 0, 32)
        dram.read(10_000, stride, 32)
        assert dram.stats.row_conflicts == 1

    def test_different_banks_no_conflict(self):
        config = DramConfig()
        dram = Dram(config)
        dram.read(0, 0, 32)
        dram.read(10_000, config.row_bytes, 32)  # next bank
        assert dram.stats.row_conflicts == 0
        assert dram.stats.row_empties == 2

    def test_row_hit_is_faster_than_conflict(self):
        config = DramConfig()
        hit_time = Dram(config)
        hit_time.read(0, 0, 32)
        t_hit = hit_time.read(1000, 32, 32) - 1000

        conflict = Dram(config)
        conflict.read(0, 0, 32)
        stride = config.row_bytes * config.num_banks
        t_conflict = conflict.read(1000, stride, 32) - 1000
        assert t_conflict > t_hit


class TestLineFetch:
    def test_seqnum_arrives_before_line(self):
        dram = Dram()
        timing = dram.fetch_line_with_seqnum(0, 0x2000, 32)
        assert timing.issue < timing.seqnum_ready < timing.line_ready

    def test_controller_overhead_applied(self):
        config = DramConfig(controller_cycles=40)
        dram = Dram(config)
        timing = dram.fetch_line_with_seqnum(100, 0, 32)
        assert timing.issue == 140

    def test_line_transfer_follows_seqnum(self):
        dram = Dram()
        timing = dram.fetch_line_with_seqnum(0, 0, 32)
        # 8B seqnum = 1 beat (5 cycles), 32B line = 4 beats (20 cycles).
        assert timing.line_ready - timing.seqnum_ready == 20

    def test_total_latency_magnitude(self):
        # End-to-end fetch should be on the order of the 96-cycle AES
        # latency (the paper's "comparable" assumption, Section 3.1).
        dram = Dram()
        timing = dram.fetch_line_with_seqnum(0, 0, 32)
        assert 50 <= timing.line_ready <= 150


class TestWrites:
    def test_write_counted(self):
        dram = Dram()
        dram.write(0, 0, 40)
        assert dram.stats.writes == 1
        assert dram.stats.reads == 0

    def test_reset(self):
        dram = Dram()
        dram.read(0, 0, 32)
        dram.reset()
        assert dram.stats.reads == 0
        assert dram.stats.row_empties == 0


class TestBankQueueing:
    def test_same_bank_back_to_back_queues(self):
        dram = Dram()
        first = dram.fetch_line_with_seqnum(0, 0, 32)
        second = dram.fetch_line_with_seqnum(0, 0x40, 32)
        assert second.line_ready > first.line_ready
