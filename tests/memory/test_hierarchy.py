"""Cache hierarchy: inclusion, victim handling, write-back event streams."""

import pytest

from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy


def tiny_hierarchy(l2_size=4 * 1024):
    """Small caches so evictions are easy to trigger."""
    return MemoryHierarchy(
        HierarchyConfig(
            l1i_size=512,
            l1d_size=512,
            l1_associativity=1,
            l2_size=l2_size,
            l2_associativity=4,
        )
    )


class TestBasicPath:
    def test_cold_miss_fetches_line(self):
        h = tiny_hierarchy()
        outcome = h.access(0x1000)
        assert not outcome.l1_hit
        assert outcome.l2_miss
        assert outcome.fetched_lines == (0x1000,)

    def test_l1_hit_after_fill(self):
        h = tiny_hierarchy()
        h.access(0x1000)
        outcome = h.access(0x1008)
        assert outcome.l1_hit
        assert outcome.fetched_lines == ()

    def test_l2_hit_after_l1_eviction(self):
        h = tiny_hierarchy()
        h.access(0x1000)
        h.access(0x1000 + 512)  # direct-mapped L1 conflict
        outcome = h.access(0x1000)
        assert not outcome.l1_hit
        assert outcome.l2_hit

    def test_instruction_and_data_use_separate_l1s(self):
        h = tiny_hierarchy()
        h.access(0x1000, is_instruction=True)
        outcome = h.access(0x1000, is_instruction=False)
        assert not outcome.l1_hit       # cold in L1D
        assert outcome.l2_hit           # warm in shared L2

    def test_line_size_mismatch_rejected(self):
        from repro.memory.address import AddressMap

        with pytest.raises(ValueError, match="line size"):
            MemoryHierarchy(
                HierarchyConfig(line_bytes=64),
                address_map=AddressMap(line_bytes=32),
            )


class TestWritebacks:
    def test_dirty_l2_victim_reported(self):
        h = tiny_hierarchy(l2_size=4 * 1024)
        # Fill one L2 set (4 ways) with writes, then force an eviction.
        sets = h.l2.config.num_sets
        stride = sets * 32
        for way in range(4):
            h.access(way * stride, is_write=True)
        outcome = h.access(4 * stride, is_write=False)
        assert outcome.writeback_lines == (0,)

    def test_clean_victim_not_reported(self):
        h = tiny_hierarchy()
        sets = h.l2.config.num_sets
        stride = sets * 32
        for way in range(4):
            h.access(way * stride, is_write=False)
        outcome = h.access(4 * stride)
        assert outcome.writeback_lines == ()

    def test_dirty_l1_copy_survives_l2_backinvalidation(self):
        # Regression: a line dirty in L1D but clean in L2 must still be
        # written back when the L2 evicts it (inclusion back-invalidation).
        h = tiny_hierarchy()
        sets = h.l2.config.num_sets
        stride = sets * 32
        h.access(0, is_write=False)      # L2 fill, clean
        h.access(0, is_write=True)       # dirty in L1D only (L1 hit)
        for way in range(1, 4):
            h.access(way * stride, is_write=False)
        outcome = h.access(4 * stride)
        assert 0 in outcome.writeback_lines
        # And the stale L1 copy is gone.
        assert not h.l1d.probe(0)

    def test_l1_dirty_victim_folds_into_l2(self):
        h = tiny_hierarchy()
        h.access(0x0, is_write=True)
        h.access(0x0 + 512, is_write=False)  # evicts dirty L1 line 0x0
        # 0x0 must now be dirty in L2: evicting it reports a write-back.
        sets = h.l2.config.num_sets
        stride = sets * 32
        for way in range(1, 4):
            h.access(way * stride)
        outcome = h.access(4 * stride)
        assert 0 in outcome.writeback_lines


class TestFlush:
    def test_flush_returns_dirty_lines_once(self):
        h = tiny_hierarchy()
        h.access(0x1000, is_write=True)
        h.access(0x2000, is_write=True)
        h.access(0x3000, is_write=False)
        flushed = sorted(h.flush_dirty())
        assert flushed == [0x1000, 0x2000]
        assert h.flush_dirty() == []

    def test_flush_includes_l1_only_dirty_lines(self):
        h = tiny_hierarchy()
        h.access(0x1000, is_write=False)
        h.access(0x1000, is_write=True)  # dirty only in L1D
        assert h.flush_dirty() == [0x1000]


class TestEventStreamShape:
    def test_write_allocate(self):
        h = tiny_hierarchy()
        outcome = h.access(0x5000, is_write=True)
        assert outcome.fetched_lines == (0x5000,)  # allocate on write miss

    def test_l2_miss_flag(self):
        h = tiny_hierarchy()
        assert h.access(0x9000).l2_miss
        assert not h.access(0x9000).l2_miss
