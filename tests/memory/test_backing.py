"""Backing store: line data, counters, MACs, adversary operations."""

import pytest

from repro.memory.backing import BackingStore


class TestLines:
    def test_unwritten_line_reads_zero(self):
        store = BackingStore()
        assert store.read_line(0x1000) == bytes(32)
        assert not store.has_line(0x1000)

    def test_write_read_roundtrip(self):
        store = BackingStore()
        data = bytes(range(32))
        store.write_line(0x1000, data)
        assert store.read_line(0x1000) == data
        assert store.has_line(0x1000)

    def test_addresses_are_line_aligned_internally(self):
        store = BackingStore()
        store.write_line(0x1000, bytes(32))
        assert store.read_line(0x101F) == bytes(32)
        assert store.has_line(0x101F)

    @pytest.mark.parametrize("length", [0, 31, 33])
    def test_rejects_wrong_length(self, length):
        with pytest.raises(ValueError):
            BackingStore().write_line(0, bytes(length))

    def test_len_counts_lines(self):
        store = BackingStore()
        store.write_line(0, bytes(32))
        store.write_line(32, bytes(32))
        store.write_line(5, bytes(32))  # same line as 0
        assert len(store) == 2

    def test_stored_lines_sorted(self):
        store = BackingStore()
        store.write_line(64, bytes(32))
        store.write_line(0, bytes(32))
        assert store.stored_lines() == [0, 64]


class TestSeqnums:
    def test_unwritten_counter_is_none(self):
        assert BackingStore().read_seqnum(0) is None

    def test_roundtrip(self):
        store = BackingStore()
        store.write_seqnum(0x40, 123456)
        assert store.read_seqnum(0x40) == 123456
        assert store.read_seqnum(0x5F) == 123456  # same line

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BackingStore().write_seqnum(0, -1)

    def test_zero_is_a_valid_counter(self):
        store = BackingStore()
        store.write_seqnum(0, 0)
        assert store.read_seqnum(0) == 0


class TestMacs:
    def test_missing_mac_is_none(self):
        assert BackingStore().read_mac(0) is None

    def test_roundtrip(self):
        store = BackingStore()
        store.write_mac(0, b"\xab" * 16)
        assert store.read_mac(0x1F) == b"\xab" * 16


class TestTamper:
    def test_tamper_flips_bits(self):
        store = BackingStore()
        store.write_line(0, bytes(32))
        store.tamper_line(0, b"\xff")
        assert store.read_line(0)[0] == 0xFF
        assert store.read_line(0)[1:] == bytes(31)

    def test_tamper_unwritten_line(self):
        store = BackingStore()
        store.tamper_line(0x100, b"\x01\x02")
        assert store.read_line(0x100)[:2] == b"\x01\x02"
