"""Address arithmetic."""

import pytest

from repro.memory.address import AddressMap, DEFAULT_ADDRESS_MAP


class TestDefaults:
    def test_default_geometry(self):
        assert DEFAULT_ADDRESS_MAP.line_bytes == 32
        assert DEFAULT_ADDRESS_MAP.page_bytes == 4096
        assert DEFAULT_ADDRESS_MAP.lines_per_page == 128

    def test_shifts(self):
        assert DEFAULT_ADDRESS_MAP.line_shift == 5
        assert DEFAULT_ADDRESS_MAP.page_shift == 12


class TestArithmetic:
    def test_line_address_masks_offset(self):
        assert DEFAULT_ADDRESS_MAP.line_address(0x1234) == 0x1220

    def test_line_address_of_aligned(self):
        assert DEFAULT_ADDRESS_MAP.line_address(0x1220) == 0x1220

    def test_line_index(self):
        assert DEFAULT_ADDRESS_MAP.line_index(0x40) == 2

    def test_page_number(self):
        assert DEFAULT_ADDRESS_MAP.page_number(0x3FFF) == 3
        assert DEFAULT_ADDRESS_MAP.page_number(0x4000) == 4

    def test_page_base(self):
        assert DEFAULT_ADDRESS_MAP.page_base(0x4567) == 0x4000

    def test_line_in_page(self):
        assert DEFAULT_ADDRESS_MAP.line_in_page(0x4000) == 0
        assert DEFAULT_ADDRESS_MAP.line_in_page(0x4000 + 32 * 127) == 127
        assert DEFAULT_ADDRESS_MAP.line_in_page(0x5000) == 0

    def test_roundtrip_line_index(self):
        for address in (0, 31, 32, 0x12345):
            line = DEFAULT_ADDRESS_MAP.line_address(address)
            assert DEFAULT_ADDRESS_MAP.line_index(address) * 32 == line


class TestValidation:
    @pytest.mark.parametrize("line_bytes", [0, -32, 33, 48])
    def test_rejects_non_power_of_two_lines(self, line_bytes):
        with pytest.raises(ValueError):
            AddressMap(line_bytes=line_bytes)

    def test_rejects_page_smaller_than_line(self):
        with pytest.raises(ValueError):
            AddressMap(line_bytes=4096, page_bytes=32)

    def test_custom_geometry(self):
        amap = AddressMap(line_bytes=64, page_bytes=8192)
        assert amap.lines_per_page == 128
        assert amap.line_in_page(64 * 129) == 1
