"""Memory bus occupancy model."""

import pytest

from repro.memory.bus import BusConfig, MemoryBus


class TestConfig:
    def test_table1_cycles_per_beat(self):
        # 1 GHz core / 200 MHz bus = 5 CPU cycles per beat.
        assert BusConfig().cycles_per_beat == 5

    def test_transfer_cycles_line(self):
        # 32 bytes / 8 bytes per beat = 4 beats = 20 cycles.
        assert BusConfig().transfer_cycles(32) == 20

    def test_transfer_cycles_rounds_up(self):
        assert BusConfig().transfer_cycles(1) == 5
        assert BusConfig().transfer_cycles(9) == 10

    def test_faster_core_more_cycles_per_beat(self):
        assert BusConfig(cpu_ghz=2.0).cycles_per_beat == 10


class TestTransfers:
    def test_completion_time(self):
        bus = MemoryBus()
        assert bus.transfer(now=100, num_bytes=32) == 120

    def test_serialization(self):
        bus = MemoryBus()
        first = bus.transfer(0, 32)
        second = bus.transfer(0, 32)
        assert second == first + 20
        assert bus.stats.queue_delay_cycles == 20

    def test_idle_gap_not_charged(self):
        bus = MemoryBus()
        bus.transfer(0, 8)
        assert bus.transfer(1000, 8) == 1005

    def test_zero_bytes_noop(self):
        bus = MemoryBus()
        assert bus.transfer(50, 0) == 50
        assert bus.stats.transfers == 0

    def test_stats(self):
        bus = MemoryBus()
        bus.transfer(0, 32)
        bus.transfer(0, 8)
        assert bus.stats.transfers == 2
        assert bus.stats.bytes_moved == 40
        assert bus.stats.busy_cycles == 25

    def test_reset(self):
        bus = MemoryBus()
        bus.transfer(0, 32)
        bus.reset()
        assert bus.stats.transfers == 0
        assert bus.transfer(0, 8) == 5
