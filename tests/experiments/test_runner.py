"""Experiment runner: schemes, controller wiring, preseeding, caching."""

import pytest

from repro.experiments.config import TABLE1_256K
from repro.experiments.runner import (
    SCHEMES,
    SchemeSpec,
    apply_preseed,
    get_miss_trace,
    make_controller,
    run_benchmark,
    run_cell,
    run_scheme,
)
from repro.secure.predictors import (
    ContextOtpPredictor,
    NullPredictor,
    RegularOtpPredictor,
    TwoLevelOtpPredictor,
)

REFS = 3000


class TestSchemes:
    def test_catalog_contains_paper_schemes(self):
        for name in (
            "oracle",
            "baseline",
            "seqcache_4k",
            "seqcache_128k",
            "seqcache_512k",
            "pred_regular",
            "pred_two_level",
            "pred_context",
            "pred_plus_cache_32k",
        ):
            assert name in SCHEMES

    def test_predictor_types(self):
        assert isinstance(
            make_controller(SCHEMES["baseline"]).predictor, NullPredictor
        )
        assert isinstance(
            make_controller(SCHEMES["pred_regular"]).predictor, RegularOtpPredictor
        )
        assert isinstance(
            make_controller(SCHEMES["pred_two_level"]).predictor, TwoLevelOtpPredictor
        )
        assert isinstance(
            make_controller(SCHEMES["pred_context"]).predictor, ContextOtpPredictor
        )

    def test_seqcache_sizes(self):
        controller = make_controller(SCHEMES["seqcache_128k"])
        assert controller.seqcache.size_bytes == 128 * 1024
        assert make_controller(SCHEMES["baseline"]).seqcache is None

    def test_oracle_flag(self):
        assert make_controller(SCHEMES["oracle"]).oracle

    def test_unknown_predictor_kind(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            make_controller(SchemeSpec("bogus", predictor="bogus"))

    def test_root_history_scheme_enables_history(self):
        controller = make_controller(SCHEMES["pred_regular_history"])
        assert controller.page_table.history_depth == 1
        assert controller.predictor.use_root_history

    def test_static_scheme_is_not_adaptive(self):
        controller = make_controller(SCHEMES["pred_regular_static"])
        assert not controller.predictor.adaptive


class TestMissTraceCache:
    def test_identical_key_returns_same_object(self):
        a, _ = get_miss_trace("gzip", TABLE1_256K, references=REFS, seed=3)
        b, _ = get_miss_trace("gzip", TABLE1_256K, references=REFS, seed=3)
        assert a is b

    def test_different_machine_different_trace(self):
        from repro.experiments.config import TABLE1_1M

        a, _ = get_miss_trace("gzip", TABLE1_256K, references=REFS, seed=3)
        b, _ = get_miss_trace("gzip", TABLE1_1M, references=REFS, seed=3)
        assert a is not b
        assert a.l2_misses >= b.l2_misses  # bigger L2 filters more


class TestPreseed:
    def test_counters_installed_relative_to_mapping_roots(self):
        controller = make_controller(SCHEMES["baseline"])
        preseed = {0x1000: 3, 0x2000: 0}
        apply_preseed(controller, preseed)
        page_root = controller.page_table.state(1).mapping_root
        assert controller.backing.read_seqnum(0x1000) == (page_root + 3) & ((1 << 64) - 1)
        assert controller.current_seqnum(0x2000) == controller.page_table.state(2).mapping_root


class TestRunScheme:
    def test_returns_metrics(self):
        metrics = run_scheme("gzip", "baseline", references=REFS)
        assert metrics.scheme == "baseline"
        assert metrics.fetches > 0
        assert metrics.cycles > 0

    def test_accepts_spec_object(self):
        metrics = run_scheme("gzip", SCHEMES["oracle"], references=REFS)
        assert metrics.scheme == "oracle"

    def test_deterministic(self):
        a = run_scheme("gzip", "pred_regular", references=REFS)
        b = run_scheme("gzip", "pred_regular", references=REFS)
        assert a.cycles == b.cycles
        assert a.prediction_hits == b.prediction_hits

    def test_run_benchmark_shares_miss_trace(self):
        results = run_benchmark("gzip", ["oracle", "baseline"], references=REFS)
        assert results["oracle"].l2_misses == results["baseline"].l2_misses

    def test_scheme_ordering_on_one_benchmark(self):
        results = run_benchmark(
            "twolf",
            ["oracle", "baseline", "pred_regular", "pred_context"],
            references=8000,
        )
        oracle = results["oracle"]
        baseline_ipc = results["baseline"].normalized_ipc(oracle)
        regular_ipc = results["pred_regular"].normalized_ipc(oracle)
        context_ipc = results["pred_context"].normalized_ipc(oracle)
        assert baseline_ipc < regular_ipc < context_ipc <= 1.0


class TestRunCellSeries:
    def test_series_off_by_default(self):
        cell = run_cell("gzip", "pred_regular", references=REFS, use_cache=False)
        assert cell.series is None

    def test_final_sample_equals_plain_run_snapshot(self):
        """The retention invariant: samples are cumulative, so a series
        run's last sample is exactly the snapshot a series-less run of the
        same cell produces — including trailing-writeback effects."""
        plain = run_cell("gzip", "pred_regular", references=REFS, use_cache=False)
        traced = run_cell(
            "gzip", "pred_regular", references=REFS, use_cache=False,
            series_interval=200,
        )
        assert traced.series is not None
        assert len(traced.series) >= 2
        final = traced.series.final
        assert final.values == plain.snapshot.values
        assert final.kinds == plain.snapshot.kinds
        assert final.meta["accesses"] == plain.metrics.fetches

    def test_sample_grid_follows_the_interval(self):
        cell = run_cell(
            "gzip", "pred_regular", references=REFS, use_cache=False,
            series_interval=200,
        )
        accesses = cell.series.accesses()
        # Every mid-run sample lands on an interval boundary; the final
        # post-writeback sample replaces or extends the grid.
        assert all(count % 200 == 0 for count in accesses[:-1])
        assert accesses == sorted(accesses)
        assert cell.series.meta["benchmark"] == "gzip"
        assert cell.series.meta["scheme"] == "pred_regular"

    def test_series_does_not_perturb_metrics(self):
        plain = run_cell("gzip", "pred_regular", references=REFS, use_cache=False)
        traced = run_cell(
            "gzip", "pred_regular", references=REFS, use_cache=False,
            series_interval=500,
        )
        assert traced.metrics.cycles == plain.metrics.cycles
        assert traced.metrics.prediction_hits == plain.metrics.prediction_hits

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="series_interval"):
            run_cell(
                "gzip", "pred_regular", references=REFS, use_cache=False,
                series_interval=-1,
            )
