"""Supervised sweep execution: equality, recovery, manifest resume."""

import dataclasses
import json

import pytest

from repro.experiments import cache as result_cache
from repro.experiments import runner
from repro.experiments.supervisor import (
    MANIFEST_SCHEMA,
    SupervisorPolicy,
    SweepManifest,
    manifest_path,
    run_grid_supervised,
    sweep_key,
)
from repro.experiments.sweep import (
    reset_default_supervision,
    run_grid,
    set_default_supervision,
)
from repro.telemetry.events import EventTracer
from repro.telemetry.registry import MetricRegistry

REFS = 1200
BENCHMARKS = ["gzip"]
SCHEMES = ["oracle", "pred_regular"]

FAST = SupervisorPolicy(
    cell_timeout_seconds=60.0,
    max_retries=2,
    backoff_base_seconds=0.01,
    backoff_cap_seconds=0.05,
)


def _metrics(sweep):
    return {k: dataclasses.asdict(v) for k, v in sweep.results.items()}


class _ScriptedChaos:
    """Chaos stub: one fixed action on every cell's first attempt."""

    def __init__(self, action, seconds=0.0):
        self.action = action
        self.seconds = seconds
        self.calls = []

    def action_for(self, cell_key, attempt):
        self.calls.append((cell_key, attempt))
        if attempt > 0:
            return None
        return (self.action, self.seconds)


class TestPolicy:
    def test_backoff_grows_to_cap(self):
        policy = SupervisorPolicy(
            backoff_base_seconds=0.1, backoff_multiplier=2.0,
            backoff_cap_seconds=0.5,
        )
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.4)
        assert policy.backoff_seconds(4) == pytest.approx(0.5)

    def test_backoff_cheap_and_capped_at_huge_attempts(self):
        policy = SupervisorPolicy(backoff_cap_seconds=1.5)
        # Must not materialize multiplier**attempt for large attempts.
        assert policy.backoff_seconds(10**6) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(cell_timeout_seconds=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_multiplier=0.5)


class TestManifest:
    def test_header_and_round_trip(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = SweepManifest.open(path, meta={"key": "abc"})
        manifest.record("start", "k1", "gzip/oracle", attempt=0)
        manifest.record("done", "k1", "gzip/oracle", source="worker")
        manifest.record("failed", "k2", "gzip/baseline", error="boom")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["schema"] == MANIFEST_SCHEMA
        replayed = SweepManifest.open(path, meta={})
        assert set(replayed.done) == {"k1"}
        assert set(replayed.failed) == {"k2"}

    def test_done_supersedes_failed_on_replay(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = SweepManifest.open(path, meta={})
        manifest.record("failed", "k1", "gzip/oracle", error="boom")
        manifest.record("done", "k1", "gzip/oracle", source="worker")
        replayed = SweepManifest.open(path, meta={})
        assert set(replayed.done) == {"k1"}
        assert not replayed.failed

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = SweepManifest.open(path, meta={})
        manifest.record("done", "k1", "gzip/oracle", source="worker")
        with path.open("a") as handle:
            handle.write('{"event": "done", "key": "k2", "ce')  # crash mid-append
        replayed = SweepManifest.open(path, meta={})
        assert set(replayed.done) == {"k1"}

    def test_sweep_key_varies_with_grid(self):
        from repro.experiments.config import TABLE1_1M, TABLE1_256K

        base = sweep_key(["gzip"], ["oracle"], TABLE1_256K, REFS, 1)
        assert sweep_key(["mcf"], ["oracle"], TABLE1_256K, REFS, 1) != base
        assert sweep_key(["gzip"], ["oracle"], TABLE1_1M, REFS, 1) != base
        assert sweep_key(["gzip"], ["oracle"], TABLE1_256K, REFS, 2) != base


class TestSupervisedEquality:
    def test_supervised_equals_serial(self):
        serial = run_grid(BENCHMARKS, SCHEMES, references=REFS)
        supervised = run_grid_supervised(
            BENCHMARKS, SCHEMES, references=REFS, jobs=2, policy=FAST
        )
        assert _metrics(supervised) == _metrics(serial)
        assert (
            supervised.merged_snapshot().values
            == serial.merged_snapshot().values
        )
        assert supervised.supervision["cells_completed"] == len(SCHEMES)
        assert supervised.supervision["failures"] == 0

    def test_run_grid_supervise_flag_delegates(self):
        serial = run_grid(BENCHMARKS, ["oracle"], references=REFS)
        supervised = run_grid(
            BENCHMARKS, ["oracle"], references=REFS,
            supervise=True, policy=FAST,
        )
        assert _metrics(supervised) == _metrics(serial)
        assert supervised.supervision is not None

    def test_default_supervision_installs_and_resets(self):
        set_default_supervision(policy=FAST)
        try:
            sweep = run_grid(BENCHMARKS, ["oracle"], references=REFS)
            assert sweep.supervision is not None
        finally:
            reset_default_supervision()
        sweep = run_grid(BENCHMARKS, ["oracle"], references=REFS)
        assert sweep.supervision is None


class TestRecovery:
    def test_killed_workers_are_retried_to_success(self):
        serial = run_grid(BENCHMARKS, SCHEMES, references=REFS)
        chaos = _ScriptedChaos("kill")
        supervised = run_grid_supervised(
            BENCHMARKS, SCHEMES, references=REFS, jobs=2,
            policy=FAST, chaos=chaos,
        )
        stats = supervised.supervision
        assert stats["worker_deaths"] == len(SCHEMES)
        assert stats["retries"] == len(SCHEMES)
        assert stats["failures"] == 0
        assert _metrics(supervised) == _metrics(serial)

    def test_hung_workers_time_out_and_recover(self):
        serial = run_grid(BENCHMARKS, ["oracle"], references=REFS)
        chaos = _ScriptedChaos("hang", seconds=30.0)
        policy = dataclasses.replace(FAST, cell_timeout_seconds=1.5)
        supervised = run_grid_supervised(
            BENCHMARKS, ["oracle"], references=REFS, jobs=1,
            policy=policy, chaos=chaos,
        )
        assert supervised.supervision["timeouts"] == 1
        assert supervised.supervision["failures"] == 0
        assert _metrics(supervised) == _metrics(serial)

    def test_exhausted_retries_degrade_to_in_process(self):
        class AlwaysKill:
            def action_for(self, cell_key, attempt):
                return ("kill", 0.0)

        serial = run_grid(BENCHMARKS, ["oracle"], references=REFS)
        policy = dataclasses.replace(FAST, max_retries=1)
        supervised = run_grid_supervised(
            BENCHMARKS, ["oracle"], references=REFS, jobs=1,
            policy=policy, chaos=AlwaysKill(),
        )
        assert supervised.supervision["degraded_cells"] == 1
        assert supervised.supervision["failures"] == 0
        assert _metrics(supervised) == _metrics(serial)

    def test_keep_going_records_failed_cells_with_keys(self):
        policy = dataclasses.replace(FAST, max_retries=0)
        sweep = run_grid_supervised(
            ["gzip", "nosuchbenchmark"], ["oracle"], references=REFS,
            jobs=1, keep_going=True, policy=policy,
        )
        assert ("gzip", "oracle") in sweep.results
        assert len(sweep.failures) == 1
        benchmark, scheme, cell_key = sweep.failed_cells()[0]
        assert benchmark == "nosuchbenchmark"
        assert scheme == "oracle"
        assert len(cell_key) == 64
        assert sweep.supervision["failures"] == 1

    def test_failure_raises_without_keep_going(self):
        policy = dataclasses.replace(
            FAST, max_retries=0, degrade_to_serial=False
        )
        with pytest.raises(RuntimeError, match="SupervisionExhausted"):
            run_grid_supervised(
                ["nosuchbenchmark"], ["oracle"], references=REFS,
                jobs=1, policy=policy, chaos=_ScriptedChaos("kill"),
            )


class TestResume:
    def test_resume_serves_finished_cells_from_cache(self):
        first = run_grid_supervised(
            BENCHMARKS, SCHEMES, references=REFS, jobs=2, policy=FAST
        )
        disk = result_cache.default_cache()
        disk.stats = result_cache.CacheStats()
        runner._MISS_TRACE_CACHE.clear()
        resumed = run_grid_supervised(
            BENCHMARKS, SCHEMES, references=REFS, jobs=2,
            policy=FAST, resume=True,
        )
        stats = resumed.supervision
        assert stats["cells_resumed"] == len(SCHEMES)
        assert stats["cells_completed"] == 0
        assert _metrics(resumed) == _metrics(first)
        # Resume hit the cache once per cell and recomputed nothing.
        assert disk.stats.result_hits == len(SCHEMES)
        assert disk.stats.result_stores == 0

    def test_resume_recomputes_quarantined_cells_only(self):
        run_grid_supervised(
            BENCHMARKS, SCHEMES, references=REFS, jobs=2, policy=FAST
        )
        disk = result_cache.default_cache()
        entries = sorted((disk.root / "results").rglob("*.json"))
        poisoned = entries[0]
        poisoned.write_bytes(poisoned.read_bytes()[:100])
        disk.stats = result_cache.CacheStats()
        runner._MISS_TRACE_CACHE.clear()
        resumed = run_grid_supervised(
            BENCHMARKS, SCHEMES, references=REFS, jobs=2,
            policy=FAST, resume=True,
        )
        stats = resumed.supervision
        assert stats["cells_resumed"] == len(SCHEMES) - 1
        assert stats["cells_completed"] == 1
        assert disk.stats.quarantined_entries == 1
        # The quarantined entry was moved aside, reason journaled.
        quarantined = list((disk.root / "quarantine" / "results").iterdir())
        assert [p.name for p in quarantined] == [poisoned.name]
        serial = run_grid(BENCHMARKS, SCHEMES, references=REFS)
        assert _metrics(resumed) == _metrics(serial)

    def test_manifest_written_under_cache_root(self):
        run_grid_supervised(
            BENCHMARKS, ["oracle"], references=REFS, jobs=1, policy=FAST
        )
        disk = result_cache.default_cache()
        manifests = list(disk.root.glob("manifest-*.jsonl"))
        assert len(manifests) == 1
        from repro.experiments.config import TABLE1_256K

        expected = manifest_path(
            disk.root,
            sweep_key(BENCHMARKS, ["oracle"], TABLE1_256K, REFS, 1),
        )
        assert manifests[0] == expected


class TestTelemetryWiring:
    def test_registry_and_tracer_capture_supervision(self):
        registry = MetricRegistry()
        tracer = EventTracer(capacity=4096)
        run_grid_supervised(
            BENCHMARKS, ["oracle"], references=REFS, jobs=1,
            policy=FAST, registry=registry, tracer=tracer,
        )
        snapshot = registry.snapshot()
        assert snapshot.values["sweep.supervisor.cells_completed"] == 1
        assert "sweep.cache.corrupt_entries" in snapshot.values
        counters = [
            event for event in tracer.events() if event.name == "sweep.inflight"
        ]
        assert counters, "expected sweep.inflight counter samples"
        assert all(event.track == "sweep" for event in counters)


class TestManifestConcurrency:
    def test_interleaved_writers_replay_to_union(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        alpha = SweepManifest.open(path, meta={"key": "abc"})
        beta = SweepManifest.open(path, meta={"key": "abc"})
        for index in range(6):
            writer = alpha if index % 2 == 0 else beta
            writer.record("done", f"k{index}", f"cell{index}", source="test")
        replayed = SweepManifest.open(path, meta={})
        assert set(replayed.done) == {f"k{index}" for index in range(6)}

    def test_refresh_folds_in_other_writers(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        alpha = SweepManifest.open(path, meta={})
        beta = SweepManifest.open(path, meta={})
        beta.record("done", "k1", "cell1", source="beta")
        assert "k1" not in alpha.done
        alpha.refresh()
        assert "k1" in alpha.done

    def test_record_glued_onto_torn_fragment_is_salvaged(self, tmp_path):
        # Writer A crashes mid-append (no trailing newline); writer B's
        # O_APPEND write lands on the same line.  B's record must survive
        # replay; only A's torn event is lost.
        path = tmp_path / "manifest.jsonl"
        manifest = SweepManifest.open(path, meta={})
        manifest.record("done", "k1", "cell1", source="a")
        with path.open("a") as handle:
            handle.write('{"event": "done", "key": "torn", "ce')
        survivor = SweepManifest.open(path, meta={})
        survivor.record("done", "k2", "cell2", source="b")
        replayed = SweepManifest.open(path, meta={})
        assert set(replayed.done) == {"k1", "k2"}
        assert "torn" not in replayed.done

    def test_parse_line_rejects_pure_garbage(self):
        assert SweepManifest._parse_line("not json at all") is None
        assert SweepManifest._parse_line('{"torn": "fra') is None

    def test_parse_line_salvages_record_with_nested_objects(self):
        glued = '{"torn": "fra{"event": "done", "key": "k", "x": {"y": 1}}'
        record = SweepManifest._parse_line(glued)
        assert record == {"event": "done", "key": "k", "x": {"y": 1}}

    def test_two_processes_append_simultaneously(self, tmp_path):
        import multiprocessing

        path = tmp_path / "manifest.jsonl"
        SweepManifest.open(path, meta={"key": "abc"})
        mp = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        barrier = mp.Barrier(2)

        def hammer(writer_id, barrier=barrier, path=path):
            manifest = SweepManifest.open(path, meta={})
            barrier.wait()
            for index in range(50):
                manifest.record(
                    "done", f"w{writer_id}-{index}", "cell", source="mp"
                )

        procs = [mp.Process(target=hammer, args=(w,)) for w in range(2)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        replayed = SweepManifest.open(path, meta={})
        expected = {f"w{w}-{i}" for w in range(2) for i in range(50)}
        assert set(replayed.done) == expected


class TestResumeVerification:
    def test_resume_ignores_stale_done_event_for_deleted_entry(self):
        # The manifest says done, but the cache entry vanished entirely
        # (pruned, or written by a host whose store never landed): resume
        # must verify the entry exists and recompute, not trust the
        # journal blindly.
        first = run_grid_supervised(
            BENCHMARKS, SCHEMES, references=REFS, jobs=2, policy=FAST
        )
        disk = result_cache.default_cache()
        victim = sorted((disk.root / "results").rglob("*.json"))[0]
        victim.unlink()
        disk.stats = result_cache.CacheStats()
        runner._MISS_TRACE_CACHE.clear()
        resumed = run_grid_supervised(
            BENCHMARKS, SCHEMES, references=REFS, jobs=2,
            policy=FAST, resume=True,
        )
        stats = resumed.supervision
        assert stats["cells_resumed"] == len(SCHEMES) - 1
        assert stats["cells_completed"] == 1
        assert _metrics(resumed) == _metrics(first)

    def test_resume_with_series_recomputes_instead_of_dropping(self):
        # Cache entries carry no SnapshotSeries; a resumed sweep that
        # wants series must recompute every cell rather than silently
        # serving series-less cache hits.
        interval = 400
        first = run_grid_supervised(
            BENCHMARKS, ["oracle"], references=REFS, jobs=1,
            policy=FAST, series_interval=interval,
        )
        assert ("gzip", "oracle") in first.series
        runner._MISS_TRACE_CACHE.clear()
        resumed = run_grid_supervised(
            BENCHMARKS, ["oracle"], references=REFS, jobs=1,
            policy=FAST, resume=True, series_interval=interval,
        )
        assert resumed.supervision["cells_resumed"] == 0
        assert resumed.supervision["cells_completed"] == 1
        assert ("gzip", "oracle") in resumed.series
        assert _metrics(resumed) == _metrics(first)


class TestManifestTailing:
    def test_drain_is_incremental(self, tmp_path):
        from repro.experiments.supervisor import ManifestTail

        path = tmp_path / "journal.jsonl"
        tail = ManifestTail(path)
        assert tail.drain() == []  # file does not exist yet
        with path.open("a") as handle:
            handle.write('{"event": "a"}\n{"event": "b"}\n')
        assert [r["event"] for r in tail.drain()] == ["a", "b"]
        assert tail.drain() == []  # nothing new
        with path.open("a") as handle:
            handle.write('{"event": "c"}\n')
        assert [r["event"] for r in tail.drain()] == ["c"]

    def test_torn_trailing_line_buffered_until_complete(self, tmp_path):
        from repro.experiments.supervisor import ManifestTail

        path = tmp_path / "journal.jsonl"
        tail = ManifestTail(path)
        with path.open("a") as handle:
            handle.write('{"event": "a"}\n{"event": "b"')  # torn append
        assert [r["event"] for r in tail.drain()] == ["a"]
        with path.open("a") as handle:
            handle.write(', "n": 1}\n')  # the append completes
        assert tail.drain() == [{"event": "b", "n": 1}]

    def test_glued_record_salvaged_mid_stream(self, tmp_path):
        from repro.experiments.supervisor import ManifestTail

        path = tmp_path / "journal.jsonl"
        path.write_text('{"torn{"event": "done", "key": "k"}\n{"event": "x"}\n')
        records = ManifestTail(path).drain()
        assert records == [{"event": "done", "key": "k"}, {"event": "x"}]

    def test_follow_manifest_stops_after_final_drain(self, tmp_path):
        from repro.experiments.supervisor import follow_manifest

        path = tmp_path / "journal.jsonl"
        path.write_text('{"event": "a"}\n')
        stopped = {"flag": False}

        def stop():
            if not stopped["flag"]:
                # Simulate the writer appending its terminal event just
                # before flipping the finished flag: the final drain must
                # still deliver it.
                with path.open("a") as handle:
                    handle.write('{"event": "done"}\n')
                stopped["flag"] = True
            return True

        events = list(follow_manifest(path, poll_interval=0.01, stop=stop))
        assert [e["event"] for e in events] == ["a", "done"]

    def test_sweep_manifest_parse_line_is_the_shared_parser(self):
        from repro.experiments.supervisor import (
            SweepManifest,
            parse_manifest_line,
        )

        assert SweepManifest._parse_line is parse_manifest_line
