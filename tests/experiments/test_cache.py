"""On-disk result cache: keys, round-trips, controls, runner integration."""

import dataclasses
import json

from repro.experiments import cache as result_cache
from repro.experiments.cache import ResultCache, code_fingerprint, result_key, trace_key
from repro.experiments.config import TABLE1_1M, TABLE1_256K
from repro.experiments.runner import SCHEMES, get_miss_trace, run_scheme
from repro.experiments import runner

REFS = 2500
SPEC = SCHEMES["pred_regular"]


class TestKeys:
    def test_key_is_stable(self):
        a = result_key("gzip", SPEC, TABLE1_256K, REFS, 1)
        b = result_key("gzip", SPEC, TABLE1_256K, REFS, 1)
        assert a == b

    def test_key_varies_with_every_input(self):
        base = result_key("gzip", SPEC, TABLE1_256K, REFS, 1)
        assert result_key("mcf", SPEC, TABLE1_256K, REFS, 1) != base
        assert result_key("gzip", SCHEMES["oracle"], TABLE1_256K, REFS, 1) != base
        assert result_key("gzip", SPEC, TABLE1_1M, REFS, 1) != base
        assert result_key("gzip", SPEC, TABLE1_256K, REFS + 1, 1) != base
        assert result_key("gzip", SPEC, TABLE1_256K, REFS, 2) != base

    def test_trace_key_is_scheme_independent(self):
        assert trace_key("gzip", TABLE1_256K, REFS, 1) == trace_key(
            "gzip", TABLE1_256K, REFS, 1
        )
        assert trace_key("gzip", TABLE1_256K, REFS, 1) != trace_key(
            "gzip", TABLE1_1M, REFS, 1
        )

    def test_code_fingerprint_is_hex_and_process_stable(self):
        fingerprint = code_fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)
        assert code_fingerprint() == fingerprint


class TestResultRoundTrip:
    def test_store_then_lookup(self, tmp_path):
        cache = ResultCache(tmp_path)
        metrics = run_scheme("gzip", "oracle", references=REFS)
        cache.store_result("k" * 64, metrics)
        loaded = cache.lookup_result("k" * 64)
        assert dataclasses.asdict(loaded) == dataclasses.asdict(metrics)

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.lookup_result("0" * 64) is None
        assert cache.stats.result_misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        metrics = run_scheme("gzip", "oracle", references=REFS)
        cache.store_result("a" * 64, metrics)
        cache._result_path("a" * 64).write_text("{not json")
        assert cache.lookup_result("a" * 64) is None

    def test_trace_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        miss_trace, preseed = get_miss_trace("gzip", references=REFS)
        cache.store_trace("b" * 64, miss_trace, preseed)
        loaded_trace, loaded_preseed = cache.lookup_trace("b" * 64)
        assert loaded_trace == miss_trace
        assert loaded_preseed == preseed

    def test_clear_and_disk_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        metrics = run_scheme("gzip", "oracle", references=REFS)
        cache.store_result("c" * 64, metrics)
        stats = cache.disk_stats()
        assert stats["results"]["entries"] == 1
        assert stats["results"]["bytes"] > 0
        assert cache.clear() == 1
        assert cache.disk_stats()["results"]["entries"] == 0


class TestCellRoundTrip:
    def test_store_then_lookup_cell(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = runner.run_cell("gzip", "oracle", references=REFS)
        cache.store_result("e" * 64, cell.metrics, cell.snapshot)
        metrics, snapshot = cache.lookup_cell("e" * 64)
        assert dataclasses.asdict(metrics) == dataclasses.asdict(cell.metrics)
        assert snapshot.values == cell.snapshot.values
        assert snapshot.kinds == cell.snapshot.kinds

    def test_metrics_only_entry_is_a_cell_miss_but_result_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = runner.run_cell("gzip", "oracle", references=REFS)
        cache.store_result("f" * 64, cell.metrics)  # no snapshot stored
        assert cache.lookup_cell("f" * 64) is None
        assert cache.lookup_result("f" * 64) is not None


class TestControls:
    def test_env_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(result_cache.CACHE_DIR_ENV, str(tmp_path / "alt"))
        assert ResultCache().root == tmp_path / "alt"

    def test_disable_env_turns_cache_off(self, tmp_path, monkeypatch):
        monkeypatch.setenv(result_cache.CACHE_DISABLE_ENV, "1")
        cache = ResultCache(tmp_path)
        assert not cache.enabled
        metrics = run_scheme("gzip", "oracle", references=REFS)
        cache.store_result("d" * 64, metrics)
        assert not any(cache._entry_paths())
        assert cache.lookup_result("d" * 64) is None

    def test_default_cache_is_a_singleton_until_reset(self):
        first = result_cache.default_cache()
        assert result_cache.default_cache() is first
        result_cache.reset_default_cache()
        assert result_cache.default_cache() is not first


class TestRunnerIntegration:
    def test_cached_run_is_byte_identical(self):
        fresh = run_scheme("gzip", "pred_regular", references=REFS)
        stored = run_scheme("gzip", "pred_regular", references=REFS, use_cache=True)
        runner._MISS_TRACE_CACHE.clear()
        cached = run_scheme("gzip", "pred_regular", references=REFS, use_cache=True)
        assert dataclasses.asdict(fresh) == dataclasses.asdict(stored)
        assert dataclasses.asdict(fresh) == dataclasses.asdict(cached)
        stats = result_cache.default_cache().stats
        assert stats.result_hits == 1
        assert stats.result_stores == 1

    def test_trace_tier_serves_new_schemes(self):
        run_scheme("gzip", "oracle", references=REFS, use_cache=True)
        runner._MISS_TRACE_CACHE.clear()
        # Different scheme, same benchmark: result misses, trace hits.
        run_scheme("gzip", "baseline", references=REFS, use_cache=True)
        stats = result_cache.default_cache().stats
        assert stats.trace_hits == 1

    def test_no_cache_runs_touch_nothing(self):
        run_scheme("gzip", "oracle", references=REFS)
        cache = result_cache.default_cache()
        assert not any(cache._entry_paths())

    def test_entries_are_canonical_json(self):
        run_scheme("gzip", "oracle", references=REFS, use_cache=True)
        cache = result_cache.default_cache()
        paths = [p for p in cache._entry_paths() if p.suffix == ".json"]
        assert len(paths) == 1
        payload = json.loads(paths[0].read_text())
        assert payload["metrics"]["scheme"] == "oracle"


class TestSelfHealing:
    """Digest verification, quarantine, and the verify/repair walk."""

    def _store(self, cache, key="a" * 64):
        cell = runner.run_cell("gzip", "oracle", references=REFS)
        cache.store_result(key, cell.metrics, cell.snapshot)
        return cell

    def test_stored_entries_carry_a_digest(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        payload = json.loads(cache._result_path("a" * 64).read_text())
        assert payload["digest"] == cache._payload_digest(payload)

    def test_truncated_entry_is_quarantined_on_lookup(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        path = cache._result_path("a" * 64)
        path.write_bytes(path.read_bytes()[:200])  # hand-truncated entry
        assert cache.lookup_cell("a" * 64) is None
        assert cache.stats.corrupt_entries == 1
        assert cache.stats.quarantined_entries == 1
        assert not path.exists()
        quarantined = tmp_path / "quarantine" / "results" / path.name
        assert quarantined.exists()
        log_lines = [
            json.loads(line)
            for line in (tmp_path / "quarantine" / "log.jsonl")
            .read_text()
            .splitlines()
        ]
        assert log_lines[0]["tier"] == "results"
        assert "reason" in log_lines[0]

    def test_tampered_value_fails_the_digest(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        path = cache._result_path("a" * 64)
        payload = json.loads(path.read_text())
        payload["metrics"]["ipc"] = 99.0  # silent bit-flip, digest stale
        path.write_text(json.dumps(payload, sort_keys=True))
        assert cache.lookup_result("a" * 64) is None
        assert cache.stats.quarantined_entries == 1

    def test_legacy_digestless_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        path = cache._result_path("a" * 64)
        payload = json.loads(path.read_text())
        del payload["digest"]
        path.write_text(json.dumps(payload, sort_keys=True))
        assert cache.lookup_result("a" * 64) is None
        assert cache.stats.corrupt_entries == 1

    def test_corrupt_trace_blob_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        miss_trace, preseed = get_miss_trace("gzip", references=REFS)
        cache.store_trace("b" * 64, miss_trace, preseed)
        path = cache._trace_path("b" * 64)
        path.write_bytes(path.read_bytes()[:-10])
        assert cache.lookup_trace("b" * 64) is None
        assert cache.stats.quarantined_entries == 1
        assert (tmp_path / "quarantine" / "traces" / path.name).exists()

    def test_stats_and_lookup_survive_empty_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        cache._result_path("a" * 64).write_text("")
        assert cache.lookup_cell("a" * 64) is None  # miss, not a crash
        stats = cache.disk_stats()  # must not raise either
        assert stats["quarantine"]["entries"] >= 1

    def test_verify_reports_without_touching(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        bad = tmp_path / "results" / "de" / ("d" * 64 + ".json")
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("{not json")
        outcome = cache.verify()
        assert outcome["checked"] == 2
        assert outcome["ok"] == 1
        assert len(outcome["corrupt"]) == 1
        assert outcome["repaired"] == 0
        assert bad.exists()  # report-only leaves the entry in place

    def test_verify_repair_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        bad = tmp_path / "results" / "de" / ("d" * 64 + ".json")
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("{not json")
        outcome = cache.verify(repair=True)
        assert outcome["repaired"] == 1
        assert not bad.exists()
        assert (tmp_path / "quarantine" / "results" / bad.name).exists()
        clean = cache.verify()
        assert clean["checked"] == 1 and not clean["corrupt"]

    def test_quarantined_entry_recomputes_transparently(self):
        run_scheme("gzip", "oracle", references=REFS, use_cache=True)
        cache = result_cache.default_cache()
        entry = next(p for p in cache._entry_paths() if p.suffix == ".json")
        entry.write_bytes(entry.read_bytes()[:50])
        runner._MISS_TRACE_CACHE.clear()
        fresh = run_scheme("gzip", "oracle", references=REFS)
        healed = run_scheme("gzip", "oracle", references=REFS, use_cache=True)
        assert dataclasses.asdict(healed) == dataclasses.asdict(fresh)
        assert cache.stats.quarantined_entries == 1
        assert cache.stats.result_stores >= 1  # the entry was re-stored


class TestQuarantineLogRotation:
    def _quarantine_n(self, cache, metrics, n):
        for index in range(n):
            key = f"{index:064x}"
            cache.store_result(key, metrics)
            cache._result_path(key).write_text("{torn")
            assert cache.lookup_result(key) is None

    def test_log_is_capped_by_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(result_cache.QUARANTINE_LOG_MAX_ENV, "3")
        cache = ResultCache(tmp_path)
        metrics = run_scheme("gzip", "oracle", references=REFS)
        self._quarantine_n(cache, metrics, 5)
        assert cache.stats.quarantined_entries == 5
        assert cache.quarantine_log_entries() == 3
        # The survivors are the *latest* three entries.
        lines = [
            json.loads(line)
            for line in (tmp_path / "quarantine" / "log.jsonl")
            .read_text()
            .splitlines()
        ]
        kept = {line["entry"] for line in lines}
        assert kept == {f"{index:064x}.json" for index in (2, 3, 4)}

    def test_default_cap_keeps_everything_small(self, tmp_path):
        cache = ResultCache(tmp_path)
        metrics = run_scheme("gzip", "oracle", references=REFS)
        self._quarantine_n(cache, metrics, 4)
        assert cache.quarantine_log_entries() == 4

    def test_invalid_env_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(result_cache.QUARANTINE_LOG_MAX_ENV, "banana")
        assert result_cache.quarantine_log_max() == 512
        monkeypatch.setenv(result_cache.QUARANTINE_LOG_MAX_ENV, "0")
        assert result_cache.quarantine_log_max() == 1

    def test_disk_stats_surface_quarantine_log(self, tmp_path, monkeypatch):
        monkeypatch.setenv(result_cache.QUARANTINE_LOG_MAX_ENV, "7")
        cache = ResultCache(tmp_path)
        metrics = run_scheme("gzip", "oracle", references=REFS)
        self._quarantine_n(cache, metrics, 2)
        stats = cache.disk_stats()
        assert stats["quarantine_log"] == {"entries": 2, "cap": 7}


class TestFencedStores:
    def test_fence_false_refuses_the_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        metrics = run_scheme("gzip", "oracle", references=REFS)
        assert cache.store_result("d" * 64, metrics, fence=lambda: False) is False
        assert cache.stats.fenced_rejects == 1
        assert not cache._result_path("d" * 64).exists()
        assert cache.lookup_result("d" * 64) is None

    def test_fence_true_lets_the_store_land(self, tmp_path):
        cache = ResultCache(tmp_path)
        metrics = run_scheme("gzip", "oracle", references=REFS)
        assert cache.store_result("d" * 64, metrics, fence=lambda: True) is True
        assert cache.stats.fenced_rejects == 0
        assert cache.lookup_result("d" * 64) is not None

    def test_no_fence_is_unconditional(self, tmp_path):
        cache = ResultCache(tmp_path)
        metrics = run_scheme("gzip", "oracle", references=REFS)
        assert cache.store_result("e" * 64, metrics) is True
