"""Failure isolation in the experiment runner and grid sweeps."""

import pytest

import repro.experiments.runner as runner
from repro.experiments.config import TABLE1_256K
from repro.experiments.runner import (
    RunFailure,
    SchemeSpec,
    run_benchmark_resilient,
    run_scheme_isolated,
)
from repro.experiments.sweep import run_grid

REFS = 1500

# A spec that always fails to build (unknown predictor kind).
BROKEN = SchemeSpec("broken", predictor="no_such_kind")


class TestRunSchemeIsolated:
    def test_success_returns_metrics(self):
        metrics = run_scheme_isolated("gzip", "baseline", references=REFS)
        assert not isinstance(metrics, RunFailure)
        assert metrics.ipc > 0

    def test_failure_is_captured_with_attempts(self):
        outcome = run_scheme_isolated("gzip", BROKEN, references=REFS, retries=1)
        assert isinstance(outcome, RunFailure)
        assert outcome.scheme == "broken"
        assert outcome.error_type == "ValueError"
        assert outcome.attempts == 2            # initial + one retry
        assert "broken" in str(outcome) or "no_such_kind" in str(outcome)

    def test_retry_once_recovers_transient_failure(self, monkeypatch):
        calls = {"n": 0}
        real = runner.run_cell

        def flaky(
            benchmark, scheme, machine=TABLE1_256K, references=None, seed=1,
            use_cache=False, tracer=None, series_interval=0,
        ):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(benchmark, scheme, machine, references, seed, use_cache)

        monkeypatch.setattr(runner, "run_cell", flaky)
        metrics = run_scheme_isolated("gzip", "baseline", references=REFS)
        assert not isinstance(metrics, RunFailure)
        assert calls["n"] == 2

    def test_keyboard_interrupt_propagates(self, monkeypatch):
        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner, "run_cell", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_scheme_isolated("gzip", "baseline", references=REFS)


class TestRunBenchmarkResilient:
    def test_partial_results_survive_a_bad_scheme(self):
        results, failures = run_benchmark_resilient(
            "gzip", ["baseline", BROKEN], references=REFS
        )
        assert "baseline" in results
        assert len(failures) == 1
        assert failures[0].scheme == "broken"

    def test_all_good_means_no_failures(self):
        results, failures = run_benchmark_resilient(
            "gzip", ["oracle", "baseline"], references=REFS
        )
        assert set(results) == {"oracle", "baseline"}
        assert failures == []


class TestRunGrid:
    def test_fail_fast_is_the_default(self):
        with pytest.raises(ValueError):
            run_grid(["gzip"], [BROKEN], references=REFS)

    def test_keep_going_collects_failures(self):
        sweep = run_grid(
            ["gzip"], ["baseline", BROKEN], references=REFS, keep_going=True
        )
        assert ("gzip", "baseline") in sweep.results
        assert len(sweep.failures) == 1
        assert not sweep.complete

    def test_complete_grid_reports_complete(self):
        sweep = run_grid(["gzip"], ["baseline"], references=REFS, keep_going=True)
        assert sweep.complete

    def test_table_skips_missing_normalization_reference(self):
        sweep = run_grid(["gzip"], ["baseline"], references=REFS, keep_going=True)
        # 'oracle' never ran; normalized table must not KeyError.
        figure = sweep.table(None, normalize_to="oracle")
        assert figure.series == {}
