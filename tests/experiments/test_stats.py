"""Multi-seed statistics."""

import pytest

from repro.experiments.stats import METRICS, SeedSummary, metric_across_seeds, summarize


class TestSeedSummary:
    def test_mean_and_bounds(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.count == 3

    def test_stdev_sample(self):
        summary = summarize([1.0, 3.0])
        assert summary.stdev == pytest.approx(2.0 ** 0.5)

    def test_single_value_no_spread(self):
        summary = summarize([5.0])
        assert summary.stdev == 0.0
        assert summary.stderr == 0.0

    def test_empty(self):
        summary = summarize([])
        assert summary.mean == 0.0
        assert summary.minimum == 0.0

    def test_confidence_interval_brackets_mean(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        low, high = summary.confidence_interval()
        assert low < summary.mean < high

    def test_frozen(self):
        summary = summarize([1.0])
        with pytest.raises(AttributeError):
            summary.values = ()


class TestMetricAcrossSeeds:
    def test_runs_each_seed(self):
        summary = metric_across_seeds(
            "gzip", "pred_regular", "prediction_rate", seeds=[1, 2, 3],
            references=2000,
        )
        assert summary.count == 3
        assert 0.0 < summary.mean <= 1.0

    def test_seed_variation_is_bounded(self):
        # The workload models should be stable enough that the prediction
        # rate moves by only a few points across seeds.
        summary = metric_across_seeds(
            "swim", "pred_regular", "prediction_rate", seeds=[1, 2, 3],
            references=4000,
        )
        assert summary.maximum - summary.minimum < 0.25

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            metric_across_seeds("gzip", "baseline", "bogus", seeds=[1])

    def test_metric_registry_entries_callable(self):
        assert set(METRICS) >= {"ipc", "prediction_rate", "l2_misses"}
