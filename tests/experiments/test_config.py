"""Machine configurations (Table 1)."""

from repro.experiments.config import (
    PredictionConfig,
    TABLE1_1M,
    TABLE1_256K,
    table1_rows,
)


class TestMachines:
    def test_l2_sizes(self):
        assert TABLE1_256K.l2_kb == 256
        assert TABLE1_1M.l2_kb == 1024

    def test_l2_latencies(self):
        assert TABLE1_256K.hierarchy.l2_latency == 4
        assert TABLE1_1M.hierarchy.l2_latency == 8

    def test_shared_parameters(self):
        for machine in (TABLE1_256K, TABLE1_1M):
            assert machine.core.issue_width == 8
            assert machine.engine.latency_ns == 96.0
            assert machine.tlb.entries == 256
            assert machine.hierarchy.l1i_size == 8 * 1024
            assert machine.hierarchy.l1_associativity == 1
            assert machine.dram.bus.bus_mhz == 200.0

    def test_prediction_parameters(self):
        prediction = TABLE1_256K.prediction
        assert prediction.depth == 5
        assert prediction.swing == 3
        assert prediction.phv_bits == 16
        assert prediction.phv_threshold == 12
        assert prediction.range_entries == 64

    def test_prediction_config_defaults(self):
        assert PredictionConfig().root_history_depth == 0


class TestTable1Rows:
    def test_contains_all_parameters(self):
        rows = dict(table1_rows())
        assert rows["Prediction depth"] == "5"
        assert rows["PHV threshold"] == "12"
        assert rows["Memory Bus"] == "200MHz, 8B wide"
        assert "96ns" in rows["AES latency"]
        assert len(rows) >= 15
