"""Grid sweeps."""

import pytest

from repro.experiments.report import render_bars
from repro.experiments.sweep import run_grid

REFS = 2000


@pytest.fixture(scope="module")
def grid():
    return run_grid(
        ["gzip", "twolf"], ["oracle", "baseline", "pred_regular"], references=REFS
    )


class TestGrid:
    def test_axes(self, grid):
        assert grid.benchmarks() == ["gzip", "twolf"]
        assert grid.schemes() == ["oracle", "baseline", "pred_regular"]

    def test_metrics_lookup(self, grid):
        metrics = grid.metrics("gzip", "baseline")
        assert metrics.scheme == "baseline"
        assert metrics.fetches > 0

    def test_metric_table(self, grid):
        table = grid.table(lambda m: m.prediction_rate, title="pred rates")
        assert table.series["pred_regular"]["gzip"] > 0.5
        assert table.series["baseline"]["twolf"] == 0.0

    def test_normalized_table(self, grid):
        table = grid.table(None, normalize_to="oracle")
        assert "oracle" not in table.series
        for scheme in ("baseline", "pred_regular"):
            for benchmark in ("gzip", "twolf"):
                assert 0.0 < table.series[scheme][benchmark] <= 1.0
        assert (
            table.series["pred_regular"]["gzip"] > table.series["baseline"]["gzip"]
        )


class TestBars:
    def test_render_bars(self, grid):
        table = grid.table(lambda m: m.prediction_rate, title="pred")
        art = render_bars(table)
        assert "gzip" in art and "twolf" in art
        assert "|" in art and "#" in art

    def test_bars_scale_to_peak(self, grid):
        table = grid.table(lambda m: m.prediction_rate)
        art = render_bars(table, width=10)
        longest = max(line.count("#") for line in art.splitlines())
        assert longest == 10


class TestSerialization:
    def test_round_trips_through_dict(self, grid):
        from repro.experiments.sweep import SweepResult

        restored = SweepResult.from_dict(grid.to_dict())
        assert restored.machine == grid.machine
        assert restored.references == grid.references
        assert restored.results == grid.results
        assert set(restored.snapshots) == set(grid.snapshots)
        assert restored.canonical_json() == grid.canonical_json()

    def test_canonical_json_is_deterministic(self, grid):
        assert grid.canonical_json() == grid.canonical_json()
        assert grid.canonical_json().endswith("\n")

    def test_execution_metadata_excluded_by_default(self, grid):
        # Supervision/fabric describe how a grid ran, not what it
        # computed; excluding them keeps serial == supervised == fabric
        # at the byte level (the service's result contract).
        import copy

        supervised = copy.copy(grid)
        supervised.supervision = {"cells_completed": 6}
        assert supervised.canonical_json() == grid.canonical_json()
        payload = supervised.to_dict(include_execution=True)
        assert payload["supervision"] == {"cells_completed": 6}

    def test_from_dict_rejects_wrong_schema(self):
        from repro.experiments.sweep import SweepResult

        with pytest.raises(ValueError, match="not a sweep result"):
            SweepResult.from_dict({"schema": "something/else"})
