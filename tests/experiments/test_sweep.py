"""Grid sweeps."""

import pytest

from repro.experiments.report import render_bars
from repro.experiments.sweep import run_grid

REFS = 2000


@pytest.fixture(scope="module")
def grid():
    return run_grid(
        ["gzip", "twolf"], ["oracle", "baseline", "pred_regular"], references=REFS
    )


class TestGrid:
    def test_axes(self, grid):
        assert grid.benchmarks() == ["gzip", "twolf"]
        assert grid.schemes() == ["oracle", "baseline", "pred_regular"]

    def test_metrics_lookup(self, grid):
        metrics = grid.metrics("gzip", "baseline")
        assert metrics.scheme == "baseline"
        assert metrics.fetches > 0

    def test_metric_table(self, grid):
        table = grid.table(lambda m: m.prediction_rate, title="pred rates")
        assert table.series["pred_regular"]["gzip"] > 0.5
        assert table.series["baseline"]["twolf"] == 0.0

    def test_normalized_table(self, grid):
        table = grid.table(None, normalize_to="oracle")
        assert "oracle" not in table.series
        for scheme in ("baseline", "pred_regular"):
            for benchmark in ("gzip", "twolf"):
                assert 0.0 < table.series[scheme][benchmark] <= 1.0
        assert (
            table.series["pred_regular"]["gzip"] > table.series["baseline"]["gzip"]
        )


class TestBars:
    def test_render_bars(self, grid):
        table = grid.table(lambda m: m.prediction_rate, title="pred")
        art = render_bars(table)
        assert "gzip" in art and "twolf" in art
        assert "|" in art and "#" in art

    def test_bars_scale_to_peak(self, grid):
        table = grid.table(lambda m: m.prediction_rate)
        art = render_bars(table, width=10)
        longest = max(line.count("#") for line in art.splitlines())
        assert longest == 10
