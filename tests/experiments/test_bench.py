"""Bench regression guard logic (pure; the CLI wiring is in test_cli)."""

import pytest

from repro.experiments.bench import check_regression


def _report(vector=4.0, otp=2.0, warm=10.0, parallel=2.5,
            identical=True, hit_rate=1.0):
    return {
        "crypto": {"vector_speedup": vector},
        "otp": {"speedup": otp},
        "grid": {
            "warm_speedup": warm,
            "parallel_speedup": parallel,
            "metrics_identical": identical,
            "warm_cache_hit_rate": hit_rate,
        },
    }


class TestCheckRegression:
    def test_identical_reports_pass(self):
        assert check_regression(_report(), _report()) == []

    def test_small_drop_within_tolerance_passes(self):
        current = _report(otp=1.7)  # 15% below baseline's 2.0
        assert check_regression(current, _report(), tolerance=0.2) == []

    def test_large_drop_fails(self):
        current = _report(otp=1.0)
        violations = check_regression(current, _report(), tolerance=0.2)
        assert len(violations) == 1
        assert "otp.speedup" in violations[0]

    def test_metrics_identical_is_a_hard_invariant(self):
        current = _report(identical=False)
        violations = check_regression(current, _report())
        assert any("metrics_identical" in v for v in violations)

    def test_warm_hit_rate_must_be_total(self):
        current = _report(hit_rate=0.9)
        violations = check_regression(current, _report())
        assert any("warm_cache_hit_rate" in v for v in violations)

    def test_missing_values_are_skipped_not_failed(self):
        current = _report()
        current["crypto"]["vector_speedup"] = None  # e.g. no numpy
        assert check_regression(current, _report()) == []
        baseline = _report()
        del baseline["otp"]
        assert check_regression(_report(), baseline) == []

    def test_improvements_always_pass(self):
        current = _report(vector=40.0, otp=20.0, warm=100.0, parallel=25.0)
        assert check_regression(current, _report()) == []

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            check_regression(_report(), _report(), tolerance=1.5)
        with pytest.raises(ValueError):
            check_regression(_report(), _report(), tolerance=-0.1)
