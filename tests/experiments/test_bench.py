"""Bench regression guard logic (pure; the CLI wiring is in test_cli)."""

import pytest

from repro.experiments.bench import check_regression, temper_baseline


def _report(vector=4.0, otp=2.0, warm=10.0, parallel=2.5,
            identical=True, hit_rate=1.0):
    return {
        "crypto": {"vector_speedup": vector},
        "otp": {"speedup": otp},
        "grid": {
            "warm_speedup": warm,
            "parallel_speedup": parallel,
            "metrics_identical": identical,
            "warm_cache_hit_rate": hit_rate,
        },
    }


class TestCheckRegression:
    def test_identical_reports_pass(self):
        assert check_regression(_report(), _report()) == []

    def test_small_drop_within_tolerance_passes(self):
        current = _report(otp=1.7)  # 15% below baseline's 2.0
        assert check_regression(current, _report(), tolerance=0.2) == []

    def test_large_drop_fails(self):
        current = _report(otp=1.0)
        violations = check_regression(current, _report(), tolerance=0.2)
        assert len(violations) == 1
        assert "otp.speedup" in violations[0]

    def test_metrics_identical_is_a_hard_invariant(self):
        current = _report(identical=False)
        violations = check_regression(current, _report())
        assert any("metrics_identical" in v for v in violations)

    def test_warm_hit_rate_must_be_total(self):
        current = _report(hit_rate=0.9)
        violations = check_regression(current, _report())
        assert any("warm_cache_hit_rate" in v for v in violations)

    def test_missing_values_are_skipped_not_failed(self):
        current = _report()
        current["crypto"]["vector_speedup"] = None  # e.g. no numpy
        assert check_regression(current, _report()) == []
        baseline = _report()
        del baseline["otp"]
        assert check_regression(_report(), baseline) == []

    def test_improvements_always_pass(self):
        current = _report(vector=40.0, otp=20.0, warm=100.0, parallel=25.0)
        assert check_regression(current, _report()) == []

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            check_regression(_report(), _report(), tolerance=1.5)
        with pytest.raises(ValueError):
            check_regression(_report(), _report(), tolerance=-0.1)


class TestTemperBaseline:
    def test_min_across_runs_times_safety(self):
        runs = [_report(otp=2.0), _report(otp=1.6), _report(otp=1.8)]
        baseline = temper_baseline(runs, safety=0.5)
        assert baseline["otp"]["speedup"] == 0.8  # min(2.0, 1.6, 1.8) * 0.5
        assert baseline["tempering"]["values"]["otp.speedup"] == 0.8

    def test_every_guarded_speedup_is_tempered(self):
        baseline = temper_baseline([_report()], safety=0.8)
        values = baseline["tempering"]["values"]
        assert set(values) == {
            "crypto.vector_speedup", "otp.speedup",
            "grid.warm_speedup", "grid.parallel_speedup",
        }

    def test_missing_values_become_none(self):
        run = _report()
        run["crypto"]["vector_speedup"] = None  # e.g. no numpy
        baseline = temper_baseline([run])
        assert baseline["tempering"]["values"]["crypto.vector_speedup"] is None
        assert baseline["crypto"]["vector_speedup"] is None  # left as recorded

    def test_tempered_baseline_passes_against_its_own_runs(self):
        runs = [_report(otp=2.0), _report(otp=1.6)]
        baseline = temper_baseline(runs, safety=0.8)
        for run in runs:
            assert check_regression(run, baseline, tolerance=0.0) == []

    def test_metadata_records_the_rule(self):
        baseline = temper_baseline([_report(), _report()], safety=0.7)
        assert baseline["tempering"]["runs"] == 2
        assert baseline["tempering"]["safety"] == 0.7
        assert "min" in baseline["tempering"]["rule"]

    def test_input_report_not_mutated(self):
        run = _report(otp=2.0)
        temper_baseline([run], safety=0.5)
        assert run["otp"]["speedup"] == 2.0
        assert "tempering" not in run

    def test_empty_reports_rejected(self):
        with pytest.raises(ValueError):
            temper_baseline([])

    def test_bad_safety_rejected(self):
        with pytest.raises(ValueError):
            temper_baseline([_report()], safety=0.0)
        with pytest.raises(ValueError):
            temper_baseline([_report()], safety=1.1)
