"""Bench regression guard logic (pure; the CLI wiring is in test_cli)."""

import pytest

from repro.experiments.bench import (
    REPLAY_SCHEMES,
    available_cpus,
    check_regression,
    render_report,
    replay_bench,
    temper_baseline,
)


def _report(vector=4.0, otp=2.0, warm=10.0, parallel=2.5,
            identical=True, hit_rate=1.0, replay=12.0,
            replay_identical=True, cpus=None):
    report = {
        "crypto": {"vector_speedup": vector},
        "otp": {"speedup": otp},
        "replay": {
            "speedup": replay,
            "metrics_identical": replay_identical,
        },
        "grid": {
            "warm_speedup": warm,
            "parallel_speedup": parallel,
            "metrics_identical": identical,
            "warm_cache_hit_rate": hit_rate,
        },
    }
    if cpus is not None:
        report["environment"] = {"cpus": cpus}
    return report


class TestAvailableCpus:
    def test_positive_and_bounded_by_machine(self):
        import os

        cpus = available_cpus()
        assert cpus >= 1
        assert cpus <= (os.cpu_count() or cpus)

    def test_respects_affinity_mask(self, monkeypatch):
        # A cgroup/affinity-limited runner must report its real budget,
        # not the machine's — that is what the speedup gate keys on.
        monkeypatch.setattr(
            "os.sched_getaffinity", lambda pid: {0, 1}, raising=False
        )
        assert available_cpus() == 2

    def test_falls_back_when_affinity_unavailable(self, monkeypatch):
        def broken(pid):
            raise OSError("not supported")

        monkeypatch.setattr("os.sched_getaffinity", broken, raising=False)
        import os

        assert available_cpus() == (os.cpu_count() or 1)


class TestCheckRegression:
    def test_identical_reports_pass(self):
        assert check_regression(_report(), _report()) == []

    def test_small_drop_within_tolerance_passes(self):
        current = _report(otp=1.7)  # 15% below baseline's 2.0
        assert check_regression(current, _report(), tolerance=0.2) == []

    def test_large_drop_fails(self):
        current = _report(otp=1.0)
        violations = check_regression(current, _report(), tolerance=0.2)
        assert len(violations) == 1
        assert "otp.speedup" in violations[0]

    def test_metrics_identical_is_a_hard_invariant(self):
        current = _report(identical=False)
        violations = check_regression(current, _report())
        assert any("metrics_identical" in v for v in violations)

    def test_warm_hit_rate_must_be_total(self):
        current = _report(hit_rate=0.9)
        violations = check_regression(current, _report())
        assert any("warm_cache_hit_rate" in v for v in violations)

    def test_missing_values_are_skipped_not_failed(self):
        current = _report()
        current["crypto"]["vector_speedup"] = None  # e.g. no numpy
        assert check_regression(current, _report()) == []
        baseline = _report()
        del baseline["otp"]
        assert check_regression(_report(), baseline) == []

    def test_improvements_always_pass(self):
        current = _report(vector=40.0, otp=20.0, warm=100.0, parallel=25.0)
        assert check_regression(current, _report()) == []

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            check_regression(_report(), _report(), tolerance=1.5)
        with pytest.raises(ValueError):
            check_regression(_report(), _report(), tolerance=-0.1)

    def test_replay_identity_is_a_hard_invariant(self):
        current = _report(replay_identical=False)
        violations = check_regression(current, _report())
        assert any("replay.metrics_identical" in v for v in violations)

    def test_replay_speedup_guarded_against_baseline(self):
        current = _report(replay=8.0)  # 33% below baseline's 12.0
        violations = check_regression(current, _report(), tolerance=0.2)
        assert any("replay.speedup" in v for v in violations)
        assert check_regression(current, _report(), tolerance=0.5) == []

    def test_report_without_replay_section_tolerated(self):
        # Old bench fixtures (and old committed baselines) predate the
        # replay layer; their absence must not fail the guard.
        current, baseline = _report(), _report()
        del current["replay"], baseline["replay"]
        assert check_regression(current, baseline) == []

    def test_parallel_speedup_must_beat_serial_on_multi_cpu(self):
        current = _report(parallel=0.92, cpus=8)
        violations = check_regression(current, _report(parallel=0.92))
        assert any("parallel_speedup" in v and "8-CPU" in v for v in violations)

    def test_parallel_speedup_not_required_on_one_cpu(self):
        current = _report(parallel=0.92, cpus=1)
        assert check_regression(current, _report(parallel=0.92)) == []

    def test_parallel_speedup_not_required_without_environment(self):
        current = _report(parallel=0.92)  # no environment section at all
        assert check_regression(current, _report(parallel=0.92)) == []


class TestTemperBaseline:
    def test_min_across_runs_times_safety(self):
        runs = [_report(otp=2.0), _report(otp=1.6), _report(otp=1.8)]
        baseline = temper_baseline(runs, safety=0.5)
        assert baseline["otp"]["speedup"] == 0.8  # min(2.0, 1.6, 1.8) * 0.5
        assert baseline["tempering"]["values"]["otp.speedup"] == 0.8

    def test_every_guarded_speedup_is_tempered(self):
        baseline = temper_baseline([_report()], safety=0.8)
        values = baseline["tempering"]["values"]
        assert set(values) == {
            "crypto.vector_speedup", "otp.speedup", "replay.speedup",
            "grid.warm_speedup", "grid.parallel_speedup",
            "service.submit_to_result_sec",
        }
        # _report() carries no service section, so the latency tempers
        # to None rather than failing.
        assert values["service.submit_to_result_sec"] is None

    def test_missing_values_become_none(self):
        run = _report()
        run["crypto"]["vector_speedup"] = None  # e.g. no numpy
        baseline = temper_baseline([run])
        assert baseline["tempering"]["values"]["crypto.vector_speedup"] is None
        assert baseline["crypto"]["vector_speedup"] is None  # left as recorded

    def test_tempered_baseline_passes_against_its_own_runs(self):
        runs = [_report(otp=2.0), _report(otp=1.6)]
        baseline = temper_baseline(runs, safety=0.8)
        for run in runs:
            assert check_regression(run, baseline, tolerance=0.0) == []

    def test_metadata_records_the_rule(self):
        baseline = temper_baseline([_report(), _report()], safety=0.7)
        assert baseline["tempering"]["runs"] == 2
        assert baseline["tempering"]["safety"] == 0.7
        assert "min" in baseline["tempering"]["rule"]

    def test_input_report_not_mutated(self):
        run = _report(otp=2.0)
        temper_baseline([run], safety=0.5)
        assert run["otp"]["speedup"] == 2.0
        assert "tempering" not in run

    def test_empty_reports_rejected(self):
        with pytest.raises(ValueError):
            temper_baseline([])

    def test_bad_safety_rejected(self):
        with pytest.raises(ValueError):
            temper_baseline([_report()], safety=0.0)
        with pytest.raises(ValueError):
            temper_baseline([_report()], safety=1.1)


class TestReplayBench:
    def test_small_grid_structure_and_identity(self):
        report = replay_bench(
            references=500, trials=1,
            benchmarks=("gzip",), schemes=("oracle", "pred_regular"),
        )
        assert report["metrics_identical"] is True
        assert report["benchmarks"] == ["gzip"]
        assert report["schemes"] == ["oracle", "pred_regular"]
        assert "batched" in report["backends"]
        assert len(report["cells"]) == 2
        for cell in report["cells"]:
            assert cell["identical"] is True
            assert cell["reference_seconds"] >= 0
            assert cell["batched_seconds"] >= 0
            assert cell["reference_refs_per_sec"] > 0
            assert cell["batched_refs_per_sec"] > 0
        assert report["compile_seconds"] >= 0
        assert report["speedup"] is not None

    def test_default_schemes_cover_every_fast_path(self):
        # One cell per distinct replay fast path: the oracle loop, the
        # static and adaptive regular-predictor loops, and the
        # seqcache-augmented loop.
        assert REPLAY_SCHEMES == (
            "oracle", "pred_regular_static", "pred_regular",
            "pred_plus_cache_32k",
        )


class TestRenderReport:
    def _full_report(self, with_replay=True):
        report = {
            "crypto": {
                "scalar_blocks_per_sec": 1000.0,
                "vector_blocks_per_sec": 4000.0,
                "vector_speedup": 4.0,
            },
            "otp": {
                "baseline_ops_per_sec": 100.0,
                "optimized_ops_per_sec": 200.0,
                "speedup": 2.0,
            },
            "grid": {
                "cold_seconds": 2.0, "warm_seconds": 0.2,
                "warm_speedup": 10.0, "parallel_seconds": 1.0,
                "parallel_speedup": 2.0, "jobs": 2,
                "warm_cache_hit_rate": 1.0, "metrics_identical": True,
            },
        }
        if with_replay:
            report["replay"] = {
                "reference_refs_per_sec": 90000.0,
                "batched_refs_per_sec": 990000.0,
                "speedup": 11.0,
                "cells": [{}] * 12,
                "compile_seconds": 0.01,
                "metrics_identical": True,
            }
        return report

    def test_replay_line_rendered_when_present(self):
        text = render_report(self._full_report())
        assert "replay:" in text
        assert "x11.0" in text
        assert "identical: True" in text

    def test_replay_line_omitted_for_old_reports(self):
        text = render_report(self._full_report(with_replay=False))
        assert "replay:" not in text


class TestServiceLatencyGuard:
    def _with_service(self, report, latency=0.2, identical=True):
        report["service"] = {
            "submit_to_result_sec": latency,
            "results_identical": identical,
        }
        return report

    def test_latency_within_ceiling_passes(self):
        baseline = self._with_service(_report(), latency=0.2)
        current = self._with_service(_report(), latency=0.25)
        assert check_regression(current, baseline, tolerance=0.2) == []

    def test_latency_over_ceiling_fails(self):
        baseline = self._with_service(_report(), latency=0.2)
        current = self._with_service(_report(), latency=0.6)
        violations = check_regression(current, baseline, tolerance=0.2)
        assert any("service.submit_to_result_sec" in v for v in violations)

    def test_small_baselines_get_additive_jitter_slack(self):
        # A 0.01s baseline is inside scheduler-poll quantization noise;
        # a 0.1s measurement next run is jitter, not a regression.
        baseline = self._with_service(_report(), latency=0.01)
        current = self._with_service(_report(), latency=0.11)
        assert check_regression(current, baseline, tolerance=0.2) == []

    def test_latency_improvements_always_pass(self):
        baseline = self._with_service(_report(), latency=0.5)
        current = self._with_service(_report(), latency=0.01)
        assert check_regression(current, baseline) == []

    def test_missing_service_section_is_skipped(self):
        baseline = self._with_service(_report())
        assert check_regression(_report(), baseline) == []

    def test_service_identity_is_a_hard_invariant(self):
        current = self._with_service(_report(), identical=False)
        violations = check_regression(current, _report())
        assert any("service.results_identical" in v for v in violations)

    def test_temper_takes_max_over_safety_for_latencies(self):
        reports = [
            self._with_service(_report(), latency=value)
            for value in (0.2, 0.4, 0.3)
        ]
        baseline = temper_baseline(reports, safety=0.8)
        assert baseline["service"]["submit_to_result_sec"] == 0.5  # 0.4 / 0.8
        values = baseline["tempering"]["values"]
        assert values["service.submit_to_result_sec"] == 0.5
