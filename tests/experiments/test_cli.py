"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_list_prints_catalogs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "pred_context" in out
        assert "figure7" in out


class TestTable1:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Prediction depth" in out
        assert "96ns" in out


class TestFigure:
    def test_unknown_figure(self, capsys):
        assert main(["figure", "figure99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figure9_small(self, capsys):
        assert main(["figure", "figure9", "--refs", "1500"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "Average" in out


class TestRun:
    def test_run_prints_schemes(self, capsys):
        assert main(["run", "gzip", "oracle", "baseline", "--refs", "1500"]) == 0
        out = capsys.readouterr().out
        assert "oracle" in out and "baseline" in out
        assert "norm" in out  # normalized column appears when oracle runs

    def test_run_without_oracle_omits_norm(self, capsys):
        assert main(["run", "gzip", "baseline", "--refs", "1500"]) == 0
        assert "norm" not in capsys.readouterr().out

    def test_unknown_scheme(self, capsys):
        assert main(["run", "gzip", "bogus"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_unknown_benchmark(self, capsys):
        assert main(["run", "quake", "baseline"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_l2_selection(self, capsys):
        assert main(["run", "gzip", "baseline", "--refs", "1500", "--l2", "1M"]) == 0
        assert "table1-1M" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
