"""Command-line interface."""

import json

import pytest

import repro.cli as cli
from repro.cli import build_parser, main
from repro.cpu.tracefile import save_trace_file
from repro.experiments.runner import RunFailure
from repro.workloads.spec import build_workload


class TestList:
    def test_list_prints_catalogs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "pred_context" in out
        assert "figure7" in out


class TestTable1:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Prediction depth" in out
        assert "96ns" in out


class TestFigure:
    def test_unknown_figure(self, capsys):
        assert main(["figure", "figure99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figure9_small(self, capsys):
        assert main(["figure", "figure9", "--refs", "1500"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "Average" in out


class TestRun:
    def test_run_prints_schemes(self, capsys):
        assert main(["run", "gzip", "oracle", "baseline", "--refs", "1500"]) == 0
        out = capsys.readouterr().out
        assert "oracle" in out and "baseline" in out
        assert "norm" in out  # normalized column appears when oracle runs

    def test_run_without_oracle_omits_norm(self, capsys):
        assert main(["run", "gzip", "baseline", "--refs", "1500"]) == 0
        assert "norm" not in capsys.readouterr().out

    def test_unknown_scheme(self, capsys):
        assert main(["run", "gzip", "bogus"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_unknown_benchmark(self, capsys):
        assert main(["run", "quake", "baseline"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_l2_selection(self, capsys):
        assert main(["run", "gzip", "baseline", "--refs", "1500", "--l2", "1M"]) == 0
        assert "table1-1M" in capsys.readouterr().out


class TestRunTrace:
    def test_trace_replay(self, tmp_path, capsys):
        trace_path = tmp_path / "captured.rtrc"
        save_trace_file(trace_path, build_workload("gzip", references=1500).trace)
        assert main(["run", "captured", "baseline", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "captured" in out and "baseline" in out

    def test_missing_trace_file_is_one_line_error(self, capsys):
        assert main(["run", "x", "baseline", "--trace", "/no/such/file.rtrc"]) == 1
        err = capsys.readouterr().err
        assert "file not found" in err
        assert "Traceback" not in err

    def test_corrupt_trace_file_is_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.rtrc"
        bad.write_bytes(b"this is not a trace")
        assert main(["run", "x", "baseline", "--trace", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "corrupt trace file" in err
        assert "Traceback" not in err


class TestKeepGoing:
    def test_keep_going_reports_partial_failure(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli,
            "run_benchmark_resilient",
            lambda *args, **kwargs: (
                {},
                [RunFailure("gzip", "baseline", "RuntimeError", "boom", 2)],
            ),
        )
        assert main(["run", "gzip", "baseline", "--keep-going"]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err and "boom" in err

    def test_fail_fast_and_keep_going_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "gzip", "baseline", "--fail-fast", "--keep-going"]
            )


class TestFaults:
    def test_faults_json_report(self, capsys):
        code = main(
            ["faults", "--ops", "8", "--types", "bit_flip", "--rates", "0.5", "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["all_detected"] is True
        assert data["pad_reuse_free"] is True

    def test_faults_table_report(self, capsys):
        assert main(["faults", "--ops", "8", "--types", "drop", "--rates", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out and "drop" in out

    def test_unknown_fault_type(self, capsys):
        assert main(["faults", "--types", "gamma_ray"]) == 2
        assert "unknown fault type" in capsys.readouterr().err

    def test_bad_rate(self, capsys):
        assert main(["faults", "--rates", "2.0"]) == 2
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
