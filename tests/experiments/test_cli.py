"""Command-line interface."""

import json

import pytest

import repro.cli as cli
from repro.cli import build_parser, main
from repro.cpu.tracefile import save_trace_file
from repro.experiments.runner import RunFailure
from repro.telemetry.events import validate_chrome_trace
from repro.telemetry.snapshot import SnapshotSeries
from repro.workloads.spec import build_workload


class TestList:
    def test_list_prints_catalogs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "pred_context" in out
        assert "figure7" in out


class TestTable1:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Prediction depth" in out
        assert "96ns" in out


class TestFigure:
    def test_unknown_figure(self, capsys):
        assert main(["figure", "figure99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figure9_small(self, capsys):
        assert main(["figure", "figure9", "--refs", "1500"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "Average" in out


class TestRun:
    def test_run_prints_schemes(self, capsys):
        assert main(["run", "gzip", "oracle", "baseline", "--refs", "1500"]) == 0
        out = capsys.readouterr().out
        assert "oracle" in out and "baseline" in out
        assert "norm" in out  # normalized column appears when oracle runs

    def test_run_without_oracle_omits_norm(self, capsys):
        assert main(["run", "gzip", "baseline", "--refs", "1500"]) == 0
        assert "norm" not in capsys.readouterr().out

    def test_unknown_scheme(self, capsys):
        assert main(["run", "gzip", "bogus"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_unknown_benchmark(self, capsys):
        assert main(["run", "quake", "baseline"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_l2_selection(self, capsys):
        assert main(["run", "gzip", "baseline", "--refs", "1500", "--l2", "1M"]) == 0
        assert "table1-1M" in capsys.readouterr().out


class TestRunTrace:
    def test_trace_replay(self, tmp_path, capsys):
        trace_path = tmp_path / "captured.rtrc"
        save_trace_file(trace_path, build_workload("gzip", references=1500).trace)
        assert main(["run", "captured", "baseline", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "captured" in out and "baseline" in out

    def test_missing_trace_file_is_one_line_error(self, capsys):
        assert main(["run", "x", "baseline", "--trace", "/no/such/file.rtrc"]) == 1
        err = capsys.readouterr().err
        assert "file not found" in err
        assert "Traceback" not in err

    def test_corrupt_trace_file_is_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.rtrc"
        bad.write_bytes(b"this is not a trace")
        assert main(["run", "x", "baseline", "--trace", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "corrupt trace file" in err
        assert "Traceback" not in err


class TestKeepGoing:
    def test_keep_going_reports_partial_failure(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli,
            "run_benchmark_cells_parallel",
            lambda *args, **kwargs: (
                {},
                [RunFailure("gzip", "baseline", "RuntimeError", "boom", 2)],
            ),
        )
        assert main(["run", "gzip", "baseline", "--keep-going"]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err and "boom" in err

    def test_fail_fast_and_keep_going_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "gzip", "baseline", "--fail-fast", "--keep-going"]
            )


class TestFaults:
    def test_faults_json_report(self, capsys):
        code = main(
            ["faults", "--ops", "8", "--types", "bit_flip", "--rates", "0.5", "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["all_detected"] is True
        assert data["pad_reuse_free"] is True

    def test_faults_table_report(self, capsys):
        assert main(["faults", "--ops", "8", "--types", "drop", "--rates", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out and "drop" in out

    def test_unknown_fault_type(self, capsys):
        assert main(["faults", "--types", "gamma_ray"]) == 2
        assert "unknown fault type" in capsys.readouterr().err

    def test_bad_rate(self, capsys):
        assert main(["faults", "--rates", "2.0"]) == 2
        assert "error:" in capsys.readouterr().err


class TestJobsAndCacheFlags:
    def test_run_with_jobs_matches_serial(self, capsys):
        assert main(["run", "gzip", "oracle", "baseline", "--refs", "1500"]) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(
                ["run", "gzip", "oracle", "baseline", "--refs", "1500",
                 "--jobs", "2", "--no-cache"]
            )
            == 0
        )
        assert capsys.readouterr().out == serial_out

    def test_jobs_zero_means_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        args = build_parser().parse_args(["run", "gzip", "oracle", "--jobs", "0"])
        assert args.jobs is None

    def test_run_populates_cache_by_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert main(["run", "gzip", "oracle", "--refs", "1500"]) == 0
        capsys.readouterr()
        result_files = list((tmp_path / "c" / "results").rglob("*.json"))
        assert len(result_files) == 1

    def test_no_cache_leaves_cache_empty(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert main(["run", "gzip", "oracle", "--refs", "1500", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        assert not (tmp_path / "c" / "results").exists()

    def test_figure_accepts_jobs(self, capsys):
        assert main(
            ["figure", "figure9", "--refs", "1500", "--jobs", "2", "--no-cache"]
        ) == 0
        assert "Figure 9" in capsys.readouterr().out

    def test_faults_accepts_jobs(self, capsys):
        code = main(
            ["faults", "--ops", "8", "--types", "bit_flip", "--rates", "0.5",
             "--jobs", "2", "--json"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["all_detected"] is True


class TestCacheCommand:
    def test_cache_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert main(["run", "gzip", "oracle", "--refs", "1500"]) == 0
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_cache_stats_reports_fingerprint(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "fingerprint:" in out
        assert "results" in out and "traces" in out


class TestBench:
    def test_bench_writes_report(self, capsys, tmp_path):
        output = tmp_path / "BENCH_perf.json"
        code = main(
            ["bench", "--refs", "1200", "--ops", "30", "--jobs", "1",
             "--output", str(output)]
        )
        assert code == 0
        assert "Performance benchmark" in capsys.readouterr().out
        report = json.loads(output.read_text())
        assert report["grid"]["metrics_identical"] is True
        assert report["grid"]["warm_cache_hit_rate"] == 1.0
        assert report["crypto"]["scalar_blocks_per_sec"] > 0
        assert report["otp"]["optimized_ops_per_sec"] > 0


class TestBenchUpdateBaseline:
    def test_update_writes_tempered_baseline(self, capsys, tmp_path):
        baseline = tmp_path / "BENCH_baseline.json"
        code = main(
            ["bench", "--refs", "1200", "--ops", "30", "--jobs", "1",
             "--output", str(tmp_path / "report.json"),
             "--update-baseline", "--runs", "1", "--safety", "0.5",
             "--baseline", str(baseline)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "re-tempered" in stdout
        payload = json.loads(baseline.read_text())
        assert payload["tempering"]["runs"] == 1
        assert payload["tempering"]["safety"] == 0.5
        # Tempered floor sits below the single observed run by the safety
        # factor, so a re-check against it passes.
        report = json.loads((tmp_path / "report.json").read_text())
        observed = report["otp"]["speedup"]
        assert payload["otp"]["speedup"] == pytest.approx(
            round(observed * 0.5, 2)
        )


class TestBenchCheck:
    def test_check_passes_against_own_report(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main(
            ["bench", "--refs", "1200", "--ops", "30", "--jobs", "1",
             "--output", str(baseline)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["bench", "--refs", "1200", "--ops", "30", "--jobs", "1",
             "--output", str(tmp_path / "current.json"),
             "--check", str(baseline), "--tolerance", "0.9"]
        )
        assert code == 0
        assert "regression check" in capsys.readouterr().out

    def test_check_fails_on_regression(self, capsys, tmp_path):
        output = tmp_path / "current.json"
        assert main(
            ["bench", "--refs", "1200", "--ops", "30", "--jobs", "1",
             "--output", str(output)]
        ) == 0
        capsys.readouterr()
        report = json.loads(output.read_text())
        report["otp"]["speedup"] = report["otp"]["speedup"] * 1000
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(report))
        code = main(
            ["bench", "--refs", "1200", "--ops", "30", "--jobs", "1",
             "--output", str(tmp_path / "again.json"), "--check", str(baseline)]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_writes_chrome_json(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        code = main(
            ["trace", "gzip", "--refs", "1500", "--out", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "captured" in stdout and str(out) in stdout
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert "X" in phases  # complete spans made it out

    def test_trace_unknown_benchmark(self, capsys):
        assert main(["trace", "quake"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_trace_unknown_scheme(self, capsys):
        assert main(["trace", "gzip", "--scheme", "bogus"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_trace_is_well_formed_timeline(self, tmp_path):
        """Golden-shape check: counter tracks, flow arrows, named lanes —
        everything the validator enforces for Perfetto-loadable output."""
        out = tmp_path / "trace.json"
        assert main(["trace", "stream", "--refs", "1500", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        counters = {
            e["name"] for e in payload["traceEvents"] if e["ph"] == "C"
        }
        assert len(counters) >= 3
        assert {"pred.queue_depth", "crypto.pipeline", "dram.outstanding"} <= counters
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"s", "f"} <= phases  # fetch→pad→xor arrows present

    def test_trace_demo_benchmark_accepted(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "stream", "--refs", "1500", "--out", str(out)]) == 0
        assert "captured" in capsys.readouterr().out


class TestTraceDiff:
    def test_diff_merges_two_schemes(self, capsys, tmp_path):
        out = tmp_path / "diff.json"
        code = main(
            ["trace", "gzip", "--refs", "1500", "--out", str(out),
             "--diff", "pred_regular", "direct_encryption"]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "pred_regular" in stdout and "direct_encryption" in stdout
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert names == {"pred_regular", "direct_encryption"}
        assert payload["otherData"]["groups"] == [
            "pred_regular", "direct_encryption",
        ]

    def test_diff_unknown_scheme(self, capsys):
        assert main(["trace", "gzip", "--diff", "pred_regular", "bogus"]) == 2
        assert "unknown scheme" in capsys.readouterr().err


class TestSeriesCommand:
    def test_series_writes_loadable_jsonl(self, capsys, tmp_path):
        out = tmp_path / "series.jsonl"
        code = main(
            ["series", "gzip", "--refs", "1500", "--interval", "300",
             "--out", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "snapshots" in stdout and str(out) in stdout
        series = SnapshotSeries.load(out)
        assert len(series) >= 2
        assert series.meta["benchmark"] == "gzip"
        assert series.accesses() == sorted(series.accesses())

    def test_series_rate_prints_windows(self, capsys, tmp_path):
        code = main(
            ["series", "gzip", "--refs", "1500", "--interval", "300",
             "--out", str(tmp_path / "series.jsonl"),
             "--rate",
             "secure.predictor.prediction_hits/secure.predictor.lookups"]
        )
        assert code == 0
        assert "window" in capsys.readouterr().out

    def test_series_rejects_bad_interval(self, capsys):
        assert main(["series", "gzip", "--interval", "0"]) == 2
        assert "interval" in capsys.readouterr().err

    def test_series_unknown_benchmark(self, capsys):
        assert main(["series", "quake"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestEmitMetrics:
    def test_run_emits_merged_snapshot(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        code = main(
            ["--emit-metrics", str(path), "run", "gzip", "oracle",
             "pred_regular", "--refs", "1500", "--no-cache"]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        names = payload["metrics"]
        assert any(name.startswith("secure.controller.") for name in names)
        assert any(name.startswith("crypto.engine.") for name in names)
        assert any(name.startswith("memory.dram.") for name in names)
        assert any(name.startswith("memory.hierarchy.") for name in names)
        assert payload["meta"]["merged_cells"] == 2

    def test_trace_emits_snapshot(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        code = main(
            ["--emit-metrics", str(path), "trace", "gzip", "--refs", "1500",
             "--out", str(tmp_path / "trace.json")]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert any(
            name.startswith("secure.controller.") for name in payload["metrics"]
        )


class TestSupervisedRun:
    def test_supervise_matches_plain_run(self, capsys):
        assert main(["run", "gzip", "oracle", "--refs", "1200", "--no-cache"]) == 0
        plain = capsys.readouterr().out
        assert main(
            ["run", "gzip", "oracle", "--refs", "1200", "--supervise"]
        ) == 0
        supervised = capsys.readouterr().out
        assert "supervision:" in supervised
        table = [line for line in plain.splitlines() if "oracle" in line]
        assert all(line in supervised for line in table)

    def test_resume_serves_finished_cells(self, capsys):
        assert main(
            ["run", "gzip", "oracle", "--refs", "1200", "--supervise"]
        ) == 0
        capsys.readouterr()
        assert main(["run", "gzip", "oracle", "--refs", "1200", "--resume"]) == 0
        assert "cells_resumed=1" in capsys.readouterr().out

    def test_figure_accepts_supervise(self, capsys):
        assert main(["figure", "figure9", "--refs", "1200", "--supervise"]) == 0
        assert "Figure 9" in capsys.readouterr().out
        from repro.experiments import sweep as sweep_mod

        assert sweep_mod._DEFAULT_SUPERVISION is None  # reset after the run

    def test_keep_going_summary_counts_cells(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli,
            "run_benchmark_cells_parallel",
            lambda *args, **kwargs: (
                {},
                [RunFailure("gzip", "baseline", "RuntimeError", "boom", 2,
                            cell_key="ab" * 32)],
            ),
        )
        assert main(["run", "gzip", "baseline", "--keep-going"]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err and "abababababab" in err
        assert "keep-going: 1 of 1 cell(s) failed, 0 completed" in err


class TestCacheVerify:
    def test_verify_clean_cache(self, capsys):
        assert main(["run", "gzip", "oracle", "--refs", "1500"]) == 0
        capsys.readouterr()
        assert main(["cache", "verify"]) == 0
        out = capsys.readouterr().out
        assert "0 corrupt" in out

    def test_verify_reports_then_repairs(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert main(["run", "gzip", "oracle", "--refs", "1500"]) == 0
        capsys.readouterr()
        entry = next((tmp_path / "c" / "results").rglob("*.json"))
        entry.write_text("{torn")
        assert main(["cache", "verify"]) == 1
        captured = capsys.readouterr()
        assert "1 corrupt" in captured.out
        assert entry.name in captured.err
        assert main(["cache", "verify", "--repair"]) == 0
        assert "quarantined 1" in capsys.readouterr().out
        assert not entry.exists()
        assert main(["cache", "verify"]) == 0
        assert "0 corrupt" in capsys.readouterr().out

    def test_stats_shows_quarantine_tier(self, capsys):
        assert main(["cache", "stats"]) == 0
        assert "quarantine" in capsys.readouterr().out


class TestFaultsSweepLayer:
    def test_sweep_layer_renders_soak_report(self, monkeypatch, capsys):
        import repro.faults.orchestration as orchestration

        report = {
            "cells": 4, "seed": 1, "jobs": 2,
            "chaos": {"planned": [
                {"cell_key": "ab" * 6, "attempt": 0, "action": "kill"},
            ]},
            "supervision": {"retries": 1, "timeouts": 0,
                            "worker_deaths": 1, "degraded_cells": 0},
            "supervised_identical_to_serial": True,
            "poisoned_entries": 1,
            "resume": {"cells_resumed": 3, "cells_completed": 1},
            "resume_quarantined": ["x.json"],
            "resume_recomputed_only_poisoned": True,
            "resumed_identical_to_serial": True,
            "ok": True,
        }
        seen = {}
        monkeypatch.setattr(
            orchestration, "run_sweep_soak",
            lambda **kwargs: seen.update(kwargs) or report,
        )
        assert main(["faults", "--layer", "sweep", "--refs", "700",
                     "--seed", "3", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out
        assert seen["references"] == 700
        assert seen["seed"] == 3

    def test_sweep_layer_json_and_failure_exit(self, monkeypatch, capsys):
        import repro.faults.orchestration as orchestration

        monkeypatch.setattr(
            orchestration, "run_sweep_soak", lambda **kwargs: {"ok": False}
        )
        assert main(["faults", "--layer", "sweep", "--json"]) == 1
        assert json.loads(capsys.readouterr().out) == {"ok": False}

    def test_machine_layer_is_default(self, capsys):
        assert main(
            ["faults", "--ops", "8", "--types", "bit_flip", "--rates", "0.5"]
        ) == 0
        assert "verdict:" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cache_verify_accepts_repair(self):
        args = build_parser().parse_args(["cache", "verify", "--repair"])
        assert args.action == "verify" and args.repair

    def test_engine_flags_include_supervision(self):
        args = build_parser().parse_args(
            ["run", "gzip", "oracle", "--resume", "--cell-timeout", "30"]
        )
        assert args.resume and args.cell_timeout == 30.0
        args = build_parser().parse_args(["figure", "figure9", "--supervise"])
        assert args.supervise


class TestSwarmCommand:
    GRID = ["--benchmarks", "gzip", "--schemes", "oracle,pred_regular",
            "--refs", "1200"]

    def test_start_then_drain_then_status(self, capsys):
        assert main(["swarm", "start", *self.GRID]) == 0
        out = capsys.readouterr().out
        assert "seeded (2 cells)" in out
        assert "repro swarm drain" in out
        assert main(["swarm", "drain", *self.GRID, "--workers", "2",
                     "--ttl", "5"]) == 0
        out = capsys.readouterr().out
        assert "drained 2/2 cells" in out
        assert main(["swarm", "status", *self.GRID]) == 0
        out = capsys.readouterr().out
        assert "complete" in out
        assert "done" in out

    def test_status_json_is_machine_readable(self, capsys):
        assert main(["swarm", "start", *self.GRID]) == 0
        capsys.readouterr()
        assert main(["swarm", "status", *self.GRID, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["total"] == 2
        assert status["counts"]["pending"] == 2
        assert not status["complete"]

    def test_unknown_scheme_is_a_usage_error(self, capsys):
        assert main(["swarm", "start", "--benchmarks", "gzip",
                     "--schemes", "nope"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_faults_layer_fabric_is_wired(self, capsys, monkeypatch):
        # The soak itself is exercised in tests/faults; here we only prove
        # the CLI dispatches to it and honors --json and the exit code.
        calls = {}

        def fake_soak(**kwargs):
            calls.update(kwargs)
            return {"ok": True, "cells": 4}

        monkeypatch.setattr(
            "repro.faults.orchestration.run_fabric_soak", fake_soak
        )
        assert main(["faults", "--layer", "fabric", "--refs", "999",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"]
        assert calls["references"] == 999


class TestCacheQuarantineLogStats:
    def test_stats_report_quarantine_log_line(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_LOG_MAX", "9")
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "quarantine log: 0 entries" in out
        assert "keeps last 9" in out
        assert "REPRO_QUARANTINE_LOG_MAX" in out


class TestBackendFlag:
    def test_backend_choice_exported_to_environment(self, capsys, monkeypatch):
        import os

        from repro.cpu.engine import BACKEND_ENV

        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert main(["--backend", "reference", "run", "gzip", "oracle",
                     "--refs", "1500"]) == 0
        # Exported rather than threaded through call sites, so parallel
        # sweep workers inherit the selection too.
        assert os.environ[BACKEND_ENV] == "reference"

    def test_backend_identical_output_across_backends(self, capsys):
        outputs = {}
        for backend in ("reference", "batched"):
            # --no-cache so the second backend really replays instead of
            # being served the first backend's cached cell.
            assert main(["--backend", backend, "run", "gzip", "pred_regular",
                         "--refs", "1500", "--no-cache"]) == 0
            outputs[backend] = capsys.readouterr().out
        assert outputs["reference"] == outputs["batched"]

    def test_unknown_backend_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["--backend", "turbo", "list"])
        assert "invalid choice" in capsys.readouterr().err


class TestServiceCommands:
    """The serve/submit/jobs/watch verbs against a real in-thread server."""

    @pytest.fixture
    def service_url(self, tmp_path, monkeypatch):
        from repro.service.queue import JobStore
        from repro.service.scheduler import SchedulerPolicy, ServiceScheduler
        from repro.service.server import serve_in_thread

        handle = serve_in_thread(
            ServiceScheduler(
                store=JobStore(tmp_path / "svc"),
                policy=SchedulerPolicy(
                    sample_interval_seconds=0.02, poll_interval_seconds=0.01
                ),
            )
        )
        monkeypatch.setenv("REPRO_SERVICE_URL", handle.url)
        yield handle.url
        handle.stop()

    GRID = ["--benchmarks", "stream", "--schemes", "baseline",
            "--refs", "800"]

    def test_submit_watch_and_jobs_round_trip(self, service_url, capsys):
        assert main(["submit", "--tenant", "alice", *self.GRID,
                     "--watch"]) == 0
        out = capsys.readouterr().out
        assert "queued: 1 cells" in out
        assert "state -> done" in out

        assert main(["jobs"]) == 0
        out = capsys.readouterr().out
        assert "alice" in out and "done" in out

        assert main(["jobs", "--tenant", "nobody", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_submit_json_receipt_and_watch_verb(self, service_url, capsys):
        assert main(["submit", "--tenant", "bob", *self.GRID,
                     "--json"]) == 0
        receipt = json.loads(capsys.readouterr().out)
        assert receipt["cells_total"] == 1
        assert main(["watch", receipt["job_id"]]) == 0
        out = capsys.readouterr().out
        assert "state -> done" in out

    def test_submit_quota_denial_exits_nonzero(self, service_url, capsys):
        # Fill the default per-tenant inflight quota (4) with queued jobs
        # by submitting distinct grids faster than one cell can run, then
        # overflow it.  Distinct seeds make distinct jobs.
        from repro.service.client import ServiceClient

        client = ServiceClient(service_url)
        for seed in range(2, 6):
            client.submit("carol", ["stream"], ["baseline", "oracle",
                                                "pred_regular"],
                          references=800, seed=seed)
        code = main(["submit", "--tenant", "carol", *self.GRID])
        err = capsys.readouterr().err
        assert code == 1
        assert "429" in err or "quota" in err

    def test_unreachable_service_is_one_line_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_URL", "http://127.0.0.1:1")
        assert main(["submit", *self.GRID]) == 1
        assert "cannot reach service" in capsys.readouterr().err


class TestSwarmStatusByKey:
    GRID = ["--benchmarks", "gzip", "--schemes", "oracle,pred_regular",
            "--refs", "1200"]

    def test_status_by_key_matches_status_by_grid(self, capsys):
        from repro.fabric.coordinator import SwarmSpec

        assert main(["swarm", "start", *self.GRID]) == 0
        capsys.readouterr()
        key = SwarmSpec(
            benchmarks=("gzip",), schemes=("oracle", "pred_regular"),
            references=1200,
        ).key
        assert main(["swarm", "status", "--key", key, "--json"]) == 0
        by_key = json.loads(capsys.readouterr().out)
        assert main(["swarm", "status", *self.GRID, "--json"]) == 0
        by_grid = json.loads(capsys.readouterr().out)
        assert by_key == by_grid
        assert by_key["total"] == 2

    def test_key_with_non_status_action_is_usage_error(self, capsys):
        assert main(["swarm", "drain", "--key", "abc"]) == 2
        assert "--key is only valid with status" in capsys.readouterr().err

    def test_unknown_key_is_one_line_error(self, capsys):
        assert main(["swarm", "status", "--key", "deadbeef"]) in (1, 2)
        err = capsys.readouterr().err
        assert err.strip()  # one-line error, no traceback
