"""Parallel engine: determinism vs serial, failure isolation, jobs plumbing."""

import dataclasses

import pytest

from repro.experiments import parallel as parallel_module
from repro.experiments.parallel import (
    default_jobs,
    parallel_map,
    resolve_jobs,
    run_benchmark_parallel,
    run_seeds,
    shared_pool,
    shutdown_pool,
    warm_pool,
)
from repro.experiments.runner import RunFailure, SchemeSpec
from repro.experiments.sweep import run_grid

REFS = 2500

# A scheme guaranteed to fail construction inside a worker process:
# direct encryption and predecryption are mutually exclusive.
BOGUS = SchemeSpec("bogus", direct=True, predecrypt=True)


def _metric_dicts(sweep):
    return {
        key: dataclasses.asdict(metrics) for key, metrics in sweep.results.items()
    }


class TestJobsResolution:
    def test_explicit_jobs_pass_through(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_negative_clamp_to_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1

    def test_none_uses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert default_jobs() == 5

    def test_bad_env_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert default_jobs() >= 1


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(str, [3, 1, 2], jobs=1) == ["3", "1", "2"]

    def test_parallel_path_preserves_order(self):
        assert parallel_map(str, list(range(8)), jobs=2) == [
            str(i) for i in range(8)
        ]

    def test_single_item_never_spawns_a_pool(self):
        # A lambda is not picklable; jobs collapsing to 1 for one item means
        # it runs in-process and succeeds anyway.
        assert parallel_map(lambda x: x + 1, [41], jobs=4) == [42]


class TestSharedPool:
    """Pool amortization: workers start once, every batch after reuses them."""

    @pytest.fixture(autouse=True)
    def _fresh_pool_state(self):
        shutdown_pool()
        yield
        shutdown_pool()

    def test_parallel_map_reuses_the_shared_pool(self):
        pool = warm_pool(2)
        assert parallel_map(str, [1, 2, 3, 4], jobs=2) == ["1", "2", "3", "4"]
        assert parallel_module._POOL is pool  # same workers, no restart
        assert parallel_map(str, [5, 6, 7, 8], jobs=2) == ["5", "6", "7", "8"]
        assert parallel_module._POOL is pool

    def test_warm_pool_is_idempotent_for_fitting_sizes(self):
        pool = warm_pool(2)
        assert warm_pool(2) is pool
        assert warm_pool(1) is pool  # smaller fits inside the warm pool

    def test_warm_pool_grows_by_replacement(self):
        small = warm_pool(1)
        grown = warm_pool(2)
        assert grown is not small
        assert warm_pool(2) is grown

    def test_shutdown_pool_clears_and_is_idempotent(self):
        warm_pool(1)
        shutdown_pool()
        assert parallel_module._POOL is None
        shutdown_pool()  # no-op without a pool
        # The next use transparently restarts a pool.
        assert parallel_map(str, [1, 2], jobs=2) == ["1", "2"]

    def test_shared_pool_scopes_a_warm_pool(self):
        with shared_pool(2) as pool:
            assert parallel_module._POOL is pool
            assert parallel_map(str, [1, 2, 3], jobs=2) == ["1", "2", "3"]
        # The pool is the process-wide one; it persists past the block.
        assert parallel_module._POOL is pool


class TestGridEquivalence:
    def test_parallel_grid_identical_to_serial(self):
        kwargs = dict(references=REFS, seed=3)
        serial = run_grid(["gzip", "mcf"], ["oracle", "pred_regular"], **kwargs)
        parallel = run_grid(
            ["gzip", "mcf"], ["oracle", "pred_regular"], jobs=2, **kwargs
        )
        assert _metric_dicts(serial) == _metric_dicts(parallel)
        assert serial.benchmarks() == parallel.benchmarks()
        assert serial.schemes() == parallel.schemes()

    def test_grid_ordering_is_input_ordering(self):
        sweep = run_grid(
            ["mcf", "gzip"], ["pred_regular", "oracle"],
            references=REFS, jobs=2,
        )
        assert sweep.benchmarks() == ["mcf", "gzip"]
        assert sweep.schemes() == ["pred_regular", "oracle"]


class TestSnapshotEquivalence:
    def test_parallel_merged_snapshot_equals_serial(self):
        """The tentpole determinism claim: telemetry snapshots harvested in
        worker processes merge to exactly the serial grid's totals."""
        kwargs = dict(references=REFS, seed=3)
        serial = run_grid(["gzip", "mcf"], ["oracle", "pred_regular"], **kwargs)
        parallel = run_grid(
            ["gzip", "mcf"], ["oracle", "pred_regular"], jobs=2, **kwargs
        )
        assert set(serial.snapshots) == set(parallel.snapshots)
        for key in serial.snapshots:
            assert serial.snapshots[key].values == parallel.snapshots[key].values
        serial_merged = serial.merged_snapshot()
        parallel_merged = parallel.merged_snapshot()
        assert serial_merged.values == parallel_merged.values
        assert serial_merged.kinds == parallel_merged.kinds
        assert serial_merged.meta["merged_cells"] == 4

    def test_merged_snapshot_sums_counters_across_cells(self):
        sweep = run_grid(["gzip"], ["oracle", "pred_regular"], references=REFS)
        merged = sweep.merged_snapshot()
        per_cell = [
            snapshot.values["secure.controller.fetches"]
            for snapshot in sweep.snapshots.values()
        ]
        assert merged.values["secure.controller.fetches"] == sum(per_cell)

    def test_empty_grid_has_no_merged_snapshot(self):
        sweep = run_grid([], [], references=REFS)
        assert sweep.merged_snapshot() is None


class TestSeriesEquivalence:
    def test_parallel_series_identical_to_serial(self):
        """Retention determinism: snapshot series spilled inside worker
        processes match the serial run sample for sample."""
        kwargs = dict(references=REFS, seed=3, series_interval=300)
        serial = run_grid(["gzip"], ["oracle", "pred_regular"], **kwargs)
        parallel = run_grid(
            ["gzip"], ["oracle", "pred_regular"], jobs=2, **kwargs
        )
        assert set(serial.series) == set(parallel.series)
        assert serial.series  # the grid actually retained something
        for key in serial.series:
            left, right = serial.series[key], parallel.series[key]
            assert left.accesses() == right.accesses()
            assert [s.values for s in left] == [s.values for s in right]

    def test_series_final_matches_grid_snapshot(self):
        sweep = run_grid(
            ["gzip"], ["pred_regular"], references=REFS, series_interval=300
        )
        series = sweep.cell_series("gzip", "pred_regular")
        snapshot = sweep.snapshots[("gzip", "pred_regular")]
        assert series.final.values == snapshot.values


class TestFailureIsolation:
    def test_keep_going_isolates_failures_through_the_pool(self):
        sweep = run_grid(
            ["gzip", "mcf"],
            ["oracle", BOGUS],
            references=REFS,
            keep_going=True,
            retries=0,
            jobs=2,
        )
        assert len(sweep.failures) == 2  # bogus fails on both benchmarks
        assert all(failure.scheme == "bogus" for failure in sweep.failures)
        assert ("gzip", "oracle") in sweep.results
        assert ("mcf", "oracle") in sweep.results
        assert not sweep.complete

    def test_fail_fast_propagates_worker_exception(self):
        with pytest.raises(ValueError, match="direct encryption"):
            run_grid(["gzip"], [BOGUS], references=REFS, jobs=2)

    def test_run_benchmark_parallel_keep_going(self):
        results, failures = run_benchmark_parallel(
            "gzip",
            ["oracle", BOGUS],
            references=REFS,
            keep_going=True,
            retries=0,
            jobs=2,
        )
        assert "oracle" in results
        assert len(failures) == 1
        assert isinstance(failures[0], RunFailure)


class TestRunSeeds:
    def test_parallel_seeds_match_serial(self):
        serial = run_seeds("gzip", "pred_regular", [1, 2, 3], references=REFS)
        parallel = run_seeds(
            "gzip", "pred_regular", [1, 2, 3], references=REFS, jobs=2
        )
        assert [dataclasses.asdict(m) for m in serial] == [
            dataclasses.asdict(m) for m in parallel
        ]

    def test_different_seeds_differ(self):
        runs = run_seeds("gzip", "pred_regular", [1, 2], references=REFS)
        assert dataclasses.asdict(runs[0]) != dataclasses.asdict(runs[1])
