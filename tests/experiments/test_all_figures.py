"""Structural checks on every figure function (tiny traces for speed)."""

import pytest

from repro.experiments.figures import (
    figure7,
    figure8,
    figure10,
    figure11,
    figure12,
    figure13,
    figure15,
    figure16,
)
from repro.workloads.spec import SPEC_BENCHMARKS

REFS = 1200

_HIT_RATE_FIGURES = [
    (figure7, {"128K_cache", "512K_cache", "Pred"}, "Figure 7"),
    (figure8, {"128K_cache", "512K_cache", "Pred"}, "Figure 8"),
    (figure12, {"Regular", "Two_Level", "Context"}, "Figure 12"),
    (figure13, {"Regular", "Two_Level", "Context"}, "Figure 13"),
]

_IPC_FIGURES = [
    (figure10, {"Seq_Cache_4K", "Seq_Cache_128K", "Seq_Cache_512K", "Pred"}, "Figure 10"),
    (figure11, {"Seq_Cache_4K", "Seq_Cache_128K", "Seq_Cache_512K", "Pred"}, "Figure 11"),
    (figure15, {"Regular", "Two_Level", "Context"}, "Figure 15"),
    (figure16, {"Regular", "Two_Level", "Context"}, "Figure 16"),
]


@pytest.mark.parametrize("figure_fn,series,figure_id", _HIT_RATE_FIGURES)
def test_hit_rate_figures_structure(figure_fn, series, figure_id):
    result = figure_fn(references=REFS)
    assert result.figure_id == figure_id
    assert set(result.series) == series
    for values in result.series.values():
        assert set(values) == set(SPEC_BENCHMARKS)
        assert all(0.0 <= v <= 1.0 for v in values.values())


@pytest.mark.parametrize("figure_fn,series,figure_id", _IPC_FIGURES)
def test_ipc_figures_structure(figure_fn, series, figure_id):
    result = figure_fn(references=REFS)
    assert result.figure_id == figure_id
    assert set(result.series) == series
    for values in result.series.values():
        assert set(values) == set(SPEC_BENCHMARKS)
        # Normalized to the oracle: bounded by 1, and never absurdly low.
        assert all(0.1 < v <= 1.0 + 1e-9 for v in values.values())


def test_seed_changes_results_but_not_structure():
    a = figure12(references=REFS, seed=1)
    b = figure12(references=REFS, seed=2)
    assert set(a.series) == set(b.series)
    assert a.series["Regular"] != b.series["Regular"]


def test_figures_deterministic_per_seed():
    a = figure12(references=REFS, seed=3)
    b = figure12(references=REFS, seed=3)
    assert a.series == b.series
