"""Figure harness: structure of results and rendering."""

import pytest

from repro.experiments.figures import figure9, figure14, table1
from repro.experiments.report import (
    FigureResult,
    compare_to_paper,
    geometric_mean,
    render_figure,
    series_average,
)
from repro.workloads.spec import SPEC_BENCHMARKS

REFS = 2000


@pytest.fixture(scope="module")
def fig9():
    return figure9(references=REFS)


class TestFigureStructure:
    def test_figure9_series(self, fig9):
        assert set(fig9.series) == {"Pred_Hit", "Seq_Only", "Both_Hit"}
        for values in fig9.series.values():
            assert set(values) == set(SPEC_BENCHMARKS)

    def test_figure9_fractions_bounded(self, fig9):
        for benchmark in SPEC_BENCHMARKS:
            total = sum(fig9.series[s][benchmark] for s in fig9.series)
            assert 0.0 <= total <= 1.0

    def test_figure14_counts(self):
        result = figure14(references=REFS)
        assert set(result.series) == {"L2_256K", "L2_1M"}
        for benchmark in SPEC_BENCHMARKS:
            assert result.series["L2_256K"][benchmark] >= result.series["L2_1M"][benchmark]

    def test_table1_metadata(self):
        result = table1()
        rows = dict(result.metadata["rows"])
        assert rows["Prediction depth"] == "5"


class TestRendering:
    def test_render_contains_all_benchmarks(self, fig9):
        text = render_figure(fig9)
        for benchmark in SPEC_BENCHMARKS:
            assert benchmark in text
        assert "Average" in text
        assert "Figure 9" in text

    def test_render_synthetic_result(self):
        result = FigureResult(
            figure_id="Figure X",
            title="test",
            series={"A": {"b1": 0.5, "b2": 0.25}},
            notes="hello",
        )
        text = render_figure(result)
        assert "0.500" in text
        assert "0.375" in text  # the average row
        assert "note: hello" in text


class TestReportHelpers:
    def test_series_average(self):
        assert series_average({"a": 0.2, "b": 0.4}) == pytest.approx(0.3)
        assert series_average({}) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean({"a": 4.0, "b": 1.0}) == pytest.approx(2.0)
        assert geometric_mean({}) == 0.0
        assert geometric_mean({"a": 0.0}) == 0.0

    def test_compare_to_paper(self):
        rows = compare_to_paper(
            measured={"avg": 0.80, "extra": 1.0}, paper={"avg": 0.82, "missing": 0.5}
        )
        assert rows == [("avg", 0.82, 0.80, pytest.approx(-0.02))]
