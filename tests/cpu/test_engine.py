"""Batched replay core: backend registry, compilation, and identity.

The contract under test is the one DESIGN.md states for the replay engine:
every registered backend produces **bit-identical** results — RunMetrics
(including the float cycle accumulator), the full telemetry snapshot, and
periodic snapshot series — for every scheme, benchmark, and seed, with
unsupported controllers transparently routed to the reference loop.
"""

import dataclasses
import warnings

import pytest

from repro.cpu import engine
from repro.cpu.engine import (
    BACKEND_ENV,
    BACKENDS,
    BatchedBackend,
    NumbaBackend,
    ReferenceBackend,
    ReplayBackend,
    available_backends,
    compile_trace,
    register_backend,
    resolve_backend,
)
from repro.cpu.system import MissEvent, MissTrace, replay_miss_trace
from repro.experiments.config import TABLE1_256K
from repro.experiments.runner import (
    SCHEMES,
    apply_preseed,
    collect_cell_snapshot,
    get_miss_trace,
    make_controller,
    run_cell,
)
from repro.secure.controller import RecoveryPolicy
from repro.secure.errors import CounterOverflowError

_MASK64 = (1 << 64) - 1

# Small but non-trivial: thousands of events, every row class, write-backs.
REFS = 1500


def trace_for(benchmark, references=REFS, seed=1):
    return get_miss_trace(benchmark, TABLE1_256K, references, seed, False)


def run_backend(backend, scheme, miss_trace, preseed, seed=1, **kwargs):
    """One cell through one backend: (metrics dict, snapshot triple)."""
    controller = make_controller(SCHEMES[scheme], TABLE1_256K, seed)
    apply_preseed(controller, preseed)
    metrics = replay_miss_trace(
        miss_trace,
        controller,
        core=TABLE1_256K.core,
        scheme=scheme,
        backend=backend,
        **kwargs,
    )
    snapshot = collect_cell_snapshot(controller, miss_trace)
    return (
        dataclasses.asdict(metrics),
        (snapshot.values, snapshot.kinds, snapshot.meta),
    )


def assert_backends_identical(scheme, miss_trace, preseed, seed=1):
    ref = run_backend("reference", scheme, miss_trace, preseed, seed)
    bat = run_backend("batched", scheme, miss_trace, preseed, seed)
    assert bat == ref, f"batched != reference for scheme {scheme}"


class TestBackendRegistry:
    def test_all_backends_registered(self):
        assert available_backends() == sorted(BACKENDS)
        for name in ("reference", "batched", "numba"):
            assert name in BACKENDS

    def test_explicit_resolution(self):
        assert isinstance(resolve_backend("reference"), ReferenceBackend)
        assert type(resolve_backend("batched")) is BatchedBackend
        assert isinstance(resolve_backend("numba"), NumbaBackend)

    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend().name == "batched"

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "reference")
        assert resolve_backend().name == "reference"
        # Explicit argument beats the environment.
        assert resolve_backend("batched").name == "batched"

    def test_environment_read_per_call_not_cached(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "reference")
        assert resolve_backend().name == "reference"
        monkeypatch.setenv(BACKEND_ENV, "batched")
        assert resolve_backend().name == "batched"

    def test_unknown_backend_raises_with_choices(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown replay backend"):
            resolve_backend("warp-drive")
        # A bogus environment value fails the same way instead of silently
        # falling back — a typo in CI should be loud.
        monkeypatch.setenv(BACKEND_ENV, "warp-drive")
        with pytest.raises(ValueError, match="warp-drive"):
            resolve_backend()

    def test_register_custom_backend(self):
        class EchoBackend(ReplayBackend):
            name = "echo-test"

            def replay(self, miss_trace, controller, **kwargs):
                return "echoed"

        try:
            register_backend(EchoBackend())
            assert "echo-test" in available_backends()
            assert resolve_backend("echo-test").replay(None, None) == "echoed"
        finally:
            BACKENDS.pop("echo-test", None)


class TestNumbaBackend:
    def test_warns_once_then_delegates(self, monkeypatch):
        backend = resolve_backend("numba")
        if backend.available():  # pragma: no cover - numba-equipped installs
            pytest.skip("numba installed; graceful-degradation path inactive")
        monkeypatch.setattr(NumbaBackend, "_warned", False)
        miss_trace, preseed = trace_for("gzip")
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            first = run_backend("numba", "pred_regular", miss_trace, preseed)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second run must stay silent
            second = run_backend("numba", "pred_regular", miss_trace, preseed)
        assert first == second
        assert first == run_backend("batched", "pred_regular", miss_trace, preseed)


class TestCompiledTrace:
    def test_step_and_access_columns_match_trace(self):
        miss_trace, _ = trace_for("gzip")
        controller = make_controller(SCHEMES["oracle"], TABLE1_256K, 1)
        compiled = compile_trace(
            miss_trace, controller.address_map, controller.dram.config,
            TABLE1_256K.core,
        )
        amap = controller.address_map
        fetches = sum(len(e.fetch_addresses) for e in miss_trace.events)
        fetchless = sum(1 for e in miss_trace.events if not e.fetch_addresses)
        assert compiled.n_steps == len(compiled.steps) == fetches + fetchless

        width = float(TABLE1_256K.core.issue_width)
        penalty = TABLE1_256K.core.l2_hit_penalty
        steps = iter(compiled.steps)
        accesses = []
        for event in miss_trace.events:
            group_holder = max(len(event.fetch_addresses), 1) - 1
            for i, address in enumerate(event.fetch_addresses or (None,)):
                gap_f, gap_h, line, page, bank, row, lat, group = next(steps)
                if i == 0:
                    assert gap_f == event.gap_instructions / width
                    assert gap_h == event.gap_l2_hits * penalty
                else:  # continuation fetches carry no new gap
                    assert (gap_f, gap_h) == (0.0, 0)
                if address is None:
                    assert line is None
                else:
                    assert line == amap.line_address(address)
                    assert page == amap.page_number(line)
                    accesses.append(line)
                if i == group_holder:
                    assert len(group) == len(event.writeback_addresses)
                    for wb, (wline, wpage, _, _, _) in zip(
                        event.writeback_addresses, group
                    ):
                        assert wline == amap.line_address(wb)
                        assert wpage == amap.page_number(wline)
                    accesses.extend(
                        amap.line_address(wb)
                        for wb in event.writeback_addresses
                    )
                else:
                    assert group == ()
        assert next(steps, None) is None
        assert len(compiled.acc_banks) == len(accesses)
        assert len(compiled.cum_hits) == len(accesses) + 1
        assert compiled.cum_hits[0] == compiled.cum_conflicts[0] == 0

    def test_static_row_classes_match_live_dram(self):
        """Compile-time DRAM classification equals what a real replay sees.

        The oracle scheme touches DRAM exactly once per access with no
        re-encryption traffic, so its live DRAM counters are the ground
        truth for the statically computed prefix sums.
        """
        miss_trace, preseed = trace_for("gzip")
        controller = make_controller(SCHEMES["oracle"], TABLE1_256K, 1)
        apply_preseed(controller, preseed)
        compiled = compile_trace(
            miss_trace, controller.address_map, controller.dram.config,
            TABLE1_256K.core,
        )
        replay_miss_trace(
            miss_trace, controller, core=TABLE1_256K.core,
            scheme="oracle", backend="reference",
        )
        stats = controller.dram.stats
        n = len(compiled.acc_banks)
        hits = compiled.cum_hits[-1]
        conflicts = compiled.cum_conflicts[-1]
        assert hits == stats.row_hits
        assert conflicts == stats.row_conflicts
        assert n - hits - conflicts == stats.row_empties

    def test_compile_memoized_per_trace_and_geometry(self):
        miss_trace, _ = trace_for("gzip")
        controller = make_controller(SCHEMES["oracle"], TABLE1_256K, 1)
        first = compile_trace(
            miss_trace, controller.address_map, controller.dram.config,
            TABLE1_256K.core,
        )
        again = compile_trace(
            miss_trace, controller.address_map, controller.dram.config,
            TABLE1_256K.core,
        )
        assert again is first


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
class TestIdentityAcrossSchemes:
    """reference == batched, bit for bit, for every scheme in the table."""

    def test_gzip(self, scheme):
        miss_trace, preseed = trace_for("gzip")
        assert_backends_identical(scheme, miss_trace, preseed)

    def test_art(self, scheme):
        miss_trace, preseed = trace_for("art")
        assert_backends_identical(scheme, miss_trace, preseed)


class TestIdentityProperties:
    """Property-style runs: seeds, benchmarks, and epoch boundaries vary."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_seed_sweep(self, seed):
        miss_trace, preseed = trace_for("gcc", seed=seed)
        for scheme in ("pred_regular", "pred_plus_cache_32k"):
            assert_backends_identical(scheme, miss_trace, preseed, seed=seed)

    def test_identity_across_epoch_boundaries(self, monkeypatch):
        # Tiny epochs force many mid-run stat flushes; results must not
        # depend on where the flush boundaries fall.
        monkeypatch.setattr(engine, "EPOCH_EVENTS", 64)
        miss_trace, preseed = trace_for("art")
        for scheme in ("oracle", "pred_regular", "seqcache_32k"):
            assert_backends_identical(scheme, miss_trace, preseed)

    def test_empty_trace(self):
        empty = MissTrace(
            events=(), total_instructions=0, total_references=0,
            l1_hits=0, l2_hits=0, l2_misses=0,
        )
        assert_backends_identical("pred_regular", empty, {})


class TestHookBatching:
    def test_batched_hook_fires_exactly_on_interval_multiples(self):
        miss_trace, preseed = trace_for("gzip")
        fetches = sum(len(e.fetch_addresses) for e in miss_trace.events)
        interval = 250

        calls = {"reference": [], "batched": []}
        for backend in calls:
            controller = make_controller(SCHEMES["pred_regular"], TABLE1_256K, 1)
            apply_preseed(controller, preseed)
            replay_miss_trace(
                miss_trace, controller, core=TABLE1_256K.core,
                scheme="pred_regular", backend=backend,
                on_fetch=calls[backend].append, hook_interval=interval,
            )
        # Reference keeps its historical per-fetch call; batched collapses
        # to one call per interval with the same cumulative counts.
        assert calls["reference"] == list(range(1, fetches + 1))
        assert calls["batched"] == list(
            range(interval, fetches + 1, interval)
        )

    def test_snapshot_series_identical_across_backends(self):
        cells = {
            backend: run_cell(
                "gzip", "pred_regular", machine=TABLE1_256K,
                references=REFS, series_interval=250, backend=backend,
            )
            for backend in ("reference", "batched")
        }
        ref, bat = cells["reference"], cells["batched"]
        assert dataclasses.asdict(ref.metrics) == dataclasses.asdict(bat.metrics)
        assert len(ref.series) == len(bat.series) > 1
        for a, b in zip(ref.series, bat.series):
            assert (a.values, a.kinds, a.meta) == (b.values, b.kinds, b.meta)


class TestFallbackPath:
    def test_unsupported_controller_routes_to_reference(self, monkeypatch):
        miss_trace, preseed = trace_for("gzip")

        def boom(*args, **kwargs):  # the tight loop must never run
            raise AssertionError("batched core used on unsupported controller")

        monkeypatch.setattr(engine, "_replay_batched", boom)
        controller = make_controller(SCHEMES["pred_regular"], TABLE1_256K, 1)
        apply_preseed(controller, preseed)
        controller.tracer.enabled = True  # tracers need per-call spans
        assert not controller.batched_replay_supported()
        metrics = replay_miss_trace(
            miss_trace, controller, core=TABLE1_256K.core,
            scheme="pred_regular", backend="batched",
        )
        controller.tracer.enabled = False
        expected, _ = run_backend("reference", "pred_regular", miss_trace, preseed)
        assert dataclasses.asdict(metrics) == expected

    @pytest.mark.parametrize("scheme", ["predecrypt", "direct_encryption"])
    def test_subclassed_controllers_fall_back(self, scheme):
        controller = make_controller(SCHEMES[scheme], TABLE1_256K, 1)
        assert not controller.batched_replay_supported()


def _overflow_fixture(recovery, seed=9):
    """A controller + synthetic trace whose write-back saturates a counter."""
    controller = make_controller(SCHEMES["pred_regular"], TABLE1_256K, seed)
    controller.recovery = recovery
    line_bytes = controller.address_map.line_bytes
    lines = [i * line_bytes for i in range(6)]
    victim = lines[0]
    events = tuple(
        MissEvent(
            gap_instructions=40, gap_l2_hits=1,
            fetch_addresses=(line,), writeback_addresses=(),
        )
        for line in lines
    ) + (
        MissEvent(
            gap_instructions=40, gap_l2_hits=0,
            fetch_addresses=(lines[1],), writeback_addresses=(victim,),
        ),
    )
    miss_trace = MissTrace(
        events=events, total_instructions=7 * 40, total_references=7,
        l1_hits=0, l2_hits=1, l2_misses=7,
    )
    # Pre-map the page and park the victim line one step from wrap-around,
    # still within the distance window of the current root.
    page = controller.address_map.page_number(victim)
    controller.page_table.state(page).root = (_MASK64 - 5) & _MASK64
    controller.backing.write_seqnum(victim, _MASK64)
    return controller, miss_trace


class TestCounterOverflow:
    """The fault path ISSUE.md singles out: saturated counters on write-back."""

    @pytest.mark.parametrize("backend", ["reference", "batched"])
    def test_overflow_raises_identically(self, backend):
        controller, miss_trace = _overflow_fixture(recovery=None)
        with pytest.raises(CounterOverflowError) as excinfo:
            replay_miss_trace(
                miss_trace, controller, core=TABLE1_256K.core,
                scheme="pred_regular", backend=backend,
            )
        assert excinfo.value.seqnum == _MASK64
        assert controller.stats.resilience.counter_overflows == 1

    def test_reencrypt_on_overflow_identical_metrics(self):
        outcomes = {}
        for backend in ("reference", "batched"):
            controller, miss_trace = _overflow_fixture(
                recovery=RecoveryPolicy(reencrypt_on_overflow=True)
            )
            metrics = replay_miss_trace(
                miss_trace, controller, core=TABLE1_256K.core,
                scheme="pred_regular", backend=backend,
            )
            assert controller.stats.resilience.counter_overflows == 1
            snapshot = collect_cell_snapshot(controller, miss_trace)
            outcomes[backend] = (
                dataclasses.asdict(metrics),
                (snapshot.values, snapshot.kinds, snapshot.meta),
            )
        assert outcomes["batched"] == outcomes["reference"]
