"""Core timing configuration and run metrics."""

import pytest

from repro.cpu.core import CoreConfig, RunMetrics


def make_metrics(cycles, instructions=1000, **overrides):
    base = dict(
        scheme="test",
        cycles=cycles,
        instructions=instructions,
        l2_misses=10,
        fetches=10,
        writebacks=5,
        prediction_lookups=10,
        prediction_hits=8,
        guesses_issued=60,
        seqcache_lookups=0,
        seqcache_hits=0,
        class_both=0,
        class_pred_only=8,
        class_cache_only=0,
        class_neither=2,
        mean_exposed_latency=100.0,
        engine_demand_blocks=4,
        engine_speculative_blocks=120,
        root_resets=1,
    )
    base.update(overrides)
    return RunMetrics(**base)


class TestCoreConfig:
    def test_table1_defaults(self):
        config = CoreConfig()
        assert config.issue_width == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(issue_width=0),
            dict(l2_hit_penalty=-1),
            dict(miss_overlap=1.0),
            dict(miss_overlap=-0.1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CoreConfig(**kwargs)


class TestRunMetrics:
    def test_ipc(self):
        assert make_metrics(cycles=500.0).ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert make_metrics(cycles=0.0).ipc == 0.0

    def test_prediction_rate(self):
        assert make_metrics(cycles=1.0).prediction_rate == 0.8

    def test_prediction_rate_no_lookups(self):
        metrics = make_metrics(cycles=1.0, prediction_lookups=0, prediction_hits=0)
        assert metrics.prediction_rate == 0.0

    def test_seqcache_hit_rate(self):
        metrics = make_metrics(cycles=1.0, seqcache_lookups=4, seqcache_hits=1)
        assert metrics.seqcache_hit_rate == 0.25

    def test_normalized_ipc(self):
        oracle = make_metrics(cycles=800.0)
        scheme = make_metrics(cycles=1000.0)
        assert scheme.normalized_ipc(oracle) == 0.8
        assert oracle.normalized_ipc(oracle) == 1.0
