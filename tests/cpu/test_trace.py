"""Trace records and summaries."""

import pytest

from repro.cpu.trace import MemoryAccess, summarize_trace


class TestMemoryAccess:
    def test_defaults(self):
        access = MemoryAccess(address=0x100)
        assert not access.is_write
        assert not access.is_instruction
        assert access.gap_instructions == 8

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            MemoryAccess(address=-1)

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            MemoryAccess(address=0, gap_instructions=-1)

    def test_frozen(self):
        access = MemoryAccess(address=0)
        with pytest.raises(AttributeError):
            access.address = 1


class TestSummary:
    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary.references == 0
        assert summary.write_fraction == 0.0
        assert summary.references_per_kilo_instruction == 0.0

    def test_counts(self):
        trace = [
            MemoryAccess(0, is_write=True, gap_instructions=10),
            MemoryAccess(16, gap_instructions=10),     # same line as 0
            MemoryAccess(32, gap_instructions=10),     # next line
            MemoryAccess(4096, gap_instructions=10),   # next page
        ]
        summary = summarize_trace(trace)
        assert summary.references == 4
        assert summary.instructions == 40
        assert summary.writes == 1
        assert summary.unique_lines == 3
        assert summary.unique_pages == 2
        assert summary.footprint_bytes == 96
        assert summary.write_fraction == 0.25
        assert summary.references_per_kilo_instruction == pytest.approx(100.0)
