"""Binary trace file format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.trace import MemoryAccess
from repro.cpu.tracefile import (
    TraceFormatError,
    dump_trace,
    load_trace,
    load_trace_file,
    save_trace_file,
)
from repro.workloads.spec import build_workload

access_strategy = st.builds(
    MemoryAccess,
    address=st.integers(min_value=0, max_value=(1 << 48) - 1),
    is_write=st.booleans(),
    is_instruction=st.booleans(),
    gap_instructions=st.integers(min_value=0, max_value=10_000),
)


class TestRoundtrip:
    def test_empty_trace(self):
        assert load_trace(dump_trace([])) == []

    def test_simple_trace(self):
        trace = [
            MemoryAccess(0x1000, is_write=True, gap_instructions=7),
            MemoryAccess(0x0020, gap_instructions=0),
            MemoryAccess(0x1000, is_instruction=True, gap_instructions=100),
        ]
        assert load_trace(dump_trace(trace)) == trace

    @given(trace=st.lists(access_strategy, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, trace):
        assert load_trace(dump_trace(trace)) == trace

    def test_workload_roundtrip_and_compactness(self):
        trace = build_workload("gzip", references=2000).trace
        data = dump_trace(trace)
        assert load_trace(data) == trace
        assert len(data) < len(trace) * 8  # far below naive encoding

    def test_file_roundtrip(self, tmp_path):
        trace = [MemoryAccess(0x40, gap_instructions=3)]
        path = tmp_path / "trace.rtrc"
        save_trace_file(path, trace)
        assert load_trace_file(path) == trace


class TestFormatErrors:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError, match="magic"):
            load_trace(b"XXXX\x01\x00")

    def test_truncated_header(self):
        with pytest.raises(TraceFormatError):
            load_trace(b"RTRC")

    def test_bad_version(self):
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(b"RTRC\x63\x00")

    def test_truncated_records(self):
        data = dump_trace([MemoryAccess(0x1000)])
        with pytest.raises(TraceFormatError):
            load_trace(data[:-1])

    def test_trailing_garbage(self):
        data = dump_trace([MemoryAccess(0x1000)])
        with pytest.raises(TraceFormatError, match="trailing"):
            load_trace(data + b"\x00")

    def test_unknown_flags(self):
        data = bytearray(dump_trace([MemoryAccess(0x1000)]))
        data[6] = 0xFF  # the flags byte of the first record
        with pytest.raises(TraceFormatError, match="flags"):
            load_trace(bytes(data))
