"""Full-system simulation: miss traces, replay, functional end-to-end."""

import pytest

from repro.cpu.core import CoreConfig
from repro.cpu.system import (
    FunctionalMismatchError,
    SecureSystem,
    collect_miss_trace,
    replay_miss_trace,
)
from repro.cpu.trace import MemoryAccess
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.secure.controller import SecureMemoryController


def tiny_config():
    return HierarchyConfig(
        l1i_size=512, l1d_size=512, l1_associativity=1,
        l2_size=4 * 1024, l2_associativity=4,
    )


def linear_trace(lines, gap=10, write=False):
    return [
        MemoryAccess(i * 32, is_write=write, gap_instructions=gap)
        for i in range(lines)
    ]


class TestCollectMissTrace:
    def test_cold_misses_recorded(self):
        trace = linear_trace(10)
        miss_trace = collect_miss_trace(trace, hierarchy=MemoryHierarchy(tiny_config()))
        assert miss_trace.l2_misses == 10
        assert miss_trace.total_references == 10
        assert miss_trace.total_instructions == 100
        fetched = [a for e in miss_trace.events for a in e.fetch_addresses]
        assert fetched == [i * 32 for i in range(10)]

    def test_hits_not_recorded_as_events(self):
        trace = linear_trace(4) + linear_trace(4)
        miss_trace = collect_miss_trace(trace, hierarchy=MemoryHierarchy(tiny_config()))
        assert miss_trace.l2_misses == 4
        assert miss_trace.l1_hits == 4

    def test_l2_hit_gap_counting(self):
        hierarchy = MemoryHierarchy(tiny_config())
        trace = linear_trace(17)  # fill L1 (16 lines) and one more
        trace += [MemoryAccess(0, gap_instructions=10)]  # L1 victim, L2 hit
        trace += [MemoryAccess(33 * 32, gap_instructions=10)]  # new miss
        miss_trace = collect_miss_trace(trace, hierarchy=hierarchy)
        assert miss_trace.l2_hits == 1
        assert miss_trace.events[-1].gap_l2_hits == 1

    def test_writebacks_attached_to_events(self):
        hierarchy = MemoryHierarchy(tiny_config())
        sets = hierarchy.l2.config.num_sets
        stride = sets * 32
        trace = [MemoryAccess(w * stride, is_write=True) for w in range(5)]
        miss_trace = collect_miss_trace(trace, hierarchy=hierarchy)
        writebacks = [a for e in miss_trace.events for a in e.writeback_addresses]
        assert writebacks == [0]

    def test_flush_events(self):
        trace = [MemoryAccess(i * 32, is_write=True, gap_instructions=100) for i in range(20)]
        miss_trace = collect_miss_trace(
            trace,
            hierarchy=MemoryHierarchy(tiny_config()),
            flush_interval_instructions=1000,
        )
        flush_events = [e for e in miss_trace.events if not e.fetch_addresses]
        assert flush_events
        assert all(e.writeback_addresses for e in flush_events)

    def test_miss_rate_properties(self):
        miss_trace = collect_miss_trace(
            linear_trace(10), hierarchy=MemoryHierarchy(tiny_config())
        )
        assert miss_trace.miss_rate == 1.0
        assert miss_trace.misses_per_kilo_instruction == pytest.approx(100.0)


class TestReplay:
    def test_replay_produces_cycles_and_stats(self):
        miss_trace = collect_miss_trace(
            linear_trace(20), hierarchy=MemoryHierarchy(tiny_config())
        )
        controller = SecureMemoryController()
        metrics = replay_miss_trace(miss_trace, controller, scheme="baseline")
        assert metrics.scheme == "baseline"
        assert metrics.cycles > 0
        assert metrics.fetches == 20
        assert metrics.instructions == miss_trace.total_instructions

    def test_replay_is_deterministic(self):
        miss_trace = collect_miss_trace(
            linear_trace(20), hierarchy=MemoryHierarchy(tiny_config())
        )
        a = replay_miss_trace(miss_trace, SecureMemoryController())
        b = replay_miss_trace(miss_trace, SecureMemoryController())
        assert a.cycles == b.cycles

    def test_oracle_faster_than_baseline(self):
        miss_trace = collect_miss_trace(
            linear_trace(50), hierarchy=MemoryHierarchy(tiny_config())
        )
        baseline = replay_miss_trace(miss_trace, SecureMemoryController())
        oracle = replay_miss_trace(miss_trace, SecureMemoryController(oracle=True))
        assert oracle.cycles < baseline.cycles

    def test_overlap_reduces_stall(self):
        miss_trace = collect_miss_trace(
            linear_trace(50), hierarchy=MemoryHierarchy(tiny_config())
        )
        blocking = replay_miss_trace(
            miss_trace, SecureMemoryController(), core=CoreConfig(miss_overlap=0.0)
        )
        overlapped = replay_miss_trace(
            miss_trace, SecureMemoryController(), core=CoreConfig(miss_overlap=0.5)
        )
        assert overlapped.cycles < blocking.cycles


class TestSecureSystemFunctional:
    def test_end_to_end_crypto_with_cache_dynamics(self, key256):
        # Writes mutate the shadow image; evictions encrypt it; re-fetches
        # must decrypt to exactly the image.  Small caches force heavy
        # eviction traffic through the whole crypto path.
        system = SecureSystem(
            controller=SecureMemoryController(key=key256, integrity=True),
            hierarchy=MemoryHierarchy(tiny_config()),
        )
        # Interleave writes over a footprint 4x the L2.
        for round_index in range(3):
            for i in range(512):
                system.access(MemoryAccess(i * 32, is_write=(i % 2 == 0)))
        assert system.controller.stats.fetches > 512
        assert system.controller.auditor.clean

    def test_flush_pushes_dirty_lines(self, key256):
        system = SecureSystem(functional_key=key256)
        system.access(MemoryAccess(0x1000, is_write=True))
        flushed = system.flush()
        assert flushed == 1
        assert system.controller.stats.writebacks == 1

    def test_tamper_surfaces_as_mismatch(self, key256):
        system = SecureSystem(
            controller=SecureMemoryController(key=key256, integrity=False),
            hierarchy=MemoryHierarchy(tiny_config()),
        )
        system.access(MemoryAccess(0x1000, is_write=True))
        system.flush()
        system.controller.backing.tamper_line(0x1000, b"\xff")
        # Evict 0x1000 from the caches, then refetch.
        for i in range(1024):
            system.access(MemoryAccess(0x40000 + i * 32))
        with pytest.raises(FunctionalMismatchError):
            system.access(MemoryAccess(0x1000))

    def test_timing_only_mode_has_no_plaintext(self):
        system = SecureSystem()
        assert not system.functional
        system.access(MemoryAccess(0x1000, is_write=True))
        system.flush()  # must not require plaintext

    def test_run_returns_self(self, key256):
        system = SecureSystem(functional_key=key256)
        assert system.run(linear_trace(5)) is system
