"""FaultCampaign: the detection/recovery matrix and its acceptance bars."""

import json

import pytest

from repro.faults import FaultCampaign, FaultType, run_smoke_campaign


class TestSmokeCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_smoke_campaign()

    def test_covers_the_full_grid(self, report):
        assert len(report.cells) == 7 * 3
        assert {cell.fault_type for cell in report.cells} == set(FaultType)

    def test_every_integrity_fault_is_detected(self, report):
        assert report.all_detected
        for cell in report.cells:
            if cell.fault_type.integrity_violating:
                assert cell.undetected == 0
                assert cell.detection_rate == 1.0

    def test_retry_recovery_and_degradation_demonstrated(self, report):
        assert report.retry_recovery_demonstrated
        assert report.degradation_demonstrated
        assert report.degradation["post_degradation_speculative_blocks"] == 0

    def test_forced_saturation_is_pad_reuse_free(self, report):
        assert report.pad_reuse_free
        assert report.overflow["overflows"] >= 1
        assert report.overflow["pages_reencrypted"] >= 1
        assert report.overflow["roundtrip_ok"]

    def test_delay_has_no_detection_rate(self, report):
        for cell in report.cells:
            if cell.fault_type is FaultType.DELAY:
                assert cell.detection_rate is None

    def test_report_is_machine_readable(self, report):
        data = json.loads(json.dumps(report.to_dict()))
        assert data["all_detected"] is True
        assert data["pad_reuse_free"] is True
        assert len(data["cells"]) == len(report.cells)

    def test_render_contains_verdict(self, report):
        text = report.render()
        assert "verdict:" in text
        assert "all_detected=True" in text


class TestDeterminism:
    def test_same_seed_same_report(self):
        def run():
            return FaultCampaign(
                fault_types=(FaultType.BIT_FLIP, FaultType.REPLAY),
                rates=(0.3,),
                operations=15,
                seed=5,
                working_set_lines=8,
            ).run()

        assert run().to_dict() == run().to_dict()


class TestValidation:
    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            FaultCampaign(fault_types=())
        with pytest.raises(ValueError):
            FaultCampaign(rates=())

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultCampaign(rates=(0.0,))
        with pytest.raises(ValueError):
            FaultCampaign(rates=(1.5,))

    def test_rejects_bad_operations(self):
        with pytest.raises(ValueError):
            FaultCampaign(operations=0)
