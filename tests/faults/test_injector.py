"""FaultInjector: every fault type lands as its typed error."""

import pytest

from repro.crypto.rng import HardwareRng
from repro.faults import FaultInjector, FaultType
from repro.secure.controller import SecureMemoryController
from repro.secure.errors import (
    FetchFailedError,
    ReplayDetectedError,
    TamperDetectedError,
)
from repro.secure.integrity import FlatMacStore, IntegrityTree
from repro.secure.otp import OtpGenerator
from repro.secure.seqnum import PageSecurityTable

LINES = [0x40000 + i * 32 for i in range(4)]


def pattern(line, version):
    return bytes((line + version * 7 + i) & 0xFF for i in range(32))


@pytest.fixture
def setup(key256):
    """Tree-protected functional controller, fail-fast (no recovery policy)."""
    controller = SecureMemoryController(
        page_table=PageSecurityTable(rng=HardwareRng(3)),
        key=key256,
        integrity=True,
    )
    injector = FaultInjector(controller, seed=42)
    clock = 0
    for line in LINES:
        clock = controller.writeback_line(clock, line, pattern(line, 0)).completion_time
    injector.snapshot()
    for line in LINES:
        clock = controller.writeback_line(clock, line, pattern(line, 1)).completion_time
    return controller, injector, clock


EXPECTED_ERROR = {
    FaultType.BIT_FLIP: TamperDetectedError,
    FaultType.COUNTER_CORRUPT: TamperDetectedError,
    FaultType.MAC_TAMPER: TamperDetectedError,
    FaultType.TREE_NODE_TAMPER: TamperDetectedError,
    FaultType.REPLAY: ReplayDetectedError,
    FaultType.DROP: FetchFailedError,
}


class TestTypedDetection:
    @pytest.mark.parametrize(
        "fault_type", list(EXPECTED_ERROR), ids=lambda ft: ft.value
    )
    def test_fault_raises_matching_error(self, setup, fault_type):
        controller, injector, clock = setup
        injector.inject(fault_type, LINES[0])
        with pytest.raises(EXPECTED_ERROR[fault_type]):
            controller.fetch_line(clock, LINES[0])

    def test_interior_tamper_reports_its_level(self, setup):
        controller, injector, clock = setup
        injector.inject_tree_node_tamper(LINES[0], level=1)
        with pytest.raises(TamperDetectedError) as exc:
            controller.fetch_line(clock, LINES[0])
        assert exc.value.level == 1

    def test_replay_reports_root_level(self, setup):
        controller, injector, clock = setup
        injector.inject_replay(LINES[0])
        with pytest.raises(ReplayDetectedError) as exc:
            controller.fetch_line(clock, LINES[0])
        assert exc.value.level == controller.integrity_tree.levels

    def test_delay_is_slow_but_sound(self, setup):
        controller, injector, clock = setup
        injector.inject_delay(LINES[0], cycles=100_000)
        result = controller.fetch_line(clock, LINES[0])
        assert result.plaintext == pattern(LINES[0], 1)
        assert result.exposed_latency >= 100_000


class TestFaultLifecycle:
    def test_bit_flip_is_transient(self, setup):
        controller, injector, clock = setup
        injector.inject_bit_flip(LINES[0])
        with pytest.raises(TamperDetectedError):
            controller.fetch_line(clock, LINES[0])
        # The stored bytes were never touched; a re-fetch sees clean data.
        result = controller.fetch_line(clock, LINES[0])
        assert result.plaintext == pattern(LINES[0], 1)

    def test_persistent_faults_are_repairable(self, setup):
        controller, injector, clock = setup
        injector.inject_counter_corruption(LINES[1])
        injector.inject_mac_tamper(LINES[2])
        assert injector.pending_repairs == 2
        assert injector.repair_all() == 2
        for line in LINES:
            assert controller.fetch_line(clock, line).plaintext == pattern(line, 1)

    def test_replay_is_repairable(self, setup):
        controller, injector, clock = setup
        injector.inject_replay(LINES[0])
        injector.repair_all()
        result = controller.fetch_line(clock, LINES[0])
        assert result.plaintext == pattern(LINES[0], 1)

    def test_replay_requires_snapshot(self, key256):
        controller = SecureMemoryController(
            page_table=PageSecurityTable(rng=HardwareRng(3)),
            key=key256,
            integrity=True,
        )
        injector = FaultInjector(controller, seed=42)
        with pytest.raises(ValueError):
            injector.inject_replay(LINES[0])

    def test_tree_faults_need_a_tree(self, key256):
        controller = SecureMemoryController(key=key256)   # no integrity tree
        injector = FaultInjector(controller, seed=42)
        with pytest.raises(ValueError):
            injector.inject_mac_tamper(LINES[0])

    def test_identical_seeds_replay_identical_faults(self, key256):
        details = []
        for _ in range(2):
            controller = SecureMemoryController(
                page_table=PageSecurityTable(rng=HardwareRng(3)),
                key=key256,
                integrity=True,
            )
            injector = FaultInjector(controller, seed=99)
            controller.writeback_line(0, LINES[0], pattern(LINES[0], 0))
            fault = injector.inject_bit_flip(LINES[0])
            details.append(fault.detail)
        assert details[0] == details[1]


class TestTaxonomy:
    def test_integrity_violating_set(self):
        violating = {ft for ft in FaultType if ft.integrity_violating}
        assert violating == {
            FaultType.BIT_FLIP,
            FaultType.COUNTER_CORRUPT,
            FaultType.MAC_TAMPER,
            FaultType.TREE_NODE_TAMPER,
            FaultType.REPLAY,
        }

    def test_transient_set(self):
        transient = {ft for ft in FaultType if ft.transient}
        assert transient == {FaultType.BIT_FLIP, FaultType.DROP, FaultType.DELAY}


class TestStaleTripleReplay:
    """The flat-MAC / tree distinction the paper's assumption rests on."""

    def test_stale_triple_fools_flat_mac_but_not_tree(self, key256):
        line = 0x40000
        flat = FlatMacStore(key256)
        tree = IntegrityTree(key256 + b"integrity")
        otp = OtpGenerator(key256, line_bytes=32)

        old_plain, new_plain = bytes(32), bytes(range(32))
        old_ct = otp.seal(line, 1, old_plain)
        flat.update(line, 1, old_ct)
        tree.update(line, 1, old_ct)
        stale_mac = flat.macs[line]
        stale_nodes = dict(tree.nodes)

        new_ct = otp.seal(line, 2, new_plain)
        flat.update(line, 2, new_ct)
        tree.update(line, 2, new_ct)

        # Adversary rolls back ciphertext + counter + MAC together.
        flat.macs[line] = stale_mac
        flat.verify(line, 1, old_ct)        # accepted: replay goes unseen

        tree.nodes.clear()
        tree.nodes.update(stale_nodes)      # same rollback, whole image
        with pytest.raises(ReplayDetectedError):
            tree.verify(line, 1, old_ct)    # on-chip root catches it
