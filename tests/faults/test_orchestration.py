"""Orchestration chaos: seeded injectors and the sweep soak."""

import pytest

from repro.faults.orchestration import (
    ChaosSpec,
    SweepChaos,
    render_soak_report,
    run_sweep_soak,
)
from repro.experiments.supervisor import SupervisorPolicy

KEY_A = "ab" * 32
KEY_B = "cd" * 32


class TestChaosSpec:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            ChaosSpec(kill_rate=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(kill_rate=-0.1)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            ChaosSpec(kill_rate=0.6, hang_rate=0.6)
        ChaosSpec(kill_rate=0.5, hang_rate=0.5)  # exactly 1 is fine


class TestSweepChaos:
    def test_decisions_are_deterministic(self):
        spec = ChaosSpec(kill_rate=0.4, corrupt_rate=0.4, seed=7)
        first = SweepChaos(spec)
        second = SweepChaos(spec)
        keys = [KEY_A, KEY_B]
        assert [first.action_for(k, 0) for k in keys] == [
            second.action_for(k, 0) for k in keys
        ]

    def test_decisions_vary_with_seed_and_key(self):
        keys = [f"{i:02x}" * 32 for i in range(64)]
        a = [SweepChaos(ChaosSpec(kill_rate=0.5, seed=1)).action_for(k, 0)
             for k in keys]
        b = [SweepChaos(ChaosSpec(kill_rate=0.5, seed=2)).action_for(k, 0)
             for k in keys]
        assert a != b

    def test_first_attempt_only_by_default(self):
        chaos = SweepChaos(ChaosSpec(kill_rate=1.0))
        assert chaos.action_for(KEY_A, 0) == ("kill", 0.0)
        assert chaos.action_for(KEY_A, 1) is None
        assert chaos.action_for(KEY_A, 2) is None

    def test_every_attempt_when_configured(self):
        chaos = SweepChaos(ChaosSpec(kill_rate=1.0, first_attempt_only=False))
        assert chaos.action_for(KEY_A, 0) == ("kill", 0.0)
        assert chaos.action_for(KEY_A, 3) == ("kill", 0.0)

    def test_planned_actions_are_recorded(self):
        chaos = SweepChaos(ChaosSpec(corrupt_rate=1.0))
        chaos.action_for(KEY_A, 0)
        chaos.action_for(KEY_B, 0)
        assert chaos.planned == [
            (KEY_A, 0, "corrupt"),
            (KEY_B, 0, "corrupt"),
        ]

    def test_hang_and_slow_carry_their_durations(self):
        hang = SweepChaos(ChaosSpec(hang_rate=1.0, hang_seconds=9.0))
        assert hang.action_for(KEY_A, 0) == ("hang", 9.0)
        slow = SweepChaos(ChaosSpec(slow_rate=1.0, slow_seconds=0.25))
        assert slow.action_for(KEY_A, 0) == ("slow", 0.25)


class TestSoak:
    def test_soak_recovers_to_serial_results(self, tmp_path):
        soak_cache = tmp_path / "soak-cache"
        report = run_sweep_soak(
            benchmarks=("gzip",),
            schemes=("oracle", "pred_regular"),
            references=900,
            jobs=2,
            chaos_spec=ChaosSpec(
                kill_rate=0.5, corrupt_rate=0.5, first_attempt_only=True
            ),
            policy=SupervisorPolicy(
                cell_timeout_seconds=30.0,
                max_retries=2,
                backoff_base_seconds=0.01,
                backoff_cap_seconds=0.05,
            ),
            corrupt_cells=1,
            cache_dir=str(soak_cache),
        )
        assert report["supervised_identical_to_serial"]
        assert report["resumed_identical_to_serial"]
        assert report["resume_recomputed_only_poisoned"]
        assert report["ok"]
        assert report["poisoned_entries"] >= 1
        rendered = render_soak_report(report)
        assert "verdict: OK" in rendered
        assert "supervised == serial: True" in rendered
        # An explicit cache_dir keeps the soak's evidence on disk: cached
        # results, the sweep manifests, and the quarantine tier with the
        # poisoned entries.
        assert (soak_cache / "results").is_dir()
        assert list(soak_cache.glob("manifest-*.jsonl"))
        assert (soak_cache / "quarantine").is_dir()
