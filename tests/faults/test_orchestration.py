"""Orchestration chaos: seeded injectors and the sweep soak."""

import pytest

from repro.faults.orchestration import (
    ChaosSpec,
    SweepChaos,
    render_soak_report,
    run_sweep_soak,
)
from repro.experiments.supervisor import SupervisorPolicy

KEY_A = "ab" * 32
KEY_B = "cd" * 32


class TestChaosSpec:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            ChaosSpec(kill_rate=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(kill_rate=-0.1)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            ChaosSpec(kill_rate=0.6, hang_rate=0.6)
        ChaosSpec(kill_rate=0.5, hang_rate=0.5)  # exactly 1 is fine


class TestSweepChaos:
    def test_decisions_are_deterministic(self):
        spec = ChaosSpec(kill_rate=0.4, corrupt_rate=0.4, seed=7)
        first = SweepChaos(spec)
        second = SweepChaos(spec)
        keys = [KEY_A, KEY_B]
        assert [first.action_for(k, 0) for k in keys] == [
            second.action_for(k, 0) for k in keys
        ]

    def test_decisions_vary_with_seed_and_key(self):
        keys = [f"{i:02x}" * 32 for i in range(64)]
        a = [SweepChaos(ChaosSpec(kill_rate=0.5, seed=1)).action_for(k, 0)
             for k in keys]
        b = [SweepChaos(ChaosSpec(kill_rate=0.5, seed=2)).action_for(k, 0)
             for k in keys]
        assert a != b

    def test_first_attempt_only_by_default(self):
        chaos = SweepChaos(ChaosSpec(kill_rate=1.0))
        assert chaos.action_for(KEY_A, 0) == ("kill", 0.0)
        assert chaos.action_for(KEY_A, 1) is None
        assert chaos.action_for(KEY_A, 2) is None

    def test_every_attempt_when_configured(self):
        chaos = SweepChaos(ChaosSpec(kill_rate=1.0, first_attempt_only=False))
        assert chaos.action_for(KEY_A, 0) == ("kill", 0.0)
        assert chaos.action_for(KEY_A, 3) == ("kill", 0.0)

    def test_planned_actions_are_recorded(self):
        chaos = SweepChaos(ChaosSpec(corrupt_rate=1.0))
        chaos.action_for(KEY_A, 0)
        chaos.action_for(KEY_B, 0)
        assert chaos.planned == [
            (KEY_A, 0, "corrupt"),
            (KEY_B, 0, "corrupt"),
        ]

    def test_hang_and_slow_carry_their_durations(self):
        hang = SweepChaos(ChaosSpec(hang_rate=1.0, hang_seconds=9.0))
        assert hang.action_for(KEY_A, 0) == ("hang", 9.0)
        slow = SweepChaos(ChaosSpec(slow_rate=1.0, slow_seconds=0.25))
        assert slow.action_for(KEY_A, 0) == ("slow", 0.25)


class TestSoak:
    def test_soak_recovers_to_serial_results(self, tmp_path):
        soak_cache = tmp_path / "soak-cache"
        report = run_sweep_soak(
            benchmarks=("gzip",),
            schemes=("oracle", "pred_regular"),
            references=900,
            jobs=2,
            chaos_spec=ChaosSpec(
                kill_rate=0.5, corrupt_rate=0.5, first_attempt_only=True
            ),
            policy=SupervisorPolicy(
                cell_timeout_seconds=30.0,
                max_retries=2,
                backoff_base_seconds=0.01,
                backoff_cap_seconds=0.05,
            ),
            corrupt_cells=1,
            cache_dir=str(soak_cache),
        )
        assert report["supervised_identical_to_serial"]
        assert report["resumed_identical_to_serial"]
        assert report["resume_recomputed_only_poisoned"]
        assert report["ok"]
        assert report["poisoned_entries"] >= 1
        rendered = render_soak_report(report)
        assert "verdict: OK" in rendered
        assert "supervised == serial: True" in rendered
        # An explicit cache_dir keeps the soak's evidence on disk: cached
        # results, the sweep manifests, and the quarantine tier with the
        # poisoned entries.
        assert (soak_cache / "results").is_dir()
        assert list(soak_cache.glob("manifest-*.jsonl"))
        assert (soak_cache / "quarantine").is_dir()


class TestFabricChaos:
    def test_rates_validated(self):
        from repro.faults.orchestration import FabricChaosSpec

        with pytest.raises(ValueError):
            FabricChaosSpec(kill_rate=1.5)
        with pytest.raises(ValueError):
            FabricChaosSpec(kill_rate=0.6, stall_rate=0.6)
        with pytest.raises(ValueError):
            FabricChaosSpec(clock_skew_seconds=-1.0)

    def test_decisions_are_deterministic_and_fire_once(self):
        from repro.faults.orchestration import FabricChaos, FabricChaosSpec

        spec = FabricChaosSpec(
            kill_rate=0.25, stall_rate=0.25, torn_rate=0.25, dup_rate=0.25
        )
        first = FabricChaos(spec)
        second = FabricChaos(spec)
        plans = [first.action_for("w1", key) for key in (KEY_A, KEY_B)]
        assert plans == [
            second.action_for("w1", key) for key in (KEY_A, KEY_B)
        ]
        assert any(plan is not None for plan in plans)
        # Replays of a sabotaged claim run clean: chaos fires at most
        # once per (owner, cell), or takeover loops would never converge.
        assert first.action_for("w1", KEY_A) is None
        assert first.action_for("w1", KEY_B) is None

    def test_immune_owner_gets_no_chaos(self):
        from repro.faults.orchestration import FabricChaos, FabricChaosSpec

        chaos = FabricChaos(
            FabricChaosSpec(
                kill_rate=1.0, clock_skew_seconds=5.0, immune_owners=("c0",)
            )
        )
        assert chaos.action_for("c0", KEY_A) is None
        assert chaos.clock_skew_for("c0") == 0.0
        assert chaos.action_for("c1", KEY_A) == ("kill", 0.0)

    def test_clock_skew_is_seeded_and_bounded(self):
        from repro.faults.orchestration import FabricChaos, FabricChaosSpec

        spec = FabricChaosSpec(clock_skew_seconds=3.0)
        skew = FabricChaos(spec).clock_skew_for("w7")
        assert FabricChaos(spec).clock_skew_for("w7") == skew
        assert -3.0 <= skew <= 3.0
        assert FabricChaos(spec).clock_skew_for("w8") != skew


class TestFabricSoak:
    def test_fabric_soak_converges_to_serial(self, tmp_path):
        from repro.faults.orchestration import (
            render_fabric_soak_report,
            run_fabric_soak,
        )

        soak_cache = tmp_path / "fabric-cache"
        report = run_fabric_soak(
            benchmarks=("gzip",),
            schemes=("oracle", "pred_regular"),
            references=900,
            ttl_seconds=1.5,
            cache_dir=str(soak_cache),
        )
        assert report["duo"]["identical_to_serial"]
        assert report["chaos_drain"]["identical_to_serial"]
        assert report["chaos_drain"]["unique_store_tokens"]
        assert report["takeover"]["identical_to_serial"]
        assert report["takeover"]["takeovers"] >= 1
        assert report["takeover"]["kill_exit_seen"]
        assert report["ok"]
        rendered = render_fabric_soak_report(report)
        assert "verdict: OK" in rendered
        assert "takeover drain == serial: True" in rendered
        # Phase caches (leases, manifests, journals) are kept as evidence.
        for phase in ("serial", "duo", "chaos", "takeover"):
            assert (soak_cache / phase).is_dir()
        assert list((soak_cache / "chaos" / "leases").glob("*/stores.jsonl"))
