"""End-to-end assertions of the paper's headline claims (small scale)."""

import pytest

from repro.experiments.runner import run_benchmark
from repro.experiments.report import series_average
from repro.workloads.spec import SPEC_BENCHMARKS

REFS = 6000
SUBSET = ("swim", "twolf", "mcf", "applu", "gzip")  # FP + pointer + mild mix

_ALL_SCHEMES = [
    "oracle",
    "baseline",
    "seqcache_128k",
    "seqcache_512k",
    "pred_regular",
    "pred_two_level",
    "pred_context",
]


@pytest.fixture(scope="module")
def results():
    return {
        benchmark: run_benchmark(benchmark, _ALL_SCHEMES, references=REFS)
        for benchmark in SUBSET
    }


class TestPredictionBeatsCaching:
    def test_prediction_rate_above_cache_hit_rate_on_average(self, results):
        pred = series_average(
            {b: r["pred_regular"].prediction_rate for b, r in results.items()}
        )
        cache_128 = series_average(
            {b: r["seqcache_128k"].seqcache_hit_rate for b, r in results.items()}
        )
        cache_512 = series_average(
            {b: r["seqcache_512k"].seqcache_hit_rate for b, r in results.items()}
        )
        assert pred > cache_512 > cache_128 * 0.99  # 512K >= 128K, pred above both

    def test_prediction_ipc_beats_128k_cache_everywhere(self, results):
        for benchmark, metrics in results.items():
            oracle = metrics["oracle"]
            assert metrics["pred_regular"].normalized_ipc(oracle) > metrics[
                "seqcache_128k"
            ].normalized_ipc(oracle), benchmark


class TestOptimizationOrdering:
    def test_two_level_improves_on_regular(self, results):
        for benchmark, metrics in results.items():
            assert (
                metrics["pred_two_level"].prediction_rate
                >= metrics["pred_regular"].prediction_rate
            ), benchmark

    def test_context_beats_two_level_on_average(self, results):
        context = series_average(
            {b: r["pred_context"].prediction_rate for b, r in results.items()}
        )
        two_level = series_average(
            {b: r["pred_two_level"].prediction_rate for b, r in results.items()}
        )
        assert context > two_level

    def test_context_approaches_oracle_ipc(self, results):
        for benchmark, metrics in results.items():
            norm = metrics["pred_context"].normalized_ipc(metrics["oracle"])
            assert norm > 0.85, benchmark


class TestIpcHierarchy:
    def test_every_scheme_bounded_by_oracle(self, results):
        for benchmark, metrics in results.items():
            oracle = metrics["oracle"]
            for scheme, run in metrics.items():
                assert run.normalized_ipc(oracle) <= 1.0 + 1e-9, (benchmark, scheme)

    def test_baseline_is_worst(self, results):
        for benchmark, metrics in results.items():
            oracle = metrics["oracle"]
            baseline = metrics["baseline"].normalized_ipc(oracle)
            for scheme in ("pred_regular", "pred_two_level", "pred_context"):
                assert metrics[scheme].normalized_ipc(oracle) > baseline, (
                    benchmark,
                    scheme,
                )

    def test_memory_bound_baseline_in_paper_band(self, results):
        # Section 6.2: without prediction, memory-bound programs reach only
        # 60%-85% of the oracle's IPC.
        for benchmark in ("swim", "mcf", "twolf"):
            norm = results[benchmark]["baseline"].normalized_ipc(
                results[benchmark]["oracle"]
            )
            assert 0.5 < norm < 0.9, benchmark


class TestNoExtraMemoryTraffic:
    def test_prediction_adds_no_fetches(self, results):
        # OTP prediction speculates only in the crypto engine — the miss
        # stream (and so bus traffic) is identical to the baseline's
        # (Section 9.2's contrast with pre-decryption).
        for benchmark, metrics in results.items():
            assert metrics["pred_regular"].fetches == metrics["baseline"].fetches
            assert metrics["pred_regular"].writebacks == metrics["baseline"].writebacks

    def test_speculation_visible_in_engine_stats(self, results):
        for benchmark, metrics in results.items():
            assert metrics["pred_regular"].engine_speculative_blocks > 0
            assert metrics["baseline"].engine_speculative_blocks == 0


class TestFullSuiteSmoke:
    def test_all_fourteen_benchmarks_run(self):
        for benchmark in SPEC_BENCHMARKS:
            metrics = run_benchmark(benchmark, ["pred_regular"], references=1500)
            assert metrics["pred_regular"].fetches > 0, benchmark
