"""Section 3.2's claim, end to end: adaptive prediction recovers on
frequently-updated data via root resets and write-back rebasing."""

from repro.crypto.rng import HardwareRng
from repro.secure.controller import SecureMemoryController
from repro.secure.predictors import RegularOtpPredictor
from repro.secure.seqnum import PageSecurityTable

LINES = 256
BASE = 0x10_0000


def run_update_loop(adaptive, laps, start_distance=40):
    """A hot structure rewritten every lap, starting far out of depth."""
    table = PageSecurityTable(rng=HardwareRng(3))
    controller = SecureMemoryController(
        page_table=table,
        predictor=RegularOtpPredictor(table, depth=5, adaptive=adaptive),
    )
    # Fast-forward state: every line already updated many times.
    for i in range(LINES):
        line = BASE + i * 32
        page = controller.address_map.page_number(line)
        root = table.state(page).mapping_root
        controller.backing.write_seqnum(line, root + start_distance)

    now = 0
    lap_rates = []
    for _ in range(laps):
        hits_before = controller.predictor.stats.hits
        lookups_before = controller.predictor.stats.lookups
        for i in range(LINES):
            controller.fetch_line(now, BASE + i * 32)
            now += 100
        # Dirty evictions happen an L2-capacity-distance after the fetch:
        # the whole structure is written back after the lap's fetches, so
        # every line rebases onto the then-current root together.
        for i in range(LINES):
            controller.writeback_line(now, BASE + i * 32)
            now += 10
        lap_hits = controller.predictor.stats.hits - hits_before
        lap_lookups = controller.predictor.stats.lookups - lookups_before
        lap_rates.append(lap_hits / lap_lookups)
    return lap_rates, controller


class TestAdaptiveRecovery:
    def test_static_prediction_never_recovers(self):
        rates, controller = run_update_loop(adaptive=False, laps=10)
        assert all(rate == 0.0 for rate in rates)
        assert controller.page_table.total_resets == 0

    def test_adaptive_prediction_recovers_after_reset(self):
        rates, controller = run_update_loop(adaptive=True, laps=10)
        # Cold start: everything misses (distance 40 >> depth 5)...
        assert rates[0] < 0.2
        # ...the PHV saturates, roots reset, write-backs rebase, and the
        # structure becomes predictable again.
        assert controller.page_table.total_resets >= 1
        assert max(rates[2:]) > 0.9
        # Steady state: predictable for ~depth laps out of each cycle.
        assert sum(rates[2:]) / len(rates[2:]) > 0.5

    def test_recovered_rate_follows_depth_cycle(self):
        # After a rebase, distances climb one per lap; regular prediction
        # holds for about depth+1 laps before the next reset cycle.
        rates, _ = run_update_loop(adaptive=True, laps=16)
        good_laps = sum(rate > 0.9 for rate in rates)
        assert good_laps >= 6
