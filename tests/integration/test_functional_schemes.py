"""Functional end-to-end runs for the non-default controllers."""

from repro.cpu.system import SecureSystem
from repro.cpu.trace import MemoryAccess
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.secure.direct import DirectEncryptionController
from repro.secure.predecrypt import PredecryptingController
from repro.secure.predictors import ContextOtpPredictor
from repro.secure.seqnum import PageSecurityTable

KEY = bytes(range(32))


def tiny_hierarchy():
    return MemoryHierarchy(
        HierarchyConfig(
            l1i_size=512, l1d_size=512, l1_associativity=1,
            l2_size=4 * 1024, l2_associativity=4,
        )
    )


def churn(system, rounds=2, lines=384):
    """Write-heavy churn over a footprint 3x the L2."""
    for _ in range(rounds):
        for i in range(lines):
            system.access(MemoryAccess(i * 32, is_write=(i % 3 == 0)))
    system.flush()


class TestDirectEncryptionFunctional:
    def test_shadow_image_consistency(self):
        system = SecureSystem(
            controller=DirectEncryptionController(key=KEY),
            hierarchy=tiny_hierarchy(),
        )
        churn(system)  # raises FunctionalMismatchError on any crypto slip
        assert system.controller.stats.fetches > 400


class TestPredecryptFunctional:
    def test_shadow_image_consistency_with_prefetching(self):
        table = PageSecurityTable()
        system = SecureSystem(
            controller=PredecryptingController(
                page_table=table,
                predictor=ContextOtpPredictor(table),
                key=KEY,
                prefetch_depth=2,
            ),
            hierarchy=tiny_hierarchy(),
        )
        churn(system)
        stats = system.controller.predecrypt_stats
        assert stats.prefetches_issued > 0
        assert system.controller.auditor.clean
