"""Property-based integration tests: the security and consistency
invariants must hold under arbitrary access patterns."""

from hypothesis import given, settings, strategies as st

from repro.cpu.system import SecureSystem
from repro.cpu.trace import MemoryAccess
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.secure.controller import SecureMemoryController
from repro.secure.predictors import ContextOtpPredictor, RegularOtpPredictor
from repro.secure.seqnum import PageSecurityTable

KEY = bytes(range(32))

# Accesses confined to a small region so tiny caches see heavy reuse
# *and* eviction churn.
access_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),  # line index (8KB region)
        st.booleans(),
    ),
    min_size=1,
    max_size=300,
)


def tiny_system(key=None, predictor_factory=None):
    table = PageSecurityTable()
    predictor = predictor_factory(table) if predictor_factory else None
    controller = SecureMemoryController(
        page_table=table, predictor=predictor, key=key, integrity=bool(key)
    )
    hierarchy = MemoryHierarchy(
        HierarchyConfig(
            l1i_size=256, l1d_size=256, l1_associativity=1,
            l2_size=2048, l2_associativity=2,
        )
    )
    return SecureSystem(controller=controller, hierarchy=hierarchy)


class TestFunctionalConsistency:
    @given(ops=access_strategy)
    @settings(max_examples=15, deadline=None)
    def test_decryption_always_matches_image(self, ops):
        # SecureSystem.access raises FunctionalMismatchError internally if
        # any fetched line decrypts to the wrong bytes; IntegrityError if
        # the MAC tree disagrees.  Surviving the whole run IS the property.
        system = tiny_system(key=KEY)
        for line_index, is_write in ops:
            system.access(MemoryAccess(line_index * 32, is_write=is_write))
        system.flush()

    @given(ops=access_strategy)
    @settings(max_examples=15, deadline=None)
    def test_no_pad_is_ever_reused(self, ops):
        system = tiny_system(
            key=KEY, predictor_factory=lambda t: RegularOtpPredictor(t, depth=5)
        )
        for line_index, is_write in ops:
            system.access(MemoryAccess(line_index * 32, is_write=is_write))
        system.flush()
        assert system.controller.auditor.clean

    @given(ops=access_strategy)
    @settings(max_examples=10, deadline=None)
    def test_prediction_never_changes_decrypted_data(self, ops):
        # A predicted pad is only used after the true sequence number
        # matched, so predicted and unpredicted systems must read back the
        # same plaintexts (here: both must match their shadow images).
        plain = tiny_system(key=KEY)
        predicted = tiny_system(
            key=KEY, predictor_factory=lambda t: ContextOtpPredictor(t)
        )
        for line_index, is_write in ops:
            access = MemoryAccess(line_index * 32, is_write=is_write)
            plain.access(access)
            predicted.access(access)


class TestTimingSanity:
    @given(ops=access_strategy)
    @settings(max_examples=10, deadline=None)
    def test_cycles_monotonically_increase(self, ops):
        system = tiny_system()
        previous = system.cycle
        for line_index, is_write in ops:
            system.access(MemoryAccess(line_index * 32, is_write=is_write))
            assert system.cycle >= previous
            previous = system.cycle

    @given(ops=access_strategy)
    @settings(max_examples=10, deadline=None)
    def test_fetch_results_are_causal(self, ops):
        system = tiny_system()
        for line_index, is_write in ops:
            system.access(MemoryAccess(line_index * 32, is_write=is_write))
        stats = system.controller.stats
        assert stats.total_exposed_latency >= 0
        assert stats.total_decryption_overhead >= 0


class TestCounterInvariants:
    @given(ops=access_strategy)
    @settings(max_examples=15, deadline=None)
    def test_stored_counters_stay_fresh(self, ops):
        # Every write-back must strictly advance the line's counter or
        # rebase it onto a brand-new random root: replaying the run, the
        # (line, counter) pairs used for sealing never repeat.
        system = tiny_system(key=KEY)
        seen = set()
        controller = system.controller
        original = controller.writeback_line

        def spy(now, address, plaintext=None):
            result = original(now, address, plaintext)
            pair = (result.address, result.seqnum)
            assert pair not in seen
            seen.add(pair)
            return result

        controller.writeback_line = spy
        for line_index, is_write in ops:
            system.access(MemoryAccess(line_index * 32, is_write=is_write))
        system.flush()
