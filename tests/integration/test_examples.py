"""The examples must stay runnable (documentation that executes)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "prediction rate" in result.stdout
        assert "ciphertext only" in result.stdout

    def test_sealed_storage(self):
        result = run_example("sealed_storage.py")
        assert result.returncode == 0, result.stderr
        assert result.stdout.count("detected:") == 2  # both attacks caught
        assert "pad reuses: 0" in result.stdout

    def test_attack_simulation(self):
        result = run_example("attack_simulation.py")
        assert result.returncode == 0, result.stderr
        assert "reuses" in result.stdout
        assert "useless without the 256-bit key" in result.stdout

    def test_spec_campaign_small(self):
        result = run_example("spec_campaign.py", "2500")
        assert result.returncode == 0, result.stderr
        assert "normalized IPC" in result.stdout
        assert "prediction recovers +" in result.stdout

    def test_custom_workload(self):
        result = run_example("custom_workload.py")
        assert result.returncode == 0, result.stderr
        assert "L2 misses" in result.stdout
        assert "pred_context" in result.stdout
