"""Every registered scheme must run end-to-end on every benchmark class."""

import pytest

from repro.experiments.runner import SCHEMES, SchemeSpec, make_controller, run_scheme
from repro.secure.direct import DirectEncryptionController
from repro.secure.predecrypt import PredecryptingController

REFS = 1500


class TestEverySchemeRuns:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_scheme_on_pointer_code(self, scheme):
        metrics = run_scheme("twolf", scheme, references=REFS)
        assert metrics.cycles > 0
        assert metrics.fetches > 0

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_scheme_on_fp_code(self, scheme):
        metrics = run_scheme("swim", scheme, references=REFS)
        assert metrics.cycles > 0


class TestSchemeWiring:
    def test_direct_scheme_uses_direct_controller(self):
        controller = make_controller(SCHEMES["direct_encryption"])
        assert isinstance(controller, DirectEncryptionController)

    def test_predecrypt_scheme_uses_predecrypt_controller(self):
        controller = make_controller(SCHEMES["predecrypt"])
        assert isinstance(controller, PredecryptingController)

    def test_hybrid_has_predictor_and_prefetcher(self):
        controller = make_controller(SCHEMES["hybrid_predecrypt"])
        assert isinstance(controller, PredecryptingController)
        assert controller.predictor.name == "regular"

    def test_direct_plus_predecrypt_rejected(self):
        with pytest.raises(ValueError, match="cannot be combined"):
            make_controller(SchemeSpec("bad", direct=True, predecrypt=True))


class TestCrossSchemeInvariants:
    def test_oracle_dominates_all_schemes(self):
        oracle = run_scheme("vpr", "oracle", references=REFS)
        for scheme in sorted(SCHEMES):
            if scheme == "oracle":
                continue
            metrics = run_scheme("vpr", scheme, references=REFS)
            assert metrics.cycles >= oracle.cycles * 0.999, scheme

    def test_direct_encryption_is_the_floor(self):
        direct = run_scheme("mcf", "direct_encryption", references=REFS)
        for scheme in ("baseline", "seqcache_128k", "pred_regular", "pred_context"):
            metrics = run_scheme("mcf", scheme, references=REFS)
            assert metrics.cycles <= direct.cycles, scheme

    def test_combined_scheme_at_least_as_good_as_parts(self):
        combined = run_scheme("twolf", "pred_plus_cache_32k", references=REFS)
        pred_only = run_scheme("twolf", "pred_regular", references=REFS)
        cache_only = run_scheme("twolf", "seqcache_32k", references=REFS)
        assert combined.cycles <= min(pred_only.cycles, cache_only.cycles) * 1.001
