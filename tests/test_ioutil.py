"""Atomic artifact writes."""

import json

from repro.ioutil import atomic_write_bytes, atomic_write_json, atomic_write_text


class TestAtomicWrites:
    def test_bytes_round_trip_and_no_temp_residue(self, tmp_path):
        target = tmp_path / "artifact.bin"
        atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"
        assert list(tmp_path.iterdir()) == [target]

    def test_overwrites_previous_content(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "nested" / "deep" / "artifact.txt"
        atomic_write_text(target, "content")
        assert target.read_text() == "content"

    def test_json_is_parseable_with_trailing_newline(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_json(target, {"b": 2, "a": 1}, indent=2, sort_keys=True)
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 1, "b": 2}

    def test_failed_serialization_leaves_no_file(self, tmp_path):
        target = tmp_path / "artifact.json"
        try:
            atomic_write_json(target, {"bad": object()})
        except TypeError:
            pass
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []
