"""The CI smoke entry point, at test-suite scale (tiny reference count)."""

from repro.service.smoke import run_service_smoke


def test_service_smoke_passes_at_tiny_scale():
    report = run_service_smoke(references=800)
    assert report["ok"] is True
    assert report["cold_identical"] is True
    assert report["warm_identical"] is True
    assert report["progress_samples"] >= 1
    assert report["manifest_done_events"] == report["grid_cells"]
    assert report["warm_cache_hits"] == report["grid_cells"]
