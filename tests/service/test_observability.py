"""The observability plane end to end: probes, metrics, traces, top.

The acceptance test for the fleet observability PR: a job submitted
through the HTTP service and executed by the lease fabric (in-process
worker 0 plus forked drain peers) must yield a valid fleet trace whose
spans come from at least three distinct OS processes, and ``/metrics``
must stay lintable with monotone counters across scrapes.
"""

import json
import time

import pytest

from repro.cli import main
from repro.experiments.cache import default_cache
from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import JobStore
from repro.service.scheduler import SchedulerPolicy, ServiceScheduler
from repro.service.server import serve_in_thread
from repro.telemetry.events import validate_chrome_trace
from repro.telemetry.prometheus import check_monotone_counters, lint_exposition
from repro.telemetry.top import fleet_snapshot, render_top, watch

_REFS = 800
_BENCHMARKS = ["stream"]
_SCHEMES = ["baseline", "pred_regular"]


@pytest.fixture
def fabric_service(tmp_path):
    """A service whose jobs drain through a 3-wide fabric swarm."""
    handle = serve_in_thread(
        ServiceScheduler(
            store=JobStore(tmp_path / "service"),
            policy=SchedulerPolicy(
                sample_interval_seconds=0.02,
                poll_interval_seconds=0.01,
                executor="fabric",
                fabric_workers=3,
            ),
        )
    )
    try:
        yield ServiceClient(handle.url), handle
    finally:
        handle.stop()


@pytest.fixture
def service(tmp_path):
    handle = serve_in_thread(
        ServiceScheduler(
            store=JobStore(tmp_path / "service"),
            policy=SchedulerPolicy(
                sample_interval_seconds=0.02, poll_interval_seconds=0.01
            ),
        )
    )
    try:
        yield ServiceClient(handle.url), handle
    finally:
        handle.stop()


def _wait_ready(client, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            return client.ready()
        except ServiceError:
            time.sleep(0.05)
    raise AssertionError("service never became ready")


class TestProbes:
    def test_healthz_answers(self, service):
        client, _ = service
        assert client.health() == {"ok": True}

    def test_readyz_reports_checks(self, service):
        client, _ = service
        verdict = _wait_ready(client)
        assert verdict["ready"] is True
        assert verdict["checks"]["store_writable"]["ok"] is True
        assert verdict["checks"]["scheduler_loop"]["ok"] is True

    def test_readyz_is_503_when_loop_dead(self, service, monkeypatch):
        client, handle = service
        # Writing a stale last_tick races the live admission loop (it
        # re-stamps every poll); pin the derived age instead.
        monkeypatch.setattr(
            handle.server.scheduler, "heartbeat_age", lambda: 3600.0
        )
        with pytest.raises(ServiceError) as excinfo:
            client.ready()
        assert excinfo.value.status == 503
        assert excinfo.value.payload["ready"] is False
        assert excinfo.value.payload["checks"]["scheduler_loop"]["ok"] is False


class TestMetricsEndpoint:
    def test_exposition_lints_and_counters_are_monotone(self, service):
        client, _ = service
        cold = client.metrics()
        assert lint_exposition(cold) == []

        receipt = client.submit(
            "acme", _BENCHMARKS, ["baseline"], references=_REFS, seed=1
        )
        assert client.wait(receipt["job_id"])["state"] == "done"

        warm = client.metrics()
        assert lint_exposition(warm) == []
        assert check_monotone_counters(cold, warm) == []
        assert "repro_service_jobs_admitted_total 1" in warm
        assert "repro_service_http_requests_total" in warm
        assert 'tenant="acme"' in warm

    def test_latency_histograms_exported_per_stage(self, service):
        client, _ = service
        receipt = client.submit(
            "acme", _BENCHMARKS, ["baseline"], references=_REFS, seed=1
        )
        assert client.wait(receipt["job_id"])["state"] == "done"
        text = client.metrics()
        for stage in (
            "submit_to_schedule_sec",
            "schedule_to_first_cell_sec",
            "first_cell_to_result_sec",
            "submit_to_result_sec",
        ):
            assert f"repro_service_latency_{stage}_count 1" in text

    def test_handler_failures_are_counted(self, service, monkeypatch):
        client, handle = service
        registry = handle.server.scheduler.registry
        before = registry.counter("service.http.errors").value

        def boom(tenant):
            raise RuntimeError("kaboom")

        # The fault barrier must absorb the handler crash, answer a
        # structured 500, and count the invisible failure.
        monkeypatch.setattr(handle.server.scheduler, "usage", boom)
        with pytest.raises(ServiceError) as excinfo:
            client.usage("acme")
        assert excinfo.value.status == 500
        assert registry.counter("service.http.errors").value == before + 1


class TestFleetTraceAcceptance:
    def test_fabric_job_trace_spans_three_processes(self, fabric_service):
        client, handle = fabric_service
        receipt = client.submit(
            "acme", _BENCHMARKS, _SCHEMES, references=_REFS, seed=1
        )
        job_id = receipt["job_id"]
        assert receipt["trace"]["job_id"] == job_id
        assert client.wait(job_id, timeout=120.0)["state"] == "done"

        payload = client.trace(job_id)
        assert validate_chrome_trace(payload) == []

        lanes = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event.get("ph") == "M" and event["name"] == "process_name"
        }
        assert len(lanes) >= 3
        assert {"server", "scheduler"} <= lanes

        # Records written by >= 3 distinct OS processes, all correlated
        # by the job's trace context (journal spans + beacon pids).
        store = handle.server.scheduler.store
        record = store.job(job_id)
        pids = {
            event["pid"]
            for event in record.events
            if event.get("event") == "span" and isinstance(event.get("pid"), int)
        }
        workers_dir = (
            default_cache().root / "leases" / record.spec.sweep_key / "workers"
        )
        for path in workers_dir.glob("*.json"):
            beacon = json.loads(path.read_text())
            if isinstance(beacon.get("pid"), int):
                pids.add(beacon["pid"])
        assert len(pids) >= 3

        names = {
            event["name"]
            for event in payload["traceEvents"]
            if event.get("ph") in ("i", "X")
        }
        assert {"submitted", "admitted", "scheduled", "result_stored"} <= names

    def test_trace_of_unknown_job_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.trace("job-nope")
        assert excinfo.value.status == 404


class TestTopAndWatch:
    def test_fleet_snapshot_folds_jobs(self, service):
        client, handle = service
        receipt = client.submit(
            "acme", _BENCHMARKS, ["baseline"], references=_REFS, seed=1
        )
        assert client.wait(receipt["job_id"])["state"] == "done"
        snapshot = fleet_snapshot(store=handle.server.scheduler.store)
        assert len(snapshot["jobs"]) == 1
        job = snapshot["jobs"][0]
        assert job["job_id"] == receipt["job_id"]
        assert job["state"] == "done"
        assert job["cells_done"] == 1
        assert job["cells_total"] == 1
        assert job["age"] is not None
        assert "acme" in snapshot["tenants"]
        screen = render_top(snapshot)
        assert receipt["job_id"] in screen
        assert "acme" in screen

    def test_watch_once_writes_single_screen(self, tmp_path, capsys):
        import io

        stream = io.StringIO()
        watch(store=JobStore(tmp_path / "empty"), once=True, stream=stream)
        assert "(no jobs)" in stream.getvalue()

    def test_cli_top_once(self, capsys):
        assert main(["top", "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro fleet" in out

    def test_cli_jobs_shows_age_columns(self, service, capsys, monkeypatch):
        client, handle = service
        receipt = client.submit(
            "acme", _BENCHMARKS, ["baseline"], references=_REFS, seed=1
        )
        assert client.wait(receipt["job_id"])["state"] == "done"
        assert main(["jobs", "--url", handle.url]) == 0
        out = capsys.readouterr().out
        assert receipt["job_id"] in out
        assert "age" in out
        assert "ev" in out

    def test_cli_trace_job_writes_fleet_trace(
        self, service, tmp_path, capsys, monkeypatch
    ):
        client, handle = service
        receipt = client.submit(
            "acme", _BENCHMARKS, ["baseline"], references=_REFS, seed=1
        )
        assert client.wait(receipt["job_id"])["state"] == "done"
        # The CLI folds from the default JobStore; point it at this one.
        monkeypatch.setattr(
            "repro.service.queue.JobStore",
            lambda root=None: handle.server.scheduler.store,
        )
        out_path = tmp_path / "fleet.json"
        assert main(["trace", "--job", receipt["job_id"],
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["job_id"] == receipt["job_id"]

    def test_cli_trace_without_benchmark_or_job_errors(self, capsys):
        assert main(["trace"]) == 2
        assert "required" in capsys.readouterr().err
