"""Scheduler: quotas, dedup accounting, cancellation, crash recovery.

Grids here are tiny (one benchmark, 800 references) so each test runs in
seconds; the scheduler loop is driven with ``asyncio.run`` directly —
the suite has no async plugin and does not need one.
"""

import asyncio

import pytest

from repro.experiments.cache import default_cache
from repro.service.queue import JobSpec, JobStore
from repro.service.scheduler import (
    QuotaExceeded,
    SchedulerPolicy,
    ServiceScheduler,
    TenantQuota,
)

_REFS = 800


def _spec(tenant="acme", schemes=("baseline",), **overrides):
    base = dict(
        tenant=tenant,
        benchmarks=("stream",),
        schemes=tuple(schemes),
        references=_REFS,
    )
    base.update(overrides)
    return JobSpec(**base)


def _scheduler(tmp_path, **policy_overrides):
    policy = SchedulerPolicy(
        sample_interval_seconds=0.02,
        poll_interval_seconds=0.01,
        **policy_overrides,
    )
    return ServiceScheduler(store=JobStore(tmp_path / "service"), policy=policy)


def _run_until_terminal(scheduler, job_ids, timeout=120.0):
    """Drive the scheduler loop until every job id is terminal."""

    async def _driver():
        loop_task = asyncio.ensure_future(scheduler.run())
        deadline = asyncio.get_running_loop().time() + timeout
        try:
            while True:
                records = [scheduler.store.job(job_id) for job_id in job_ids]
                if all(record.terminal for record in records):
                    return records
                if asyncio.get_running_loop().time() > deadline:
                    raise TimeoutError(f"jobs still running: {records}")
                await asyncio.sleep(0.02)
        finally:
            scheduler.request_stop()
            await loop_task

    return asyncio.run(_driver())


class TestQuotas:
    def test_cells_per_job_ceiling(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        scheduler.quotas["acme"] = TenantQuota(max_cells_per_job=1)
        with pytest.raises(QuotaExceeded) as excinfo:
            scheduler.submit(_spec(schemes=("baseline", "oracle")))
        assert excinfo.value.status == 429
        payload = excinfo.value.to_dict()["error"]
        assert payload["type"] == "quota_exceeded"
        assert payload["limit"] == 1

    def test_inflight_ceiling_counts_queued_jobs(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        scheduler.quotas["acme"] = TenantQuota(max_inflight_jobs=1)
        scheduler.submit(_spec())
        with pytest.raises(QuotaExceeded, match="inflight"):
            scheduler.submit(_spec(schemes=("oracle",)))

    def test_denials_are_per_tenant_and_counted(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        scheduler.quotas["acme"] = TenantQuota(max_cells_per_job=1)
        with pytest.raises(QuotaExceeded):
            scheduler.submit(_spec(schemes=("baseline", "oracle")))
        assert scheduler.usage("acme")["denied"] == 1
        assert scheduler.usage("other")["denied"] == 0


class TestExecutionAndAccounting:
    def test_job_runs_to_done_with_accounting(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        receipt = scheduler.submit(_spec())
        assert receipt["cached_keys"] == []
        (record,) = _run_until_terminal(scheduler, [receipt["job_id"]])
        assert record.state == "done"
        assert record.detail["cells_total"] == 1
        assert record.detail["cache_hits"] == 0
        assert record.detail["cells_computed"] == 1
        assert scheduler.store.result_path(record.job_id).exists()

    def test_two_tenants_overlapping_grids_dedup_on_cache_keys(self, tmp_path):
        """The satellite contract: overlapping grids from different
        tenants land on identical cache keys; whoever runs second gets
        hits for the overlap, and each tenant's hits + computed sums to
        its grid size."""
        scheduler = _scheduler(tmp_path, max_concurrent_jobs=1)
        alice_spec = _spec(tenant="alice", schemes=("baseline", "oracle"))
        bob_spec = _spec(tenant="bob", schemes=("baseline", "pred_regular"))
        overlap = set(key for _, _, key in alice_spec.cells()) & set(
            key for _, _, key in bob_spec.cells()
        )
        assert len(overlap) == 1  # stream/baseline is shared

        alice = scheduler.submit(alice_spec)
        bob = scheduler.submit(bob_spec)
        # max_concurrent_jobs=1 makes ordering deterministic: alice (FIFO
        # first) computes both her cells, bob then hits the shared one.
        records = _run_until_terminal(
            scheduler, [alice["job_id"], bob["job_id"]]
        )
        by_tenant = {record.spec.tenant: record for record in records}

        assert by_tenant["alice"].detail["cache_hits"] == 0
        assert by_tenant["alice"].detail["cells_computed"] == 2
        assert by_tenant["bob"].detail["cache_hits"] == 1
        assert by_tenant["bob"].detail["cells_computed"] == 1
        for record in records:
            detail = record.detail
            assert (
                detail["cache_hits"] + detail["cells_computed"]
                == detail["cells_total"]
                == 2
            )

        alice_usage = scheduler.usage("alice")
        bob_usage = scheduler.usage("bob")
        assert alice_usage["cache_hit_ratio"] == 0.0
        assert bob_usage["cache_hit_ratio"] == 0.5
        # Work is conserved under dedup: total computed across tenants is
        # the number of *distinct* keys, not the sum of grid sizes.
        distinct = set(key for _, _, key in alice_spec.cells()) | set(
            key for _, _, key in bob_spec.cells()
        )
        assert (
            alice_usage["cells_computed"] + bob_usage["cells_computed"]
            == len(distinct)
        )

    def test_warm_resubmission_is_all_hits_with_identical_result(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        first = scheduler.submit(_spec(tenant="alice"))
        (done,) = _run_until_terminal(scheduler, [first["job_id"]])
        cold_bytes = scheduler.store.result_path(done.job_id).read_bytes()

        second = scheduler.submit(_spec(tenant="bob"))
        assert len(second["cached_keys"]) == 1  # dedup visible at submit time
        (warm,) = _run_until_terminal(scheduler, [second["job_id"]])
        assert warm.detail["cache_hits"] == 1
        assert warm.detail["cells_computed"] == 0
        warm_bytes = scheduler.store.result_path(warm.job_id).read_bytes()
        assert warm_bytes == cold_bytes

    def test_progress_samples_journalled_even_for_fast_jobs(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        receipt = scheduler.submit(_spec())
        (record,) = _run_until_terminal(scheduler, [receipt["job_id"]])
        samples = [e for e in record.events if e.get("event") == "sample"]
        assert samples, "at least one progress sample must be journalled"
        snapshot = samples[-1]["snapshot"]
        assert snapshot["metrics"]["service.job.cells_total"] == 1


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        receipt = scheduler.submit(_spec())
        record = scheduler.cancel(receipt["job_id"])
        assert record.state == "cancelled"
        assert not scheduler.store.result_path(receipt["job_id"]).exists()

    def test_cancel_is_idempotent_on_terminal_jobs(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        receipt = scheduler.submit(_spec())
        (done,) = _run_until_terminal(scheduler, [receipt["job_id"]])
        assert done.state == "done"
        assert scheduler.cancel(receipt["job_id"]).state == "done"


class TestCrashRecovery:
    def test_restart_resumes_without_recomputing_cached_cells(self, tmp_path):
        # Life 1: run a job to completion (cache now holds its cell),
        # then submit a second job and "crash" mid-flight by marking it
        # running without executing.
        first_life = _scheduler(tmp_path)
        done = first_life.submit(_spec(tenant="alice"))
        _run_until_terminal(first_life, [done["job_id"]])
        interrupted = first_life.submit(_spec(tenant="alice", seed=1))
        first_life.store.set_state(interrupted["job_id"], "running")

        # Life 2: a fresh scheduler over the same store recovers the
        # running job back to queued and serves it entirely from cache.
        second_life = _scheduler(tmp_path)
        recovered = second_life.recover()
        assert [r.job_id for r in recovered] == [interrupted["job_id"]]
        (record,) = _run_until_terminal(second_life, [interrupted["job_id"]])
        assert record.state == "done"
        assert record.detail["resumed"] is True
        assert record.detail["cache_hits"] == 1
        assert record.detail["cells_computed"] == 0


class TestTelemetry:
    def test_counters_track_admission_and_completion(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        scheduler.quotas["acme"] = TenantQuota(max_cells_per_job=1)
        receipt = scheduler.submit(_spec())
        with pytest.raises(QuotaExceeded):
            scheduler.submit(_spec(schemes=("baseline", "oracle")))
        _run_until_terminal(scheduler, [receipt["job_id"]])
        snapshot = scheduler.registry.snapshot()
        assert snapshot.get("service.jobs.admitted") == 1
        assert snapshot.get("service.jobs.denied") == 1
        assert snapshot.get("service.jobs.completed") == 1

    def test_accounting_survives_in_shared_cache(self, tmp_path):
        # The cells a service job computes land in the ordinary
        # content-addressed cache: a direct (non-service) lookup sees them.
        scheduler = _scheduler(tmp_path)
        spec = _spec()
        receipt = scheduler.submit(spec)
        _run_until_terminal(scheduler, [receipt["job_id"]])
        disk = default_cache()
        for _, _, key in spec.cells():
            assert disk.lookup_cell(key) is not None
