"""Durable job store: spec validation, journal replay, crash recovery."""

import json

import pytest

from repro.service.queue import JobSpec, JobStore, TERMINAL_STATES


def _spec(**overrides):
    base = dict(
        tenant="acme",
        benchmarks=("stream",),
        schemes=("baseline",),
        references=800,
    )
    base.update(overrides)
    return JobSpec(**base)


class TestJobSpec:
    def test_round_trips_through_dict(self):
        spec = _spec()
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            _spec(benchmarks=("nope",))

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            _spec(schemes=("nope",))

    def test_rejects_unknown_machine(self):
        with pytest.raises(ValueError, match="unknown machine"):
            _spec(machine="table9")

    def test_rejects_bad_tenant(self):
        with pytest.raises(ValueError, match="invalid tenant"):
            _spec(tenant="bad tenant!")

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError, match="no benchmarks"):
            _spec(benchmarks=())

    def test_cells_are_content_addressed(self):
        # The same grid spec from two different tenants names the same
        # cache keys — the dedup substrate.
        a = _spec(tenant="alice").cells()
        b = _spec(tenant="bob").cells()
        assert [key for _, _, key in a] == [key for _, _, key in b]
        assert len(a) == 1


class TestJobStore:
    def test_submit_then_read_back(self, tmp_path):
        store = JobStore(tmp_path / "service")
        record = store.submit(_spec())
        loaded = store.job(record.job_id)
        assert loaded.state == "queued"
        assert loaded.spec == record.spec
        assert not loaded.terminal

    def test_unknown_job_raises_key_error(self, tmp_path):
        store = JobStore(tmp_path / "service")
        with pytest.raises(KeyError):
            store.job("job-missing")

    def test_state_transitions_replay_in_order(self, tmp_path):
        store = JobStore(tmp_path / "service")
        record = store.submit(_spec())
        store.set_state(record.job_id, "running")
        store.set_state(record.job_id, "done", cache_hits=1, cells_total=1)
        loaded = store.job(record.job_id)
        assert loaded.state == "done"
        assert loaded.terminal
        assert loaded.detail["cache_hits"] == 1

    def test_torn_trailing_line_does_not_break_replay(self, tmp_path):
        store = JobStore(tmp_path / "service")
        record = store.submit(_spec())
        store.set_state(record.job_id, "running")
        with store.journal_path(record.job_id).open("a") as handle:
            handle.write('{"event": "state", "state": "done", "tr')  # no newline
        loaded = store.job(record.job_id)
        assert loaded.state == "running"  # torn event ignored, prior state holds

    def test_jobs_lists_by_tenant_in_submission_order(self, tmp_path):
        store = JobStore(tmp_path / "service")
        first = store.submit(_spec(tenant="alice"))
        store.submit(_spec(tenant="bob"))
        second = store.submit(_spec(tenant="alice", schemes=("oracle",)))
        alice = store.jobs("alice")
        assert [r.job_id for r in alice] == [first.job_id, second.job_id]
        assert len(store.jobs()) == 3

    def test_recover_requeues_running_jobs(self, tmp_path):
        store = JobStore(tmp_path / "service")
        running = store.submit(_spec(tenant="alice"))
        store.set_state(running.job_id, "running")
        done = store.submit(_spec(tenant="bob"))
        store.set_state(done.job_id, "done")

        recovered = store.recover()

        assert [r.job_id for r in recovered] == [running.job_id]
        replayed = store.job(running.job_id)
        assert replayed.state == "queued"
        assert replayed.detail["recovered"] is True
        assert store.job(done.job_id).state == "done"  # terminal jobs untouched

    def test_result_written_atomically_and_read_back(self, tmp_path):
        store = JobStore(tmp_path / "service")
        record = store.submit(_spec())
        store.store_result(record.job_id, '{"hello": 1}\n')
        assert store.result_path(record.job_id).read_text() == '{"hello": 1}\n'

    def test_spec_file_is_valid_json_with_identity(self, tmp_path):
        store = JobStore(tmp_path / "service")
        record = store.submit(_spec())
        payload = json.loads(store.spec_path(record.job_id).read_text())
        assert payload["job_id"] == record.job_id
        assert payload["tenant"] == "acme"

    def test_terminal_states_is_the_contract(self):
        assert TERMINAL_STATES == {"done", "failed", "cancelled"}
