"""HTTP front door: end-to-end identity, streams, structured errors.

Each test boots a real server on an ephemeral port via
``serve_in_thread`` and drives it through :class:`ServiceClient` — the
same path the CLI and CI smoke use.
"""

import json

import pytest

from repro.experiments.sweep import run_grid
from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import JobStore
from repro.service.scheduler import (
    SchedulerPolicy,
    ServiceScheduler,
    TenantQuota,
)
from repro.service.server import serve_in_thread

_REFS = 800
_BENCHMARKS = ["stream"]
_SCHEMES = ["baseline"]


@pytest.fixture
def service(tmp_path):
    handle = serve_in_thread(
        ServiceScheduler(
            store=JobStore(tmp_path / "service"),
            policy=SchedulerPolicy(
                sample_interval_seconds=0.02, poll_interval_seconds=0.01
            ),
        )
    )
    try:
        yield ServiceClient(handle.url), handle
    finally:
        handle.stop()


def _submit(client, tenant="acme", schemes=_SCHEMES):
    return client.submit(
        tenant, _BENCHMARKS, list(schemes), references=_REFS, seed=1
    )


class TestEndToEndIdentity:
    def test_cold_and_warm_results_match_direct_run_grid(self, service):
        client, _ = service
        direct = run_grid(
            _BENCHMARKS, _SCHEMES, references=_REFS, seed=1
        ).canonical_json().encode("utf-8")

        cold = _submit(client, tenant="alice")
        assert client.wait(cold["job_id"])["state"] == "done"
        assert client.result_bytes(cold["job_id"]) == direct

        warm = _submit(client, tenant="bob")
        assert len(warm["cached_keys"]) == 1
        record = client.wait(warm["job_id"])
        assert record["detail"]["cache_hits"] == 1
        assert client.result_bytes(warm["job_id"]) == direct

    def test_result_parses_as_sweep_result(self, service):
        from repro.experiments.sweep import SweepResult

        client, _ = service
        receipt = _submit(client)
        client.wait(receipt["job_id"])
        sweep = SweepResult.from_dict(client.result(receipt["job_id"]))
        assert sweep.machine == "table1-256K"
        assert ("stream", "baseline") in sweep.results


class TestEventStream:
    def test_stream_carries_lifecycle_manifest_and_samples(self, service):
        client, _ = service
        receipt = _submit(client)
        events = list(client.events(receipt["job_id"]))

        states = [
            e["state"] for e in events
            if e.get("source") == "job" and e.get("event") == "state"
        ]
        assert states[0] == "queued"
        assert states[-1] == "done"
        assert "running" in states
        assert any(e.get("event") == "sample" for e in events)
        manifest_events = [e for e in events if e.get("source") == "manifest"]
        assert any(e.get("event") == "start" for e in manifest_events)
        assert any(e.get("event") == "done" for e in manifest_events)

    def test_stream_of_finished_job_replays_and_terminates(self, service):
        client, _ = service
        receipt = _submit(client)
        client.wait(receipt["job_id"])
        events = list(client.events(receipt["job_id"]))  # must not hang
        assert any(
            e.get("event") == "state" and e.get("state") == "done"
            for e in events
        )


class TestErrors:
    def test_quota_denial_is_structured_429(self, service):
        client, handle = service
        handle.server.scheduler.quotas["acme"] = TenantQuota(max_cells_per_job=0)
        with pytest.raises(ServiceError) as excinfo:
            _submit(client)
        assert excinfo.value.status == 429
        assert excinfo.value.error_type == "quota_exceeded"
        assert excinfo.value.payload["error"]["limit"] == 0

    def test_unknown_job_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-nope")
        assert excinfo.value.status == 404

    def test_result_before_done_is_409(self, service):
        client, handle = service
        # Submit directly into the store (no scheduler pickup) so the job
        # is stably queued when we ask for its result.
        handle.server.scheduler.request_stop()
        receipt = _submit(client)
        with pytest.raises(ServiceError) as excinfo:
            client.result(receipt["job_id"])
        assert excinfo.value.status == 409

    def test_bad_spec_is_400(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit("acme", ["no-such-benchmark"], _SCHEMES)
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v2/other")
        assert excinfo.value.status == 404


class TestCancelAndUsage:
    def test_cancel_queued_job(self, service):
        client, handle = service
        handle.server.scheduler.request_stop()  # keep it queued
        receipt = _submit(client)
        cancelled = client.cancel(receipt["job_id"])
        assert cancelled["state"] == "cancelled"

    def test_usage_endpoint_sums_under_dedup(self, service):
        client, _ = service
        first = _submit(client, tenant="alice")
        client.wait(first["job_id"])
        second = _submit(client, tenant="bob")
        client.wait(second["job_id"])
        alice = client.usage("alice")
        bob = client.usage("bob")
        for usage in (alice, bob):
            assert (
                usage["cache_hits"] + usage["cells_computed"]
                == usage["cells_total"]
            )
        assert alice["cells_computed"] == 1
        assert bob["cache_hits"] == 1
        assert bob["cells_computed"] == 0

    def test_jobs_listing_filters_by_tenant(self, service):
        client, _ = service
        a = _submit(client, tenant="alice")
        b = _submit(client, tenant="bob")
        client.wait(a["job_id"])
        client.wait(b["job_id"])
        assert {r["job_id"] for r in client.jobs("alice")} == {a["job_id"]}
        assert len(client.jobs()) == 2


class TestRestartRecovery:
    def test_killed_service_resumes_jobs_from_journal(self, tmp_path):
        store_root = tmp_path / "service"
        policy = SchedulerPolicy(
            sample_interval_seconds=0.02, poll_interval_seconds=0.01
        )

        # Life 1: complete one job (warming the cache), leave another
        # mid-flight by stopping the scheduler and forging "running".
        handle = serve_in_thread(
            ServiceScheduler(store=JobStore(store_root), policy=policy)
        )
        try:
            client = ServiceClient(handle.url)
            done = _submit(client, tenant="alice")
            client.wait(done["job_id"])
            handle.server.scheduler.request_stop()
            interrupted = _submit(client, tenant="alice")
            handle.server.scheduler.store.set_state(
                interrupted["job_id"], "running"
            )
        finally:
            handle.stop()

        # Life 2: a fresh server over the same store. start() recovers
        # the journal; the job must finish from cache without recompute.
        handle = serve_in_thread(
            ServiceScheduler(store=JobStore(store_root), policy=policy)
        )
        try:
            client = ServiceClient(handle.url)
            record = client.wait(interrupted["job_id"])
            assert record["state"] == "done"
            assert record["detail"]["resumed"] is True
            assert record["detail"]["cache_hits"] == 1
            assert record["detail"]["cells_computed"] == 0
            assert json.loads(client.result_bytes(interrupted["job_id"]))
        finally:
            handle.stop()
