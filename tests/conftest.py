"""Shared fixtures for the test suite."""

import pytest

from repro.crypto.rng import HardwareRng


@pytest.fixture
def rng():
    """A deterministic RNG; tests that need randomness stay reproducible."""
    return HardwareRng(seed=0xC0FFEE)


@pytest.fixture
def key128():
    return bytes(range(16))


@pytest.fixture
def key256():
    return bytes(range(32))
