"""Shared fixtures for the test suite."""

import pytest

from repro.crypto.rng import HardwareRng
from repro.experiments import cache as result_cache


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the on-disk result cache at a per-test directory.

    The CLI caches by default, so without this any test driving ``main``
    would drop a ``.repro-cache`` into the working directory — and could
    be served stale results by a previous test's entries.
    """
    monkeypatch.setenv(result_cache.CACHE_DIR_ENV, str(tmp_path / "repro-cache"))
    result_cache.reset_default_cache()
    yield
    result_cache.reset_default_cache()


@pytest.fixture
def rng():
    """A deterministic RNG; tests that need randomness stay reproducible."""
    return HardwareRng(seed=0xC0FFEE)


@pytest.fixture
def key128():
    return bytes(range(16))


@pytest.fixture
def key256():
    return bytes(range(32))
