"""Structured logging: levels, formats, binding, and failure tolerance."""

import io
import json

import pytest

from repro.telemetry import log
from repro.telemetry.log import LEVELS, StructuredLogger, get_logger


@pytest.fixture(autouse=True)
def _clean_config(monkeypatch):
    """Every test starts from environment defaults and ends reset."""
    monkeypatch.delenv(log.LOG_LEVEL_ENV, raising=False)
    monkeypatch.delenv(log.LOG_JSON_ENV, raising=False)
    log.reset()
    yield
    log.reset()


def _capture(level="debug", json_mode=False):
    stream = io.StringIO()
    log.configure(level=level, json_mode=json_mode, stream=stream)
    return stream


class TestLevels:
    def test_default_threshold_is_warning(self):
        stream = io.StringIO()
        log.configure(stream=stream)  # level stays env-derived (warning)
        logger = get_logger("test")
        logger.info("quiet")
        logger.warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_env_level_is_honored(self, monkeypatch):
        monkeypatch.setenv(log.LOG_LEVEL_ENV, "error")
        stream = io.StringIO()
        log.configure(stream=stream)
        logger = get_logger("test")
        logger.warning("suppressed")
        logger.error("emitted")
        assert "suppressed" not in stream.getvalue()
        assert "emitted" in stream.getvalue()

    def test_off_suppresses_everything(self):
        stream = _capture(level="off")
        get_logger("test").error("nothing")
        assert stream.getvalue() == ""

    def test_configure_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            log.configure(level="verbose")

    def test_enabled_is_cheap_predicate(self):
        _capture(level="warning")
        logger = get_logger("test")
        assert not logger.enabled("debug")
        assert logger.enabled("error")

    def test_level_ranks_are_ordered(self):
        assert (
            LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"]
            < LEVELS["error"] < LEVELS["off"]
        )


class TestFormats:
    def test_json_lines_are_machine_parseable(self):
        stream = _capture(json_mode=True)
        get_logger("scheduler").error("job failed", job="job-1", code=3)
        record = json.loads(stream.getvalue())
        assert record["component"] == "scheduler"
        assert record["level"] == "error"
        assert record["message"] == "job failed"
        assert record["job"] == "job-1"
        assert record["code"] == 3
        assert isinstance(record["ts"], float)

    def test_json_env_flag_switches_format(self, monkeypatch):
        monkeypatch.setenv(log.LOG_JSON_ENV, "1")
        stream = io.StringIO()
        log.configure(level="debug", stream=stream)
        get_logger("test").info("hello")
        assert json.loads(stream.getvalue())["message"] == "hello"

    def test_human_line_carries_fields_sorted(self):
        stream = _capture()
        get_logger("worker").warning("cell fenced out", owner="w1", cell="gzip")
        line = stream.getvalue().strip()
        assert "WARNING" in line
        assert "worker cell fenced out" in line
        assert line.endswith("cell=gzip owner=w1")

    def test_unserializable_fields_degrade_to_str(self):
        stream = _capture(json_mode=True)
        get_logger("test").error("boom", error=ValueError("bad"))
        assert json.loads(stream.getvalue())["error"] == "bad"


class TestBinding:
    def test_bound_fields_land_on_every_record(self):
        stream = _capture(json_mode=True)
        logger = get_logger("fabric.worker").bind(owner="w2", job="job-9")
        logger.error("lease lost")
        record = json.loads(stream.getvalue())
        assert record["owner"] == "w2"
        assert record["job"] == "job-9"

    def test_bind_returns_new_logger(self):
        base = get_logger("c")
        child = base.bind(job="x")
        assert base.fields == {}
        assert child.fields == {"job": "x"}

    def test_call_site_fields_override_bound(self):
        stream = _capture(json_mode=True)
        get_logger("c").bind(job="old").error("m", job="new")
        assert json.loads(stream.getvalue())["job"] == "new"

    def test_none_fields_are_dropped(self):
        stream = _capture(json_mode=True)
        get_logger("c").error("m", job=None, cell="a")
        record = json.loads(stream.getvalue())
        assert "job" not in record
        assert record["cell"] == "a"


class TestFailureTolerance:
    def test_dead_stream_never_raises(self):
        class Dead:
            def write(self, _):
                raise OSError("broken pipe")

            def flush(self):
                raise OSError("broken pipe")

        log.configure(level="debug", stream=Dead())
        get_logger("test").error("does not raise")

    def test_logger_is_plain_object(self):
        logger = StructuredLogger("x")
        assert logger.component == "x"
        with pytest.raises(AttributeError):
            logger.arbitrary = 1  # __slots__: no per-record allocations
