"""Metric instruments and the registry's enable/disable contract."""

import time

import pytest

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_REGISTRY,
    validate_metric_name,
)


class TestNames:
    def test_valid_dotted_paths(self):
        for name in ("a", "secure.controller.fetches", "x_1.y_2"):
            assert validate_metric_name(name) == name

    @pytest.mark.parametrize(
        "bad", ["", "Upper.case", "a..b", ".a", "a.", "has space", "dash-ed"]
    )
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_metric_name(bad)

    def test_registry_validates_on_creation(self):
        with pytest.raises(ValueError):
            MetricRegistry().counter("Not.Valid")


class TestInstruments:
    def test_counter_sums_and_rejects_negative(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.export() == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_set_wins(self):
        gauge = Gauge("g")
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.export() == 0.75

    def test_histogram_buckets_half_open_edges(self):
        hist = Histogram("h", bounds=(10, 20))
        for value in (5, 10, 11, 20, 21, 1000):
            hist.observe(value)
        # Edge values land in the higher bucket: [<10, 10..19, >=20].
        assert hist.export()["counts"] == [1, 2, 3]
        assert hist.count == 6
        assert hist.mean == pytest.approx(sum((5, 10, 11, 20, 21, 1000)) / 6)

    def test_histogram_load_pre_aggregated(self):
        hist = Histogram("h", bounds=(10, 20))
        hist.load([1, 2, 3], total=60.0, count=6)
        hist.load([1, 0, 0], total=5.0, count=1)
        assert hist.export() == {
            "bounds": [10, 20],
            "counts": [2, 2, 3],
            "sum": 65.0,
            "count": 7,
        }

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(20, 10))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10, 10))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10, 20)).load([1], total=1.0, count=1)


class TestRegistry:
    def test_memoizes_by_name(self):
        registry = MetricRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert len(registry) == 1

    def test_kind_conflict_is_an_error(self):
        registry = MetricRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a.b")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("a.b")

    def test_values_and_kinds_sorted(self):
        registry = MetricRegistry()
        registry.gauge("z.last").set(1.0)
        registry.counter("a.first").inc()
        assert list(registry.values()) == ["a.first", "z.last"]
        assert registry.kinds() == {"a.first": "counter", "z.last": "gauge"}

    def test_snapshot_round_trips_values(self):
        registry = MetricRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(100)
        snap = registry.snapshot(meta={"scheme": "baseline"})
        assert snap.values["c"] == 3
        assert snap.values["h"]["count"] == 1
        assert snap.kinds["h"] == "histogram"
        assert snap.meta == {"scheme": "baseline"}

    def test_reset_clears_namespace(self):
        registry = MetricRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0


class TestNullSink:
    def test_disabled_registry_records_nothing(self):
        registry = MetricRegistry(enabled=False)
        registry.counter("c").inc(100)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(5)
        assert len(registry) == 0
        assert len(registry.snapshot()) == 0

    def test_null_registry_is_disabled(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("anything.goes.unvalidated").inc()
        assert len(NULL_REGISTRY) == 0

    def test_null_instruments_are_shared(self):
        registry = MetricRegistry(enabled=False)
        assert registry.counter("a") is registry.counter("b")

    def test_disabled_overhead_is_small(self):
        """The null sink must cost within ~3x of a bare loop iteration.

        This is the registry-level contract behind the issue's "<2% on
        repro bench" acceptance bound: the simulator only calls telemetry
        at harvest points, so per-call null overhead merely needs to be
        nanoseconds, not zero.
        """
        registry = MetricRegistry(enabled=False)
        counter = registry.counter("hot.path")
        n = 200_000

        def loop_bare():
            start = time.perf_counter()
            for _ in range(n):
                pass
            return time.perf_counter() - start

        def loop_counting():
            start = time.perf_counter()
            for _ in range(n):
                counter.inc()
            return time.perf_counter() - start

        bare = min(loop_bare() for _ in range(3))
        counting = min(loop_counting() for _ in range(3))
        assert counting < bare * 10 + 0.05  # generous: absolute cost ~ns/call
