"""Wall-time profiler scopes."""

import time

from repro.telemetry.profile import PROFILER, Profiler, _NULL_SCOPE, profile_scope
from repro.telemetry.registry import MetricRegistry


class TestProfiler:
    def test_disabled_scope_is_shared_null(self):
        profiler = Profiler(enabled=False)
        assert profiler.scope("x") is profiler.scope("y") is _NULL_SCOPE
        with profiler.scope("x"):
            pass
        assert profiler.stats("x") is None

    def test_enabled_scope_records(self):
        profiler = Profiler(enabled=True)
        with profiler.scope("work"):
            time.sleep(0.001)
        with profiler.scope("work"):
            pass
        stats = profiler.stats("work")
        assert stats.calls == 2
        assert stats.total_seconds > 0
        assert stats.max_seconds >= stats.mean_seconds

    def test_report_and_render(self):
        profiler = Profiler(enabled=True)
        with profiler.scope("a.b"):
            pass
        report = profiler.report()
        assert report["a.b"]["calls"] == 1
        assert "a.b" in profiler.render()
        profiler.reset()
        assert profiler.render() == "profiler: no scopes recorded"

    def test_publish_to_registry(self):
        profiler = Profiler(enabled=True)
        with profiler.scope("crypto.batch_aes"):
            pass
        registry = MetricRegistry()
        profiler.publish(registry)
        values = registry.values()
        assert values["profile.crypto.batch_aes.calls"] == 1
        assert "profile.crypto.batch_aes.total_seconds" in values

    def test_exception_still_recorded(self):
        profiler = Profiler(enabled=True)
        try:
            with profiler.scope("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert profiler.stats("boom").calls == 1


class TestGlobalProfiler:
    def test_profile_scope_uses_global(self):
        PROFILER.enable()
        PROFILER.reset()
        try:
            with profile_scope("global.scope"):
                pass
            assert PROFILER.stats("global.scope").calls == 1
        finally:
            PROFILER.disable()
            PROFILER.reset()

    def test_profile_scope_noop_when_disabled(self):
        PROFILER.disable()
        PROFILER.reset()
        with profile_scope("never.recorded"):
            pass
        assert PROFILER.stats("never.recorded") is None
