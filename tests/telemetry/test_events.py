"""Ring-buffer event tracer and Chrome trace_event export."""

import json

import pytest

from repro.telemetry.events import EventTracer, NULL_TRACER, TraceEvent


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_records_in_order(self):
        tracer = EventTracer(capacity=8)
        tracer.span("fetch", 10, 30)
        tracer.instant("match", 30)
        events = tracer.events()
        assert [event.name for event in events] == ["fetch", "match"]
        assert events[0].phase == "X" and events[0].duration == 20
        assert events[1].phase == "i"

    def test_wraparound_keeps_tail_and_counts_drops(self):
        tracer = EventTracer(capacity=4)
        for index in range(10):
            tracer.instant(f"e{index}", index)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [event.name for event in tracer.events()] == [
            "e6", "e7", "e8", "e9",
        ]

    def test_clear_resets_buffer_and_drop_count(self):
        tracer = EventTracer(capacity=2)
        for index in range(5):
            tracer.instant("e", index)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_span_clamps_negative_duration(self):
        tracer = EventTracer()
        tracer.span("backwards", 100, 90)
        assert tracer.events()[0].duration == 0


class TestChromeExport:
    def _tracer(self):
        tracer = EventTracer()
        tracer.span("fetch", 0, 50, track="controller", address=0x1000)
        tracer.span("dram", 5, 40, track="dram")
        tracer.instant("match/xor", 50, track="controller")
        return tracer

    def test_schema_validity(self):
        payload = self._tracer().to_chrome(metadata={"benchmark": "gzip"})
        # Round-trip through JSON: everything must be serializable.
        payload = json.loads(json.dumps(payload))
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["benchmark"] == "gzip"
        assert payload["otherData"]["dropped_events"] == 0
        for event in payload["traceEvents"]:
            assert event["ph"] in ("X", "i", "M")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0 and isinstance(event["ts"], int)
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_tracks_become_named_threads(self):
        payload = self._tracer().to_chrome()
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"]: e["tid"] for e in meta}
        # Alphabetical, stable tid assignment.
        assert names == {"controller": 0, "dram": 1}
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e["tid"] for e in spans}
        assert by_name["fetch"] == 0 and by_name["dram"] == 1

    def test_args_survive_export(self):
        payload = self._tracer().to_chrome()
        fetch = next(e for e in payload["traceEvents"] if e["name"] == "fetch")
        assert fetch["args"]["address"] == 0x1000

    def test_write_chrome(self, tmp_path):
        out = self._tracer().write_chrome(tmp_path / "t.json")
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.span("x", 0, 10)
        NULL_TRACER.instant("y", 5)
        NULL_TRACER.record(TraceEvent(name="z", phase="i", start=0))
        assert NULL_TRACER.events() == []
        assert len(NULL_TRACER) == 0
