"""Ring-buffer event tracer and Chrome trace_event export."""

import json
import warnings

import pytest

from repro.telemetry.events import (
    EventTracer,
    NULL_TRACER,
    TraceEvent,
    merge_chrome_traces,
    validate_chrome_trace,
)


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_records_in_order(self):
        tracer = EventTracer(capacity=8)
        tracer.span("fetch", 10, 30)
        tracer.instant("match", 30)
        events = tracer.events()
        assert [event.name for event in events] == ["fetch", "match"]
        assert events[0].phase == "X" and events[0].duration == 20
        assert events[1].phase == "i"

    def test_wraparound_keeps_tail_and_counts_drops(self):
        tracer = EventTracer(capacity=4)
        for index in range(10):
            tracer.instant(f"e{index}", index)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [event.name for event in tracer.events()] == [
            "e6", "e7", "e8", "e9",
        ]

    def test_clear_resets_buffer_and_drop_count(self):
        tracer = EventTracer(capacity=2)
        for index in range(5):
            tracer.instant("e", index)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_span_clamps_negative_duration(self):
        tracer = EventTracer()
        tracer.span("backwards", 100, 90)
        assert tracer.events()[0].duration == 0


class TestChromeExport:
    def _tracer(self):
        tracer = EventTracer()
        tracer.span("fetch", 0, 50, track="controller", address=0x1000)
        tracer.span("dram", 5, 40, track="dram")
        tracer.instant("match/xor", 50, track="controller")
        return tracer

    def test_schema_validity(self):
        payload = self._tracer().to_chrome(metadata={"benchmark": "gzip"})
        # Round-trip through JSON: everything must be serializable.
        payload = json.loads(json.dumps(payload))
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["benchmark"] == "gzip"
        assert payload["otherData"]["dropped_events"] == 0
        for event in payload["traceEvents"]:
            assert event["ph"] in ("X", "i", "M")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0 and isinstance(event["ts"], int)
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_tracks_become_named_threads(self):
        payload = self._tracer().to_chrome()
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"]: e["tid"] for e in meta}
        # Alphabetical, stable tid assignment.
        assert names == {"controller": 0, "dram": 1}
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e["tid"] for e in spans}
        assert by_name["fetch"] == 0 and by_name["dram"] == 1

    def test_args_survive_export(self):
        payload = self._tracer().to_chrome()
        fetch = next(e for e in payload["traceEvents"] if e["name"] == "fetch")
        assert fetch["args"]["address"] == 0x1000

    def test_write_chrome(self, tmp_path):
        out = self._tracer().write_chrome(tmp_path / "t.json")
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]


class TestCounterTracks:
    def test_counter_samples_export_as_C_phase(self):
        tracer = EventTracer()
        tracer.counter("crypto.pipeline", 10, track="crypto", blocks=3)
        tracer.counter("crypto.pipeline", 20, track="crypto", blocks=1)
        payload = tracer.to_chrome()
        samples = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert [e["ts"] for e in samples] == [10, 20]
        assert samples[0]["args"] == {"blocks": 3}

    def test_timestamps_clamp_forward_per_name(self):
        tracer = EventTracer()
        tracer.counter("a", 100, v=1)
        tracer.counter("a", 60, v=2)   # local clock rewound (retry path)
        tracer.counter("b", 60, v=3)   # independent series is untouched
        stamps = {(e.name, e.args["v"]): e.start for e in tracer.events()}
        assert stamps[("a", 2)] == 100  # clamped to the series' high-water
        assert stamps[("b", 3)] == 60

    def test_clear_resets_counter_clocks(self):
        tracer = EventTracer()
        tracer.counter("a", 100, v=1)
        tracer.clear()
        tracer.counter("a", 10, v=2)
        assert tracer.events()[0].start == 10


class TestFlows:
    def _chain(self, tracer, begin=0, step=40, end=90):
        flow = tracer.next_flow_id()
        tracer.span("fetch", begin, end, track="controller")
        tracer.span("pad", step, end, track="crypto")
        tracer.flow_begin("pred hit", begin, flow, track="controller")
        tracer.flow_step("pred hit", step, flow, track="crypto")
        tracer.flow_end("pred hit", end, flow, track="controller")
        return flow

    def test_flow_ids_are_fresh_per_chain(self):
        tracer = EventTracer()
        assert tracer.next_flow_id() != tracer.next_flow_id()
        tracer.clear()
        assert tracer.next_flow_id() == 1  # clear() restarts the sequence

    def test_flow_phases_export_with_id_and_binding(self):
        tracer = EventTracer()
        flow = self._chain(tracer)
        payload = tracer.to_chrome()
        flows = [e for e in payload["traceEvents"] if e["ph"] in ("s", "t", "f")]
        assert [e["ph"] for e in flows] == ["s", "t", "f"]
        assert all(e["id"] == flow for e in flows)
        finish = flows[-1]
        assert finish["bp"] == "e"  # binds the arrow to the enclosing slice

    def test_dangling_flows_dropped_when_start_evicted(self):
        tracer = EventTracer(capacity=4)
        flow = tracer.next_flow_id()
        tracer.flow_begin("demand", 0, flow)
        for index in range(4):  # ring wraps; the "s" is evicted
            tracer.instant(f"e{index}", index + 1)
        tracer.flow_end("demand", 10, flow)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            payload = tracer.to_chrome()
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert "f" not in phases  # arrow-from-nowhere filtered out

    def test_valid_chain_passes_the_validator(self):
        tracer = EventTracer()
        self._chain(tracer)
        assert validate_chrome_trace(tracer.to_chrome()) == []


class TestDropWarning:
    def test_export_warns_once_after_drops(self):
        tracer = EventTracer(capacity=2)
        for index in range(5):
            tracer.instant("e", index)
        with pytest.warns(RuntimeWarning, match="dropped 3"):
            payload = tracer.to_chrome()
        assert payload["otherData"]["dropped_events"] == 3
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            tracer.to_chrome()

    def test_no_warning_without_drops(self):
        tracer = EventTracer()
        tracer.instant("e", 0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            payload = tracer.to_chrome()
        assert payload["otherData"]["dropped_events"] == 0


class TestMergeChromeTraces:
    def _tracer(self, offset=0):
        tracer = EventTracer()
        flow = tracer.next_flow_id()
        tracer.span("fetch", offset, offset + 50, track="controller")
        tracer.flow_begin("demand", offset, flow, track="controller")
        tracer.flow_end("demand", offset + 50, flow, track="controller")
        return tracer

    def test_each_label_becomes_its_own_named_pid(self):
        payload = merge_chrome_traces(
            [("pred_regular", self._tracer()), ("baseline", self._tracer())]
        )
        names = {
            e["pid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert names == {1: "pred_regular", 2: "baseline"}
        assert payload["otherData"]["groups"] == ["pred_regular", "baseline"]

    def test_alignment_shifts_each_group_to_ts_zero(self):
        payload = merge_chrome_traces(
            [("a", self._tracer(offset=0)), ("b", self._tracer(offset=1000))]
        )
        for pid in (1, 2):
            stamps = [
                e["ts"] for e in payload["traceEvents"]
                if e["ph"] != "M" and e["pid"] == pid
            ]
            assert min(stamps) == 0

    def test_flow_ids_are_namespaced_per_group(self):
        payload = merge_chrome_traces([("a", self._tracer()), ("b", self._tracer())])
        ids = {
            e["pid"]: e["id"] for e in payload["traceEvents"] if "id" in e
        }
        assert ids == {1: "1.1", 2: "2.1"}  # same raw id, distinct per pid

    def test_merged_trace_validates_and_serializes(self):
        payload = merge_chrome_traces([("a", self._tracer()), ("b", self._tracer())])
        payload = json.loads(json.dumps(payload))
        assert validate_chrome_trace(payload) == []

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_chrome_traces([])


class TestValidateChromeTrace:
    def _valid(self):
        tracer = EventTracer()
        flow = tracer.next_flow_id()
        tracer.span("fetch", 0, 50)
        tracer.counter("depth", 0, guesses=2)
        tracer.counter("depth", 10, guesses=0)
        tracer.flow_begin("demand", 0, flow)
        tracer.flow_end("demand", 50, flow)
        return tracer.to_chrome()

    def test_accepts_a_well_formed_trace(self):
        assert validate_chrome_trace(self._valid()) == []

    def test_rejects_non_monotonic_counter(self):
        payload = self._valid()
        samples = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        samples[1]["ts"] = -5
        problems = validate_chrome_trace(payload)
        assert any("rewinds" in problem for problem in problems)

    def test_rejects_flow_without_finish(self):
        payload = self._valid()
        payload["traceEvents"] = [
            e for e in payload["traceEvents"] if e["ph"] != "f"
        ]
        problems = validate_chrome_trace(payload)
        assert any("'f'" in problem for problem in problems)

    def test_rejects_orphan_finish(self):
        payload = self._valid()
        payload["traceEvents"] = [
            e for e in payload["traceEvents"] if e["ph"] != "s"
        ]
        problems = validate_chrome_trace(payload)
        assert any("'s'" in problem for problem in problems)

    def test_rejects_renamed_thread(self):
        payload = self._valid()
        meta = next(e for e in payload["traceEvents"] if e["ph"] == "M")
        payload["traceEvents"].append({**meta, "args": {"name": "other"}})
        problems = validate_chrome_trace(payload)
        assert any("renamed" in problem for problem in problems)

    def test_rejects_unnamed_thread(self):
        payload = self._valid()
        payload["traceEvents"] = [
            e for e in payload["traceEvents"] if e["ph"] != "M"
        ]
        problems = validate_chrome_trace(payload)
        assert any("thread_name" in problem for problem in problems)

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.span("x", 0, 10)
        NULL_TRACER.instant("y", 5)
        NULL_TRACER.counter("c", 0, v=1)
        NULL_TRACER.flow_begin("f", 0, 1)
        NULL_TRACER.flow_step("f", 1, 1)
        NULL_TRACER.flow_end("f", 2, 1)
        NULL_TRACER.record(TraceEvent(name="z", phase="i", start=0))
        assert NULL_TRACER.next_flow_id() == 0
        assert NULL_TRACER.events() == []
        assert len(NULL_TRACER) == 0
