"""Snapshot merge rules, associativity, diffing, and serialization."""

import pytest

from repro.telemetry.registry import MetricRegistry
from repro.telemetry.snapshot import (
    MetricsSnapshot,
    SnapshotSeries,
    merge_snapshots,
)


def _snap(counter=0, gauge=0.0, hist_counts=(0, 0, 0), meta=None):
    registry = MetricRegistry()
    registry.counter("c").inc(counter)
    registry.gauge("g").set(gauge)
    registry.histogram("h", bounds=(10, 20)).load(
        list(hist_counts), total=float(sum(hist_counts)), count=sum(hist_counts)
    )
    return registry.snapshot(meta=meta or {})


class TestMergeRules:
    def test_counters_sum(self):
        merged = _snap(counter=3).merge(_snap(counter=4))
        assert merged.values["c"] == 7

    def test_gauges_take_max(self):
        merged = _snap(gauge=0.9).merge(_snap(gauge=0.2))
        assert merged.values["g"] == 0.9

    def test_histograms_sum_bucketwise(self):
        merged = _snap(hist_counts=(1, 2, 3)).merge(_snap(hist_counts=(4, 0, 1)))
        assert merged.values["h"]["counts"] == [5, 2, 4]
        assert merged.values["h"]["count"] == 11

    def test_histogram_bound_mismatch_is_an_error(self):
        left = MetricsSnapshot(
            values={"h": {"bounds": [1], "counts": [0, 0], "sum": 0, "count": 0}},
            kinds={"h": "histogram"},
        )
        right = MetricsSnapshot(
            values={"h": {"bounds": [2], "counts": [0, 0], "sum": 0, "count": 0}},
            kinds={"h": "histogram"},
        )
        with pytest.raises(ValueError, match="bounds"):
            left.merge(right)

    def test_kind_conflict_is_an_error(self):
        left = MetricsSnapshot(values={"x": 1}, kinds={"x": "counter"})
        right = MetricsSnapshot(values={"x": 1.0}, kinds={"x": "gauge"})
        with pytest.raises(ValueError, match="counter"):
            left.merge(right)

    def test_one_sided_metrics_pass_through(self):
        left = MetricsSnapshot(values={"a": 1}, kinds={"a": "counter"})
        right = MetricsSnapshot(values={"b": 2}, kinds={"b": "counter"})
        merged = left.merge(right)
        assert merged.values == {"a": 1, "b": 2}

    def test_meta_keeps_agreeing_keys_and_counts_cells(self):
        left = _snap(meta={"benchmark": "gzip", "scheme": "oracle"})
        right = _snap(meta={"benchmark": "gzip", "scheme": "baseline"})
        merged = left.merge(right)
        assert merged.meta["benchmark"] == "gzip"
        assert "scheme" not in merged.meta
        assert merged.meta["merged_cells"] == 2


class TestMergeAlgebra:
    def test_commutative(self):
        a, b = _snap(counter=1, gauge=0.1), _snap(counter=2, gauge=0.9)
        assert a.merge(b).values == b.merge(a).values

    def test_associative(self):
        a = _snap(counter=1, hist_counts=(1, 0, 0))
        b = _snap(counter=2, hist_counts=(0, 1, 0))
        c = _snap(counter=4, hist_counts=(0, 0, 1))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.values == right.values
        assert left.meta["merged_cells"] == right.meta["merged_cells"] == 3

    def test_merge_snapshots_folds_iterable(self):
        merged = merge_snapshots(_snap(counter=i) for i in range(5))
        assert merged.values["c"] == 10

    def test_merge_snapshots_empty_iterable(self):
        assert len(merge_snapshots([])) == 0


class TestDiff:
    def test_numeric_deltas(self):
        current = _snap(counter=10, gauge=0.5)
        baseline = _snap(counter=7, gauge=0.5)
        diff = current.diff(baseline)
        assert diff["changed"]["c"] == 3
        assert "g" not in diff["changed"]  # unchanged gauge not reported

    def test_histogram_diff_compares_mean_and_count(self):
        current = _snap(hist_counts=(2, 0, 0))
        baseline = _snap(hist_counts=(1, 0, 0))
        delta = current.diff(baseline)["changed"]["h"]
        assert delta["count"] == 1

    def test_one_sided_names_reported(self):
        current = MetricsSnapshot(values={"a": 1}, kinds={"a": "counter"})
        baseline = MetricsSnapshot(values={"b": 1}, kinds={"b": "counter"})
        diff = current.diff(baseline)
        assert diff["only_in_current"] == ["a"]
        assert diff["only_in_baseline"] == ["b"]


class TestSerialization:
    def test_json_round_trip(self):
        snap = _snap(counter=3, gauge=0.7, hist_counts=(1, 2, 3),
                     meta={"scheme": "oracle"})
        again = MetricsSnapshot.from_json(snap.to_json())
        assert again.values == snap.values
        assert again.kinds == snap.kinds
        assert again.meta == snap.meta

    def test_save_load(self, tmp_path):
        snap = _snap(counter=1)
        path = snap.save(tmp_path / "snap.json")
        assert MetricsSnapshot.load(path).values == snap.values

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            MetricsSnapshot.from_dict({"schema": "bogus/v0", "metrics": {}})

    def test_values_without_kind_rejected(self):
        with pytest.raises(ValueError, match="without a kind"):
            MetricsSnapshot(values={"a": 1}, kinds={})


def _series(points):
    """A series with one cumulative sample per (accesses, counter) pair."""
    series = SnapshotSeries(interval=100, meta={"benchmark": "gzip"})
    for accesses, counter in points:
        series.append(_snap(counter=counter, meta={"accesses": accesses}))
    return series


class TestSnapshotSeries:
    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            SnapshotSeries(interval=-1)

    def test_samples_must_strictly_advance(self):
        series = _series([(100, 1)])
        with pytest.raises(ValueError, match="strictly advance"):
            series.append(_snap(counter=2, meta={"accesses": 100}))
        with pytest.raises(ValueError, match="strictly advance"):
            series.append(_snap(counter=2, meta={"accesses": 50}))

    def test_final_is_last_sample(self):
        assert SnapshotSeries().final is None
        series = _series([(100, 1), (200, 5)])
        assert series.final.values["c"] == 5
        assert series.accesses() == [100, 200]
        assert len(series) == 2

    def test_window_diffs_are_exact_deltas(self):
        series = _series([(100, 3), (200, 10), (300, 10)])
        diffs = series.window_diffs()
        assert len(diffs) == 2
        assert diffs[0]["changed"]["c"] == 7
        assert "c" not in diffs[1]["changed"]  # flat window

    def test_window_rates(self):
        series = SnapshotSeries(interval=100)
        for accesses, hits, lookups in ((100, 5, 10), (200, 9, 20), (300, 9, 20)):
            registry = MetricRegistry()
            registry.counter("hits").inc(hits)
            registry.counter("lookups").inc(lookups)
            series.append(registry.snapshot(meta={"accesses": accesses}))
        rates = series.window_rates("hits", "lookups")
        assert rates[0] == pytest.approx(0.4)   # (9-5) / (20-10)
        assert rates[1] == 0.0                  # denominator did not move

    def test_jsonl_round_trip(self, tmp_path):
        series = _series([(100, 1), (200, 5)])
        path = series.save(tmp_path / "series.jsonl")
        again = SnapshotSeries.load(path)
        assert again.interval == series.interval
        assert again.meta == series.meta
        assert [s.values for s in again] == [s.values for s in series]

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            SnapshotSeries.from_jsonl('{"schema": "bogus/v0"}\n')

    def test_declared_count_mismatch_rejected(self):
        text = _series([(100, 1), (200, 2)]).to_jsonl()
        truncated = "\n".join(text.splitlines()[:-1]) + "\n"
        with pytest.raises(ValueError, match="declares"):
            SnapshotSeries.from_jsonl(truncated)

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SnapshotSeries.from_jsonl("")
