"""Prometheus exposition: encoding, parsing, linting, monotonicity."""

import math

import pytest

from repro.telemetry.prometheus import (
    check_monotone_counters,
    encode_exposition,
    lint_exposition,
    parse_exposition,
)
from repro.telemetry.registry import MetricRegistry


def _registry():
    registry = MetricRegistry()
    registry.counter("service.jobs.admitted").inc(3)
    registry.gauge("service.queue.depth").set(2)
    registry.histogram(
        "service.latency.submit_to_result_sec", bounds=(0.1, 1.0)
    ).observe(0.5)
    return registry


class TestEncode:
    def test_counter_gets_total_suffix_and_headers(self):
        text = encode_exposition({"service.jobs.admitted": 3},
                                 {"service.jobs.admitted": "counter"})
        assert "# HELP repro_service_jobs_admitted_total" in text
        assert "# TYPE repro_service_jobs_admitted_total counter" in text
        assert "\nrepro_service_jobs_admitted_total 3\n" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = _registry()
        text = encode_exposition(registry.values(), registry.kinds())
        base = "repro_service_latency_submit_to_result_sec"
        # Registry counts are per-bucket (0, 1, 0); exposition must be
        # the running sum with an +Inf bucket equal to _count.
        assert f'{base}_bucket{{le="0.1"}} 0' in text
        assert f'{base}_bucket{{le="1.0"}} 1' in text
        assert f'{base}_bucket{{le="+Inf"}} 1' in text
        assert f"{base}_count 1" in text
        assert f"{base}_sum 0.5" in text

    def test_tenant_names_fold_into_labels(self):
        values = {
            "service.tenant.alice.cache_hit_ratio": 0.5,
            "service.tenant.bob.cache_hit_ratio": 1.0,
        }
        kinds = dict.fromkeys(values, "gauge")
        text = encode_exposition(values, kinds)
        # One family, two labeled samples — aggregatable across tenants.
        assert text.count("# TYPE repro_service_tenant_cache_hit_ratio") == 1
        assert 'repro_service_tenant_cache_hit_ratio{tenant="alice"} 0.5' in text
        assert 'repro_service_tenant_cache_hit_ratio{tenant="bob"} 1.0' in text

    def test_mixed_kinds_in_one_family_raise(self):
        values = {
            "service.tenant.a.latency": 1.0,
            "service.tenant.b.latency": 2.0,
        }
        kinds = {
            "service.tenant.a.latency": "gauge",
            "service.tenant.b.latency": "counter",
        }
        with pytest.raises(ValueError, match="mixes kinds"):
            encode_exposition(values, kinds)

    def test_special_float_values(self):
        text = encode_exposition(
            {"a": math.inf, "b": -math.inf, "c": math.nan},
            {"a": "gauge", "b": "gauge", "c": "gauge"},
        )
        assert "repro_a +Inf" in text
        assert "repro_b -Inf" in text
        assert "repro_c NaN" in text

    def test_exposition_ends_with_newline(self):
        assert encode_exposition({"a": 1}, {"a": "gauge"}).endswith("\n")


class TestParseRoundtrip:
    def test_registry_roundtrips_through_text(self):
        registry = _registry()
        families = parse_exposition(
            encode_exposition(registry.values(), registry.kinds())
        )
        counter = families["repro_service_jobs_admitted_total"]
        assert counter["type"] == "counter"
        assert counter["samples"]["repro_service_jobs_admitted_total"][()] == 3
        hist = families["repro_service_latency_submit_to_result_sec"]
        assert hist["type"] == "histogram"
        count = hist["samples"][
            "repro_service_latency_submit_to_result_sec_count"
        ]
        assert count[()] == 1

    def test_labels_parse_with_escapes(self):
        text = encode_exposition(
            {"service.tenant.t_1.hits": 2},
            {"service.tenant.t_1.hits": "counter"},
        )
        families = parse_exposition(text)
        samples = families["repro_service_tenant_hits_total"]["samples"]
        assert samples["repro_service_tenant_hits_total"][
            (("tenant", "t_1"),)
        ] == 2

    def test_bad_syntax_raises(self):
        with pytest.raises(ValueError):
            parse_exposition("not a metric line at all{{{\n")


class TestLint:
    def test_clean_registry_exposition_passes(self):
        registry = _registry()
        text = encode_exposition(registry.values(), registry.kinds())
        assert lint_exposition(text) == []

    def test_missing_type_is_flagged(self):
        problems = lint_exposition("repro_x_total 3\n")
        assert any("TYPE" in p for p in problems)

    def test_counter_without_total_suffix_is_flagged(self):
        text = (
            "# HELP repro_x repro metric x\n"
            "# TYPE repro_x counter\n"
            "repro_x 3\n"
        )
        assert any("_total" in p for p in lint_exposition(text))

    def test_negative_counter_is_flagged(self):
        text = (
            "# HELP repro_x_total repro metric x\n"
            "# TYPE repro_x_total counter\n"
            "repro_x_total -1\n"
        )
        assert any("not >= 0" in p for p in lint_exposition(text))

    def test_noncumulative_histogram_is_flagged(self):
        text = (
            "# HELP repro_h repro metric h\n"
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 2\n'
            'repro_h_bucket{le="1.0"} 1\n'
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 2\n"
        )
        assert any("cumulative" in p for p in lint_exposition(text))

    def test_histogram_missing_inf_bucket_is_flagged(self):
        text = (
            "# HELP repro_h repro metric h\n"
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 1\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 1\n"
        )
        assert any("+Inf" in p for p in lint_exposition(text))


class TestMonotonicity:
    def test_growing_counters_pass(self):
        registry = _registry()
        before = encode_exposition(registry.values(), registry.kinds())
        registry.counter("service.jobs.admitted").inc()
        registry.histogram(
            "service.latency.submit_to_result_sec", bounds=(0.1, 1.0)
        ).observe(0.2)
        after = encode_exposition(registry.values(), registry.kinds())
        assert check_monotone_counters(before, after) == []

    def test_decreasing_counter_is_flagged(self):
        before = encode_exposition({"a.b": 3}, {"a.b": "counter"})
        after = encode_exposition({"a.b": 2}, {"a.b": "counter"})
        problems = check_monotone_counters(before, after)
        assert any("decreased" in p for p in problems)

    def test_vanished_family_is_flagged(self):
        before = encode_exposition({"a.b": 3}, {"a.b": "counter"})
        after = encode_exposition({"c.d": 1}, {"c.d": "counter"})
        assert any("vanished" in p for p in check_monotone_counters(before, after))

    def test_gauges_may_decrease(self):
        before = encode_exposition({"g": 5}, {"g": "gauge"})
        after = encode_exposition({"g": 1}, {"g": "gauge"})
        assert check_monotone_counters(before, after) == []
