"""Component instrumentation: controller spans and harvested snapshots."""

from repro.secure.controller import SecureMemoryController
from repro.secure.seqcache import SequenceNumberCache
from repro.telemetry.events import (
    EventTracer,
    NULL_TRACER,
    validate_chrome_trace,
)
from repro.telemetry.registry import MetricRegistry


def _exercise(controller, fetches=6):
    clock = 0
    line_bytes = controller.address_map.line_bytes
    lines = [0x40000 + index * line_bytes for index in range(4)]
    for line in lines:
        clock = controller.writeback_line(clock, line).completion_time
    for index in range(fetches):
        clock = controller.fetch_line(clock, lines[index % len(lines)]).data_ready
    return clock


class TestControllerTracer:
    def test_defaults_to_null_tracer(self):
        controller = SecureMemoryController()
        assert controller.tracer is NULL_TRACER
        _exercise(controller)  # must not record anything anywhere

    def test_fetch_emits_pipeline_spans(self):
        controller = SecureMemoryController(tracer=EventTracer())
        _exercise(controller)
        events = controller.tracer.events()
        names = {event.name for event in events}
        assert "fetch" in names
        assert "dram" in names
        assert "match/xor" in names
        assert "writeback" in names
        tracks = {event.track for event in events}
        assert {"controller", "dram", "crypto"} <= tracks

    def test_fetch_span_args_describe_the_access(self):
        controller = SecureMemoryController(tracer=EventTracer())
        _exercise(controller)
        fetch = next(
            event for event in controller.tracer.events()
            if event.name == "fetch"
        )
        assert "address" in fetch.args
        assert "fetch_class" in fetch.args
        assert "seqnum" in fetch.args

    def test_attaching_tracer_does_not_change_timing(self):
        plain = SecureMemoryController()
        traced = SecureMemoryController(tracer=EventTracer())
        assert _exercise(plain) == _exercise(traced)
        assert plain.stats.total_exposed_latency == traced.stats.total_exposed_latency


class TestTimelineV2:
    def test_tracer_setter_propagates_to_components(self):
        controller = SecureMemoryController()
        tracer = EventTracer()
        controller.tracer = tracer
        assert controller.engine.tracer is tracer
        assert controller.dram.tracer is tracer

    def test_fetch_emits_counter_tracks(self):
        controller = SecureMemoryController(tracer=EventTracer())
        _exercise(controller)
        counters = {
            event.name for event in controller.tracer.events()
            if event.phase == "C"
        }
        assert {"pred.queue_depth", "secure.quarantined",
                "crypto.pipeline", "dram.outstanding"} <= counters

    def test_seqcache_occupancy_tracked_when_present(self):
        controller = SecureMemoryController(
            seqcache=SequenceNumberCache(4096), tracer=EventTracer()
        )
        _exercise(controller)
        samples = [
            event for event in controller.tracer.events()
            if event.name == "seqcache.occupancy"
        ]
        assert samples
        assert samples[-1].args["lines"] == controller.seqcache.occupancy

    def test_fetch_emits_complete_flow_chains(self):
        controller = SecureMemoryController(tracer=EventTracer())
        _exercise(controller)
        events = controller.tracer.events()
        starts = [e for e in events if e.phase == "s"]
        finishes = [e for e in events if e.phase == "f"]
        assert len(starts) == controller.stats.fetches
        assert {e.flow_id for e in starts} == {e.flow_id for e in finishes}
        # The arrow crosses from the controller lane into the crypto lane.
        steps = [e for e in events if e.phase == "t"]
        assert all(e.track == "crypto" for e in steps)

    def test_traced_run_exports_a_valid_chrome_trace(self):
        controller = SecureMemoryController(
            seqcache=SequenceNumberCache(4096), tracer=EventTracer()
        )
        _exercise(controller, fetches=12)
        assert validate_chrome_trace(controller.tracer.to_chrome()) == []


class TestPublishTelemetry:
    def test_snapshot_covers_the_pipeline(self):
        controller = SecureMemoryController()
        _exercise(controller)
        registry = MetricRegistry()
        controller.publish_telemetry(registry)
        values = registry.values()
        assert values["secure.controller.fetches"] == 6
        assert values["secure.controller.writebacks"] == 4
        assert "secure.controller.exposed_latency" in values
        assert "secure.predictor.lookups" in values
        assert "crypto.engine.demand_blocks" in values
        assert "memory.dram.reads" in values

    def test_latency_histogram_agrees_with_totals(self):
        controller = SecureMemoryController()
        _exercise(controller)
        registry = MetricRegistry()
        controller.publish_telemetry(registry)
        hist = registry.values()["secure.controller.exposed_latency"]
        assert hist["count"] == controller.stats.fetches
        assert hist["sum"] == float(controller.stats.total_exposed_latency)
        assert sum(hist["counts"]) == hist["count"]

    def test_publish_is_additive_across_controllers(self):
        registry = MetricRegistry()
        for _ in range(2):
            controller = SecureMemoryController()
            _exercise(controller)
            controller.publish_telemetry(registry)
        assert registry.values()["secure.controller.fetches"] == 12
