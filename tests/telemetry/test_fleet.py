"""Cross-process tracing: context propagation and fleet trace folding."""

import json
import os
import threading
import time

from repro.experiments.cache import default_cache
from repro.experiments.supervisor import SweepManifest, manifest_path
from repro.service.queue import JobSpec, JobStore
from repro.telemetry.events import (
    EventTracer,
    merge_chrome_traces,
    validate_chrome_trace,
)
from repro.telemetry.fleet import (
    TRACE_ENV,
    TraceContext,
    current_trace_context,
    fleet_trace,
    span_record,
)


class TestTraceContext:
    def test_mint_and_child_link_spans(self):
        root = TraceContext.mint("job-1")
        child = root.child()
        assert child.job_id == "job-1"
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_dict_roundtrip(self):
        context = TraceContext.mint("job-2").child()
        assert TraceContext.from_dict(context.to_dict()) == context

    def test_activate_sets_thread_local_and_env(self):
        context = TraceContext.mint("job-3")
        assert current_trace_context() is None
        with context.activate():
            assert current_trace_context() == context
            assert TraceContext.from_env().job_id == "job-3"
        assert current_trace_context() is None
        assert os.environ.get(TRACE_ENV) is None

    def test_activate_restores_previous(self):
        outer = TraceContext.mint("job-outer")
        inner = TraceContext.mint("job-inner")
        with outer.activate():
            with inner.activate():
                assert current_trace_context() == inner
            assert current_trace_context() == outer

    def test_thread_local_wins_over_env(self, monkeypatch):
        env_context = TraceContext.mint("job-env")
        monkeypatch.setenv(TRACE_ENV, env_context.to_env())
        assert current_trace_context() == env_context
        local_context = TraceContext.mint("job-local")
        with local_context.activate():
            assert current_trace_context() == local_context

    def test_other_threads_fall_back_to_env(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        context = TraceContext.mint("job-t")
        seen = []
        with context.activate():
            thread = threading.Thread(
                target=lambda: seen.append(current_trace_context())
            )
            thread.start()
            thread.join()
        # The worker thread has no thread-local slot; it resolved the
        # env carriage — the same path a forked worker process takes.
        assert seen == [context]

    def test_torn_env_value_is_ignored(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "{not json")
        assert TraceContext.from_env() is None

    def test_span_record_shape(self):
        context = TraceContext.mint("job-4")
        record = span_record("admitted", "scheduler", context, tenant="acme",
                             skipped=None)
        assert record["event"] == "span"
        assert record["name"] == "admitted"
        assert record["role"] == "scheduler"
        assert record["pid"] == os.getpid()
        assert record["trace"] == context.to_dict()
        assert record["tenant"] == "acme"
        assert "skipped" not in record


class TestManifestTagging:
    def test_manifest_lines_carry_trace_when_active(self, tmp_path):
        manifest = SweepManifest.open(tmp_path / "manifest.jsonl", {"k": "v"})
        context = TraceContext.mint("job-5")
        with context.activate():
            manifest.record("start", "key-1", "stream/baseline", owner="w1")
        manifest.record("done", "key-1", "stream/baseline")
        lines = [
            json.loads(line)
            for line in (tmp_path / "manifest.jsonl").read_text().splitlines()
        ]
        start, done = lines[1], lines[2]
        assert start["trace"]["job_id"] == "job-5"
        assert start["pid"] == os.getpid()
        assert isinstance(start["ts"], float)
        assert "trace" not in done  # no context active: no tag


def _seed_job(tmp_path):
    """A terminal job with spans, manifest lines and a worker beacon."""
    store = JobStore(tmp_path / "service")
    spec = JobSpec(tenant="acme", benchmarks=("stream",), schemes=("baseline",))
    record = store.submit(spec)
    job_id = record.job_id
    root = TraceContext.mint(job_id)
    store.append(job_id, span_record("submitted", "server", root))
    store.append(job_id, span_record("admitted", "scheduler", root.child()))
    store.set_state(job_id, "running", sweep_key=spec.sweep_key)
    store.append(job_id, span_record("scheduled", "scheduler", root.child()))

    cache_root = default_cache().root
    manifest = SweepManifest.open(
        manifest_path(cache_root, spec.sweep_key), {"key": spec.sweep_key}
    )
    child = root.child()
    with child.activate():
        manifest.record(
            "start", "cell-key", "stream/baseline", owner="w1", token=1
        )
        manifest.record("done", "cell-key", "stream/baseline", owner="w1")

    workers_dir = cache_root / "leases" / spec.sweep_key / "workers"
    workers_dir.mkdir(parents=True)
    (workers_dir / "w1.json").write_text(json.dumps({
        "owner": "w1", "pid": 4242, "state": "draining",
        "updated": time.time(),
        "stats": {"cells_executed": 1, "cells_fenced_out": 0},
    }))

    store.append(job_id, span_record("result_stored", "scheduler", root.child()))
    store.set_state(job_id, "done")
    store.append(job_id, {
        "event": "latency", "ts": time.time(),
        "submit_to_result_sec": 0.5, "submit_to_schedule_sec": 0.1,
    })
    return store, job_id


class TestFleetTrace:
    def test_folds_all_sources_into_valid_trace(self, tmp_path):
        store, job_id = _seed_job(tmp_path)
        payload = fleet_trace(job_id, store=store)
        assert validate_chrome_trace(payload) == []

        lanes = {
            event["args"]["name"]: event["pid"]
            for event in payload["traceEvents"]
            if event.get("ph") == "M" and event["name"] == "process_name"
        }
        assert set(lanes) == {"server", "scheduler", "worker-w1"}

        names = {
            event["name"]
            for event in payload["traceEvents"]
            if event.get("ph") == "i"
        }
        assert {"submitted", "admitted", "scheduled", "result_stored",
                "lease_claimed", "beacon"} <= names

        # Lifecycle spans land on the lane their role names.
        by_name = {
            event["name"]: event
            for event in payload["traceEvents"]
            if event.get("ph") == "i"
        }
        assert by_name["submitted"]["pid"] == lanes["server"]
        assert by_name["admitted"]["pid"] == lanes["scheduler"]
        assert by_name["lease_claimed"]["pid"] == lanes["worker-w1"]

        # The job's state machine renders as spans plus one flow arrow.
        states = [
            event["name"]
            for event in payload["traceEvents"]
            if event.get("ph") == "X" and event["name"].startswith("job:")
        ]
        assert states == ["job:queued", "job:running", "job:done"]
        assert [e["ph"] for e in payload["traceEvents"]
                if e["ph"] in ("s", "t", "f")] == ["s", "t", "f"]

        # The cell ran on the worker lane, with its duration span.
        cells = [
            event
            for event in payload["traceEvents"]
            if event.get("ph") == "X" and event["name"].startswith("cell:")
        ]
        assert len(cells) == 1
        assert cells[0]["pid"] == lanes["worker-w1"]
        assert cells[0]["args"]["outcome"] == "done"

        assert payload["otherData"]["job_id"] == job_id
        assert payload["otherData"]["state"] == "done"

    def test_foreign_jobs_sharing_manifest_are_excluded(self, tmp_path):
        store, job_id = _seed_job(tmp_path)
        record = store.job(job_id)
        cache_root = default_cache().root
        manifest = SweepManifest.open(
            manifest_path(cache_root, record.spec.sweep_key), {}
        )
        foreign = TraceContext.mint("job-other")
        with foreign.activate():
            manifest.record("start", "other-key", "stream/oracle", owner="w9")
        payload = fleet_trace(job_id, store=store)
        lanes = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event.get("ph") == "M" and event["name"] == "process_name"
        }
        assert "worker-w9" not in lanes

    def test_unknown_job_raises_keyerror(self, tmp_path):
        store = JobStore(tmp_path / "service")
        try:
            fleet_trace("job-missing", store=store)
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError for unknown job")


class TestFleetMerge:
    """merge_chrome_traces over fleet-shaped inputs (the satellite)."""

    def _lane(self, spans, counters=(), flows=()):
        tracer = EventTracer()
        for name, start, end in spans:
            tracer.span(name, start=start, end=end, track="cells")
        for name, at, value in counters:
            tracer.counter(name, at=at, track="load", value=value)
        for name, phase, at, flow_id in flows:
            getattr(tracer, f"flow_{phase}")(name, at=at, flow_id=flow_id)
        return tracer

    def test_each_process_gets_its_own_pid_group(self):
        labeled = [
            ("scheduler", self._lane([("job", 0, 10)])),
            ("worker-w1", self._lane([("cell:a", 2, 6)])),
            ("worker-w2", self._lane([("cell:b", 3, 8)])),
        ]
        payload = merge_chrome_traces(labeled, align=False)
        assert validate_chrome_trace(payload) == []
        meta = {
            event["args"]["name"]: event["pid"]
            for event in payload["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert meta == {"scheduler": 1, "worker-w1": 2, "worker-w2": 3}
        for event in payload["traceEvents"]:
            if event["ph"] == "X":
                expected = 1 if event["name"] == "job" else (
                    2 if event["name"] == "cell:a" else 3
                )
                assert event["pid"] == expected

    def test_flow_ids_are_namespaced_per_lane(self):
        def flowy():
            tracer = EventTracer()
            flow = tracer.next_flow_id()
            tracer.flow_begin("hop", at=0, flow_id=flow)
            tracer.flow_step("hop", at=5, flow_id=flow)
            tracer.flow_end("hop", at=9, flow_id=flow)
            return tracer

        payload = merge_chrome_traces(
            [("scheduler", flowy()), ("worker-w1", flowy())], align=False
        )
        assert validate_chrome_trace(payload) == []
        flow_ids = {
            event["pid"]: event["id"]
            for event in payload["traceEvents"]
            if event["ph"] == "s"
        }
        # Same local flow id in both lanes, but the merged ids must not
        # collide or the arrows would cross-link between processes.
        assert len(set(flow_ids.values())) == 2
        for pid, flow_id in flow_ids.items():
            assert flow_id.startswith(f"{pid}.")

    def test_counter_tracks_stay_monotone_per_lane(self):
        lanes = [
            ("scheduler", self._lane([], counters=[("depth", 0, 1),
                                                   ("depth", 5, 3)])),
            ("worker-w1", self._lane([], counters=[("depth", 2, 7)])),
        ]
        payload = merge_chrome_traces(lanes, align=False)
        assert validate_chrome_trace(payload) == []
        seen: dict[int, list[int]] = {}
        for event in payload["traceEvents"]:
            if event["ph"] == "C":
                seen.setdefault(event["pid"], []).append(event["ts"])
        for stamps in seen.values():
            assert stamps == sorted(stamps)

    def test_unaligned_merge_preserves_wall_clock_order(self):
        early = self._lane([("first", 100, 200)])
        late = self._lane([("second", 300, 400)])
        payload = merge_chrome_traces(
            [("a", early), ("b", late)], align=False
        )
        spans = {
            event["name"]: event["ts"]
            for event in payload["traceEvents"]
            if event["ph"] == "X"
        }
        assert spans["first"] < spans["second"]  # align=True would zero both
