"""Legacy shim so `pip install -e . --no-use-pep517` works offline.

The authoritative metadata lives in pyproject.toml; this file only exists
because the offline environment lacks the `wheel` package required by the
PEP-517 editable-install path.
"""

from setuptools import setup

setup()
