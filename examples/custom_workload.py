#!/usr/bin/env python3
"""Custom workloads: build, save, replay, and study your own access pattern.

The 14 SPEC models cover the paper's evaluation, but the library is meant
to be driven by *your* workloads too.  This example:

1. composes a custom trace from the stream primitives (a tight loop over a
   frequently-updated ring buffer plus a large read-mostly table scan),
2. saves it to the compact binary trace format and loads it back,
3. sweeps it over the security schemes, and
4. shows where its sequence-number distances live (why each scheme
   performs the way it does).

Run:  python examples/custom_workload.py
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro.cpu.system import collect_miss_trace, replay_miss_trace
from repro.cpu.tracefile import load_trace_file, save_trace_file
from repro.crypto.rng import HardwareRng
from repro.experiments import SCHEMES, apply_preseed, make_controller
from repro.experiments.config import TABLE1_256K
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.synthetic import (
    HotStream,
    StaticStream,
    StridedSweep,
    interleave,
    update_band,
)

REFERENCES = 12_000


def build_custom_workload():
    """A message-broker-ish pattern: hot ring buffer + big subscriber table."""
    rng = HardwareRng(seed=2025)
    streams = [
        # The ring buffer: small, rewritten constantly -> large counter
        # distances, the population regular prediction cannot reach.
        (0.30, update_band(0x1000_0000, num_lines=3 * 1024, mean_gap=8)),
        # The subscriber table: 2MB scanned in column order, mostly reads.
        (0.35, StridedSweep(0x2000_0000, num_lines=64 * 1024,
                            write_prob=0.2, mean_gap=9)),
        # Code and hot locals.
        (0.10, StaticStream(0x3000_0000, num_lines=8 * 1024, mean_gap=10)),
        (0.25, HotStream(0x4000_0000, mean_gap=7)),
    ]
    preseed = {}
    for _, stream in streams:
        preseed.update(stream.preseed(rng))
    return interleave(streams, REFERENCES, rng, burst_mean=12), preseed


def main() -> None:
    trace, preseed = build_custom_workload()
    print(f"built a custom trace: {len(trace)} references, "
          f"{len(preseed)} pre-seeded counters")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "broker.rtrc"
        save_trace_file(path, trace)
        print(f"saved to {path.name}: {path.stat().st_size} bytes "
              f"({path.stat().st_size / len(trace):.1f} B/reference)")
        trace = load_trace_file(path)

    print("\ndistance distribution of the pre-seeded counters:")
    buckets = Counter(min(d // 6, 4) for d in preseed.values())
    labels = ["0-5 (regular's reach)", "6-11", "12-17", "18-23", "24+"]
    for bucket, label in enumerate(labels):
        share = buckets.get(bucket, 0) / max(1, len(preseed))
        print(f"  {label:<22} {'#' * round(share * 40):<40} {share:.1%}")

    print("\ncollecting the miss stream once, replaying every scheme:")
    miss_trace = collect_miss_trace(
        trace,
        hierarchy=MemoryHierarchy(TABLE1_256K.hierarchy),
        flush_interval_instructions=TABLE1_256K.flush_interval_instructions,
    )
    print(f"  {miss_trace.l2_misses} L2 misses "
          f"({miss_trace.misses_per_kilo_instruction:.1f} per kilo-instruction)")

    print(f"\n{'scheme':<20}{'pred rate':>10}{'norm IPC':>10}")
    names = ["oracle", "direct_encryption", "baseline", "seqcache_128k",
             "pred_regular", "pred_two_level", "pred_context"]
    oracle = None
    for name in names:
        controller = make_controller(SCHEMES[name], TABLE1_256K)
        apply_preseed(controller, preseed)
        metrics = replay_miss_trace(
            miss_trace, controller, core=TABLE1_256K.core, scheme=name
        )
        if name == "oracle":
            oracle = metrics
        print(f"{name:<20}{metrics.prediction_rate:>10.3f}"
              f"{metrics.normalized_ipc(oracle):>10.3f}")

    print("\nreading the table: the ring buffer's large distances defeat")
    print("regular prediction, the range table and the LOR both track them —")
    print("the same separation Figures 12/13 show for twolf and vpr.")


if __name__ == "__main__":
    main()
