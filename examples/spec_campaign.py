#!/usr/bin/env python3
"""Mini evaluation campaign: hit rates and normalized IPC on SPEC models.

A scaled-down version of the paper's Figures 7/10/12 on a subset of the
SPEC2000-like workloads — useful for quickly seeing the headline result
(prediction beats large sequence-number caches; context prediction nearly
closes the gap to the oracle) without running the full benchmark harness.

Run:  python examples/spec_campaign.py [references]
"""

import sys

from repro.experiments import run_benchmark
from repro.experiments.report import series_average

BENCHMARKS = ("swim", "mcf", "twolf", "applu", "gzip")
SCHEMES = [
    "oracle",
    "baseline",
    "seqcache_128k",
    "seqcache_512k",
    "pred_regular",
    "pred_two_level",
    "pred_context",
]


def main() -> None:
    references = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000
    print(f"running {len(BENCHMARKS)} workloads x {len(SCHEMES)} schemes "
          f"({references} references each)...\n")

    hit_rates = {scheme: {} for scheme in SCHEMES}
    norm_ipc = {scheme: {} for scheme in SCHEMES}
    for benchmark in BENCHMARKS:
        results = run_benchmark(benchmark, SCHEMES, references=references)
        oracle = results["oracle"]
        for scheme in SCHEMES:
            metrics = results[scheme]
            if scheme.startswith("pred"):
                hit_rates[scheme][benchmark] = metrics.prediction_rate
            elif scheme.startswith("seqcache"):
                hit_rates[scheme][benchmark] = metrics.seqcache_hit_rate
            norm_ipc[scheme][benchmark] = metrics.normalized_ipc(oracle)

    print("sequence-number availability (hit rate at the L2 miss):")
    print(f"{'scheme':<18}" + "".join(f"{b:>9}" for b in BENCHMARKS) + f"{'avg':>9}")
    for scheme in SCHEMES:
        if scheme in ("oracle", "baseline"):
            continue
        row = f"{scheme:<18}"
        for benchmark in BENCHMARKS:
            row += f"{hit_rates[scheme][benchmark]:>9.3f}"
        row += f"{series_average(hit_rates[scheme]):>9.3f}"
        print(row)

    print("\nnormalized IPC (oracle = 1.0):")
    print(f"{'scheme':<18}" + "".join(f"{b:>9}" for b in BENCHMARKS) + f"{'avg':>9}")
    for scheme in SCHEMES:
        row = f"{scheme:<18}"
        for benchmark in BENCHMARKS:
            row += f"{norm_ipc[scheme][benchmark]:>9.3f}"
        row += f"{series_average(norm_ipc[scheme]):>9.3f}"
        print(row)

    baseline = series_average(norm_ipc["baseline"])
    regular = series_average(norm_ipc["pred_regular"])
    context = series_average(norm_ipc["pred_context"])
    print(f"\nprediction recovers {regular / baseline - 1:+.1%} IPC over the "
          f"unassisted baseline;")
    print(f"context-based prediction adds {context / regular - 1:+.1%} more and "
          f"reaches {context:.1%} of the oracle.")


if __name__ == "__main__":
    main()
