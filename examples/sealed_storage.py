#!/usr/bin/env python3
"""Sealed storage: tamper-evident encrypted state in untrusted memory.

Models the paper's motivating scenario (Section 1): a security system keeps
"important information and dynamic data ... encrypted or sealed ... when
they are stored in memory".  Here a toy digital-rights ledger lives in
counter-mode-encrypted RAM under a Merkle MAC tree; every update advances
the line counters, and any off-chip tampering — data flips, counter
rollback, splicing — is detected on load.

Run:  python examples/sealed_storage.py
"""

import json

from repro.secure import IntegrityError, SecureMemory

LEDGER_BASE = 0x10_0000
LINE = 32


def store_record(memory: SecureMemory, slot: int, record: dict) -> None:
    """Serialize a record into one 64-byte (two-line) ledger slot."""
    payload = json.dumps(record, separators=(",", ":")).encode()
    if len(payload) > 2 * LINE:
        raise ValueError("record too large for a ledger slot")
    memory.store(LEDGER_BASE + slot * 2 * LINE, payload.ljust(2 * LINE, b"\x00"))


def load_record(memory: SecureMemory, slot: int) -> dict:
    raw = memory.load(LEDGER_BASE + slot * 2 * LINE, 2 * LINE)
    return json.loads(raw.rstrip(b"\x00").decode())


def main() -> None:
    memory = SecureMemory(key=b"ledger-key".ljust(32, b"\x00"), integrity=True)

    print("== writing license ledger to untrusted RAM ==")
    licenses = [
        {"user": "alice", "title": "song-417", "plays": 3},
        {"user": "bob", "title": "film-042", "plays": 1},
    ]
    for slot, record in enumerate(licenses):
        store_record(memory, slot, record)
        print(f"slot {slot}: {record}")

    print("\n== legitimate update (counters advance) ==")
    licenses[0]["plays"] += 1
    store_record(memory, 0, licenses[0])
    seq = memory.controller.backing.read_seqnum(LEDGER_BASE)
    print(f"updated slot 0; line counter in RAM is now {seq:#018x}")
    print(f"read back: {load_record(memory, 0)}")
    assert load_record(memory, 0)["plays"] == 4

    print("\n== attack 1: flip bits in the ciphertext ==")
    memory.controller.backing.tamper_line(LEDGER_BASE, b"\x00\x00\x00\x00\xff")
    try:
        load_record(memory, 0)
        raise SystemExit("UNDETECTED TAMPERING — this must not happen")
    except IntegrityError as error:
        print(f"detected: {error}")

    # Restore by rewriting the record through the legitimate path.
    store_record(memory, 0, licenses[0])

    print("\n== attack 2: roll the counter back (replay) ==")
    backing = memory.controller.backing
    old_counter = backing.read_seqnum(LEDGER_BASE)
    licenses[0]["plays"] += 1
    store_record(memory, 0, licenses[0])
    backing.write_seqnum(LEDGER_BASE, old_counter)  # adversary rewinds
    try:
        load_record(memory, 0)
        raise SystemExit("UNDETECTED REPLAY — this must not happen")
    except IntegrityError as error:
        print(f"detected: {error}")

    print("\n== audit ==")
    auditor = memory.controller.auditor
    print(f"{auditor.seals} line encryptions, pad reuses: {auditor.reuses}")
    assert auditor.clean
    print("no (address, counter) pair was ever used to encrypt twice — the")
    print("counter-mode security invariant held throughout.")


if __name__ == "__main__":
    main()
