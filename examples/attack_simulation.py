#!/usr/bin/env python3
"""Attack simulation: what the adversary sees, tries, and why it fails.

Walks through the security analysis of Section 4 with concrete bytes:

1. counters in RAM are public — and that's fine (security never relied on
   their secrecy);
2. blocks sharing a sequence number still get distinct pads (the address
   is in the AES input);
3. prediction leaks nothing: guessing the counter does not help compute
   the pad without the key;
4. counter mode alone is malleable — the integrity tree is what stops
   bit-flipping;
5. pad reuse is the catastrophic failure the write-back rules prevent —
   demonstrated by breaking the rules on purpose.

Run:  python examples/attack_simulation.py
"""

from repro.crypto import AES, make_counter_block, xor_bytes
from repro.secure import (
    OtpGenerator,
    PadReuseAuditor,
    PadReuseError,
    SecureMemory,
    malleability_demo,
    pads_are_unique,
)

KEY = b"processor-secret".ljust(32, b"\x00")


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    memory = SecureMemory(KEY)
    memory.store(0x1000, b"the plans for the vault".ljust(32, b"\x00"))

    section("1. the adversary's view of RAM")
    backing = memory.controller.backing
    print(f"ciphertext : {backing.read_line(0x1000).hex()}")
    print(f"counter    : {backing.read_seqnum(0x1000):#018x}  (stored in the clear)")
    print("Counters are public by design; the proof of CTR security [Bellare")
    print("et al.] does not require counter secrecy — only freshness.")

    section("2. shared counters, distinct pads")
    addresses = [0x2000 + i * 32 for i in range(4)]
    assert pads_are_unique(KEY, addresses, seqnum=7)
    print(f"4 lines sealed under the SAME counter 7: all pads distinct -> OK")
    generator = OtpGenerator(KEY)
    for address in addresses[:2]:
        print(f"  pad({address:#x}, 7) = {generator.pad(address, 7)[:8].hex()}...")

    section("3. predicting the counter does not predict the pad")
    print("The predictor guesses counter values; the pad also needs the key:")
    cipher = AES(KEY)
    block = make_counter_block(0x1000, 1)
    print(f"  AES input (public)  : {block.hex()}")
    print(f"  pad with real key   : {cipher.encrypt_block(block)[:8].hex()}...")
    wrong = AES(bytes(32))
    print(f"  pad with guessed key: {wrong.encrypt_block(block)[:8].hex()}...")
    print("Knowing (address, counter) is useless without the 256-bit key.")

    section("4. malleability without integrity")
    plaintext = bytes(32)
    flipped = malleability_demo(KEY, 0x3000, 5, plaintext)
    print(f"adversary flips ciphertext bit 0 -> decrypted[0] becomes "
          f"{flipped[0]:#04x} (was 0x00)")
    print("This is why the architecture mounts a MAC tree on top of CTR")
    print("(Section 2.1); SecureMemory(integrity=True) rejects such loads.")

    section("5. the invariant: never encrypt twice under one (address, counter)")
    auditor = PadReuseAuditor()
    auditor.on_seal(0x4000, 10)
    print("sealed line 0x4000 under counter 10: ok")
    try:
        auditor.on_seal(0x4000, 10)
    except PadReuseError as error:
        print(f"sealing it again under counter 10: {error}")
    print("The write-back path makes reuse impossible: counters increment on")
    print("every dirty eviction and re-root to fresh 64-bit randomness on")
    print("reset — wrap-around would take 2^64 write-backs (centuries).")

    auditor_state = memory.controller.auditor
    print(f"\nlive system audit: {auditor_state.seals} seals, "
          f"{auditor_state.reuses} reuses")


if __name__ == "__main__":
    main()
