#!/usr/bin/env python3
"""Quickstart: encrypted memory with OTP prediction in ~40 lines.

Creates a counter-mode protected memory, stores and loads data through the
full architectural model (AES pads, per-line counters, integrity tree), and
shows the latency-hiding numbers the paper is about.

Run:  python examples/quickstart.py
"""

from repro.secure import SecureMemory


def main() -> None:
    # A 256-bit process key, as held by the secure processor.
    memory = SecureMemory(key=bytes(range(32)))

    print("== storing data into untrusted RAM ==")
    secret = b"counter mode + prediction = fast".ljust(64, b"\x00")
    memory.store(0x1000, secret)
    raw = memory.controller.backing.read_line(0x1000)
    print(f"plaintext : {secret[:32].hex()}")
    print(f"in RAM    : {raw.hex()}   <- ciphertext only")

    print("\n== loading it back ==")
    result = memory.load_line(0x1000)
    assert result.plaintext == secret[:32]
    print(f"decrypted : {result.plaintext.hex()}")
    print(f"sequence number predicted: {result.predicted}")
    print(f"line from DRAM at cycle {result.line_ready - result.issue_time}, "
          f"pad ready at cycle {result.pad_ready - result.issue_time}, "
          f"data usable at cycle {result.exposed_latency}")
    print(f"decryption overhead beyond the raw fetch: "
          f"{result.decryption_overhead} cycles")

    print("\n== why prediction matters ==")
    print("Touch 64 fresh lines; their counters sit at the page root, so")
    print("the context predictor precomputes every pad during the fetch:")
    for i in range(64):
        memory.load_line(0x8000 + i * 32)
    print(f"prediction rate: {memory.prediction_rate:.1%}")
    stats = memory.controller.stats
    print(f"fetches covered without serializing on the counter: "
          f"{stats.coverage:.1%}")
    print(f"mean exposed miss latency: {stats.mean_exposed_latency:.0f} cycles")


if __name__ == "__main__":
    main()
