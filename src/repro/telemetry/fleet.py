"""Cross-process job tracing: context propagation and fleet trace folding.

A job's life spans at least three execution contexts — the HTTP server
that accepts it, the scheduler loop that admits and runs it, and the
fabric/supervisor workers (often separate OS processes) that compute its
cells.  Each already journals what it did (job journal, sweep manifest,
lease beacons); what was missing is the *correlation*: a way to say
"these manifest lines, in that worker, belong to this submission".

:class:`TraceContext` is that correlation: a ``(job_id, span_id,
parent_id)`` triple minted when ``POST /v1/jobs`` accepts a spec and
carried two ways at once —

* a **thread-local activation** (:meth:`TraceContext.activate`) for
  code running in the service process (scheduler thread, in-process
  fabric worker 0), read back via :func:`current_trace_context`;
* the ``REPRO_TRACE`` **environment variable**, inherited by forked
  worker processes (fabric drain peers, supervised cell workers), so a
  process that never saw the request still stamps its journal lines.

Layers append ``{"event": "span", ...}`` records (built by
:func:`span_record`) to the job journal, and the sweep manifest's
writer tags every line with ``ts``/``pid``/``trace`` when a context is
active.  :func:`fleet_trace` then folds journal + manifest + worker
beacons into one Chrome trace via
:func:`~repro.telemetry.events.merge_chrome_traces` — one process lane
per role (``server``, ``scheduler``, ``worker-*``), all on the shared
wall-clock axis anchored at the job's submission (``align=False``; the
per-lane alignment used by ``repro trace --diff`` would destroy the
cross-lane ordering this view exists to show).

Import discipline: this module sits in ``repro.telemetry`` and therefore
imports nothing from the rest of ``repro`` at module level; journal
parsing helpers are imported lazily inside :func:`fleet_trace`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.telemetry.events import EventTracer, merge_chrome_traces

__all__ = [
    "TRACE_ENV",
    "TraceContext",
    "current_trace_context",
    "span_record",
    "fleet_trace",
]

#: Environment variable carrying the active context into forked workers.
TRACE_ENV = "REPRO_TRACE"

_LOCAL = threading.local()


def _new_span_id() -> str:
    return os.urandom(4).hex()


@dataclass(frozen=True)
class TraceContext:
    """One job's correlation triple, propagated through every layer."""

    job_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def mint(cls, job_id: str) -> "TraceContext":
        """The root context, created where the job enters the system."""
        return cls(job_id=job_id, span_id=_new_span_id())

    def child(self) -> "TraceContext":
        """A fresh span under this one (each layer opens its own)."""
        return TraceContext(
            job_id=self.job_id,
            span_id=_new_span_id(),
            parent_id=self.span_id,
        )

    def to_dict(self) -> dict:
        payload = {"job_id": self.job_id, "span_id": self.span_id}
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        return cls(
            job_id=payload["job_id"],
            span_id=payload.get("span_id", "0"),
            parent_id=payload.get("parent_id"),
        )

    def to_env(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_env(cls, environ=None) -> "TraceContext | None":
        raw = (environ if environ is not None else os.environ).get(TRACE_ENV)
        if not raw:
            return None
        try:
            return cls.from_dict(json.loads(raw))
        except (ValueError, KeyError, TypeError):
            return None  # a torn/foreign value must never break a worker

    @contextmanager
    def activate(self):
        """Make this context current for the thread *and* child processes.

        Sets the thread-local slot (read by journal writers in this
        process) and ``REPRO_TRACE`` in the environment (inherited by
        workers forked while the job runs); both are restored on exit.
        The environment is process-global, so two jobs executing
        concurrently in one service share a fork-carriage slot — forked
        workers then attribute their lines to whichever job forked them,
        which is exactly the lines' true parentage.
        """
        previous_local = getattr(_LOCAL, "context", None)
        previous_env = os.environ.get(TRACE_ENV)
        _LOCAL.context = self
        os.environ[TRACE_ENV] = self.to_env()
        try:
            yield self
        finally:
            _LOCAL.context = previous_local
            if previous_env is None:
                os.environ.pop(TRACE_ENV, None)
            else:
                os.environ[TRACE_ENV] = previous_env


def current_trace_context() -> TraceContext | None:
    """The active context: thread-local first, then the environment.

    The thread-local wins so two scheduler threads running different
    jobs never cross-tag; the environment fallback is what a forked
    fabric worker (which inherited ``REPRO_TRACE`` but never called
    :meth:`TraceContext.activate`) resolves.
    """
    context = getattr(_LOCAL, "context", None)
    if context is not None:
        return context
    return TraceContext.from_env()


def span_record(name: str, role: str, trace: TraceContext, **extra) -> dict:
    """One typed span event for the job journal.

    ``name`` is the lifecycle step (``submitted`` / ``admitted`` /
    ``scheduled`` / ``result_stored``...), ``role`` the lane it renders
    in (``server`` / ``scheduler`` / ``worker-...``).
    """
    record = {
        "event": "span",
        "name": name,
        "role": role,
        "ts": time.time(),
        "pid": os.getpid(),
        "trace": trace.to_dict(),
    }
    for key, value in extra.items():
        if value is not None:
            record[key] = value
    return record


# --------------------------------------------------------------------------
# Fleet trace folding
# --------------------------------------------------------------------------


def _at(ts: float, epoch: float) -> int:
    """Wall seconds → int µs on the shared axis, clamped non-negative."""
    return max(0, int(round((ts - epoch) * 1_000_000)))


def _manifest_lane(record: dict, scheduler_pid: int | None) -> str:
    """Which process lane a manifest line belongs to.

    Fabric lines carry their worker's ``owner``; supervised lines only a
    ``pid``.  Lines written by the service process itself (supervised
    cells, fabric worker 0 draining in-process) fold into the scheduler
    lane — they genuinely ran there.
    """
    owner = record.get("owner")
    if owner:
        return f"worker-{owner}"
    pid = record.get("pid")
    if pid is not None and pid != scheduler_pid:
        return f"worker-pid{pid}"
    return "scheduler"


def fleet_trace(job_id: str, store=None, cache_root=None) -> dict:
    """Fold one job's fleet-wide records into a single Chrome trace.

    Sources, all read from disk (no live service required):

    * the **job journal** — lifecycle spans from server and scheduler,
      linked by a flow arrow on the scheduler lane (``queued`` →
      ``running`` → terminal);
    * the **sweep manifest** — per-cell ``start``/``done``/``failed``
      lines, assigned to worker lanes by owner/pid and filtered to this
      job (by trace tag when present, else by the job's time window);
    * the **worker beacons** under the sweep's lease directory — instant
      markers with each worker's last reported state and stats.

    Returns the merged Chrome payload (``align=False`` — every lane
    shares the wall-clock axis anchored at submission).  The result
    passes :func:`~repro.telemetry.events.validate_chrome_trace`; lanes
    appear even for processes that only wrote manifest lines.
    """
    from repro.experiments.cache import default_cache
    from repro.experiments.supervisor import manifest_path, parse_manifest_line
    from repro.service.queue import JobStore

    if store is None:
        store = JobStore()
    cache_root = Path(cache_root) if cache_root else default_cache().root

    record = store.job(job_id)
    epoch = record.submitted or min(
        (e["ts"] for e in record.events if isinstance(e.get("ts"), (int, float))),
        default=time.time(),
    )

    lanes: dict[str, EventTracer] = {}

    def lane(name: str) -> EventTracer:
        tracer = lanes.get(name)
        if tracer is None:
            tracer = lanes[name] = EventTracer()
        return tracer

    # Lane order in the merged view: server on top, scheduler, workers.
    lane("server")
    scheduler_lane = lane("scheduler")

    # -- job journal: lifecycle spans + the state flow ----------------------
    scheduler_pid: int | None = None
    states: list[tuple[float, str]] = [(record.submitted, "queued")]
    for event in record.events:
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        kind = event.get("event")
        if kind == "span":
            role = str(event.get("role", "scheduler"))
            if role == "scheduler" and isinstance(event.get("pid"), int):
                scheduler_pid = event["pid"]
            args = {
                key: value
                for key, value in event.items()
                if key in ("pid", "detail", "owner", "token")
            }
            trace = event.get("trace") or {}
            args["span_id"] = trace.get("span_id")
            lane(role).instant(
                str(event.get("name", "span")),
                at=_at(ts, epoch),
                track="job",
                category="lifecycle",
                **args,
            )
        elif kind == "state":
            states.append((ts, str(event.get("state", "?"))))
        elif kind == "latency":
            for name, value in event.items():
                if name.endswith("_sec") and isinstance(value, (int, float)):
                    scheduler_lane.counter(
                        f"latency.{name}",
                        at=_at(ts, epoch),
                        track="latency",
                        seconds=round(value, 6),
                    )

    # The job's state machine as spans + one flow arrow, all on the
    # scheduler lane (merged flow ids are namespaced per lane, so the
    # arrow cannot legally cross lanes — see merge_chrome_traces).
    states.sort(key=lambda pair: pair[0])
    # The journal's own "queued" line duplicates the seeded submission
    # state; collapse consecutive repeats so each state renders once.
    deduped: list[tuple[float, str]] = []
    for ts, state in states:
        if not deduped or deduped[-1][1] != state:
            deduped.append((ts, state))
    states = deduped
    flow_id = scheduler_lane.next_flow_id()
    last_index = len(states) - 1
    for index, (ts, state) in enumerate(states):
        start = _at(ts, epoch)
        end = _at(states[index + 1][0], epoch) if index < last_index else start
        scheduler_lane.span(
            f"job:{state}", start=start, end=end, track="job.state",
            category="lifecycle", state=state,
        )
        if index == 0:
            scheduler_lane.flow_begin("job", at=start, flow_id=flow_id,
                                      track="job.state", state=state)
        elif index == last_index:
            scheduler_lane.flow_end("job", at=start, flow_id=flow_id,
                                    track="job.state", state=state)
        else:
            scheduler_lane.flow_step("job", at=start, flow_id=flow_id,
                                     track="job.state", state=state)

    terminal_ts = states[-1][0] if record.terminal else time.time()

    # -- sweep manifest: per-cell spans on worker lanes ---------------------
    sweep_key = record.spec.sweep_key
    try:
        manifest_text = manifest_path(cache_root, sweep_key).read_text()
    except OSError:
        manifest_text = ""
    # start events awaiting their done/failed, keyed per lane + cell key.
    open_starts: dict[tuple[str, str], dict] = {}
    for line in manifest_text.splitlines():
        line = line.strip()
        if not line:
            continue
        parsed = parse_manifest_line(line)
        if parsed is None or "event" not in parsed:
            continue
        ts = parsed.get("ts")
        if not isinstance(ts, (int, float)):
            continue  # pre-observability manifest lines carry no clock
        trace = parsed.get("trace") or {}
        if trace:
            if trace.get("job_id") != job_id:
                continue  # another job sharing this sweep's manifest
        elif not (epoch - 1.0 <= ts <= terminal_ts + 1.0):
            continue  # untagged line outside this job's life
        lane_name = _manifest_lane(parsed, scheduler_pid)
        tracer = lane(lane_name)
        cell = str(parsed.get("cell", parsed.get("key", "?")))
        event = parsed["event"]
        if event == "start":
            open_starts[(lane_name, str(parsed.get("key")))] = parsed
            if "token" in parsed:
                tracer.instant(
                    "lease_claimed", at=_at(ts, epoch), track="cells",
                    category="lifecycle", cell=cell,
                    owner=parsed.get("owner"), token=parsed.get("token"),
                )
        elif event in ("done", "failed", "degrade"):
            started = open_starts.pop((lane_name, str(parsed.get("key"))), None)
            begin = started.get("ts") if started else ts
            tracer.span(
                f"cell:{cell}",
                start=_at(begin, epoch),
                end=_at(ts, epoch),
                track="cells",
                category="cell",
                outcome=event,
                source=parsed.get("source"),
                owner=parsed.get("owner"),
            )
    # Cells that started but never finished (job failed / still running).
    for (lane_name, _), started in open_starts.items():
        lane(lane_name).instant(
            "cell_started",
            at=_at(started["ts"], epoch),
            track="cells",
            category="cell",
            cell=str(started.get("cell", "?")),
        )

    # -- worker beacons: last-known state markers ---------------------------
    workers_dir = cache_root / "leases" / sweep_key / "workers"
    if workers_dir.is_dir():
        for path in sorted(workers_dir.glob("*.json")):
            try:
                beacon = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            updated = beacon.get("updated")
            if not isinstance(updated, (int, float)):
                continue
            if not (epoch - 1.0 <= updated <= terminal_ts + 60.0):
                continue  # beacon from some other sweep generation
            owner = str(beacon.get("owner", path.stem))
            lane(f"worker-{owner}").instant(
                "beacon",
                at=_at(updated, epoch),
                track="beacon",
                category="lifecycle",
                state=beacon.get("state"),
                executed=beacon.get("stats", {}).get("cells_executed"),
                fenced_out=beacon.get("stats", {}).get("cells_fenced_out"),
            )

    ordered = ["server", "scheduler"] + sorted(
        name for name in lanes if name not in ("server", "scheduler")
    )
    return merge_chrome_traces(
        [(name, lanes[name]) for name in ordered],
        metadata={
            "clock": "wall time since submission (us)",
            "job_id": job_id,
            "sweep_key": sweep_key,
            "state": record.state,
            "tenant": record.spec.tenant,
        },
        align=False,
    )
