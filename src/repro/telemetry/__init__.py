"""Unified observability: metrics, event tracing, and profiling.

Every paper claim this repository reproduces — prediction rate, engine
occupancy, stall breakdown, the Section 5.2 engine-latency sensitivity — is
an argument about *where cycles and probes go*.  This package is the
instrument rack that makes those arguments checkable on any run:

* :mod:`repro.telemetry.registry` — typed counters / gauges / histograms
  with hierarchical dotted names (``secure.controller.prediction_hits``,
  ``crypto.engine.occupancy``).  A disabled registry hands out shared
  null instruments, so instrumented code pays one attribute check and
  nothing else.
* :mod:`repro.telemetry.events` — a bounded ring-buffer tracer for
  cycle-stamped spans (L2 miss issue → speculate → DRAM return →
  match/XOR) with Chrome ``trace_event`` JSON export; the files open
  directly in ``chrome://tracing`` or https://ui.perfetto.dev.
* :mod:`repro.telemetry.snapshot` — a mergeable, diffable, JSON-stable
  :class:`~repro.telemetry.snapshot.MetricsSnapshot`; parallel sweep
  workers return snapshots that merge deterministically into grid totals.
* :mod:`repro.telemetry.profile` — wall-time ``perf_counter`` scopes
  around the hot paths (batch AES, pad memo, hierarchy simulation) that
  collapse to a shared no-op object while profiling is off.
* :mod:`repro.telemetry.fleet` — cross-process job tracing: the
  :class:`~repro.telemetry.fleet.TraceContext` minted at job submission
  and carried (thread-local + ``REPRO_TRACE``) into scheduler, supervisor
  and fabric workers, plus the fold of journal + manifest + beacons into
  one Chrome trace (``repro trace --job``).
* :mod:`repro.telemetry.prometheus` — Prometheus text exposition over the
  registry (``GET /metrics``) and the pure-python linter CI scrapes with.
* :mod:`repro.telemetry.log` — structured (JSONL-capable) operational
  logging with bound job/tenant/lease fields, adopted by every fleet
  component's failure paths.
* :mod:`repro.telemetry.top` — the ``repro top`` fleet dashboard, folded
  entirely from durable on-disk state.

The package deliberately imports nothing from the rest of ``repro`` at
module level, so any layer — crypto, memory, secure, experiments — can
depend on it (``fleet``/``top`` reach into the service and fabric layers
lazily, inside their folding functions only).
"""

from repro.telemetry.events import (
    NULL_TRACER,
    EventTracer,
    NullTracer,
    TraceEvent,
    merge_chrome_traces,
    validate_chrome_trace,
)
from repro.telemetry.fleet import (
    TraceContext,
    current_trace_context,
    fleet_trace,
    span_record,
)
from repro.telemetry.log import StructuredLogger, get_logger
from repro.telemetry.profile import PROFILER, Profiler, profile_scope
from repro.telemetry.prometheus import (
    check_monotone_counters,
    encode_exposition,
    lint_exposition,
    parse_exposition,
)
from repro.telemetry.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.telemetry.snapshot import (
    MetricsSnapshot,
    SnapshotSeries,
    merge_snapshots,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "TraceEvent",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
    "merge_chrome_traces",
    "validate_chrome_trace",
    "MetricsSnapshot",
    "SnapshotSeries",
    "merge_snapshots",
    "Profiler",
    "PROFILER",
    "profile_scope",
    "TraceContext",
    "current_trace_context",
    "fleet_trace",
    "span_record",
    "StructuredLogger",
    "get_logger",
    "encode_exposition",
    "parse_exposition",
    "lint_exposition",
    "check_monotone_counters",
]
