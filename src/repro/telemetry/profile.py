"""Lightweight wall-time profiling scopes for the simulator's hot paths.

Unlike the cycle-accurate metrics (which measure the *modeled* machine),
these scopes measure the *simulator itself* — where real ``perf_counter``
seconds go: the batched AES calls, the pad memo, the cache-hierarchy
simulation, the replay loop.  They exist so perf PRs can claim "this made
the hot path N% faster" with numbers attached.

Overhead policy: the module-level :data:`PROFILER` starts disabled, and
:func:`profile_scope` then returns one shared null context manager — a
call, a dict-free branch, and nothing else — so leaving scopes in hot
code is safe.  Enable with ``PROFILER.enable()`` (the CLI's ``repro trace
--profile`` does) or the ``REPRO_PROFILE`` environment variable.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

__all__ = ["ScopeStats", "Profiler", "PROFILER", "profile_scope", "PROFILE_ENV"]

PROFILE_ENV = "REPRO_PROFILE"


@dataclass
class ScopeStats:
    """Accumulated wall time for one named scope."""

    calls: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class _Scope:
    """Context manager timing one entry of a named scope."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._profiler._record(self._name, time.perf_counter() - self._start)
        return False


class _NullScope:
    """Shared do-nothing scope returned while profiling is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SCOPE = _NullScope()


class Profiler:
    """Registry of named wall-time scopes."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._scopes: dict[str, ScopeStats] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._scopes.clear()

    def scope(self, name: str):
        """A context manager timing ``name`` (no-op while disabled)."""
        if not self.enabled:
            return _NULL_SCOPE
        return _Scope(self, name)

    def _record(self, name: str, seconds: float) -> None:
        stats = self._scopes.get(name)
        if stats is None:
            stats = self._scopes[name] = ScopeStats()
        stats.calls += 1
        stats.total_seconds += seconds
        stats.max_seconds = max(stats.max_seconds, seconds)

    def stats(self, name: str) -> ScopeStats | None:
        return self._scopes.get(name)

    def report(self) -> dict[str, dict]:
        """``{scope: {calls, total_seconds, mean_seconds, max_seconds}}``."""
        return {
            name: {
                "calls": stats.calls,
                "total_seconds": stats.total_seconds,
                "mean_seconds": stats.mean_seconds,
                "max_seconds": stats.max_seconds,
            }
            for name, stats in sorted(self._scopes.items())
        }

    def render(self) -> str:
        """Human-readable table, slowest scope first."""
        if not self._scopes:
            return "profiler: no scopes recorded"
        rows = sorted(
            self._scopes.items(), key=lambda kv: -kv[1].total_seconds
        )
        width = max(len(name) for name, _ in rows)
        lines = [f"{'scope':<{width}}  {'calls':>8}  {'total':>10}  {'mean':>10}"]
        for name, stats in rows:
            lines.append(
                f"{name:<{width}}  {stats.calls:>8}  "
                f"{stats.total_seconds:>9.4f}s  {stats.mean_seconds * 1e6:>8.1f}us"
            )
        return "\n".join(lines)

    def publish(self, registry, prefix: str = "profile") -> None:
        """Export scope totals into a metric registry (gauges + counters)."""
        for name, stats in sorted(self._scopes.items()):
            base = f"{prefix}.{name}"
            registry.counter(f"{base}.calls").inc(stats.calls)
            registry.gauge(f"{base}.total_seconds").set(stats.total_seconds)
            registry.gauge(f"{base}.mean_seconds").set(stats.mean_seconds)


#: Process-wide profiler; disabled unless REPRO_PROFILE is set (or a caller
#: such as ``repro trace --profile`` enables it explicitly).
PROFILER = Profiler(enabled=bool(os.environ.get(PROFILE_ENV)))


def profile_scope(name: str):
    """``with profile_scope("crypto.batch_aes"): ...`` on the global profiler."""
    return PROFILER.scope(name)
