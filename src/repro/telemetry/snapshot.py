"""Mergeable, diffable, JSON-stable metric snapshots.

A :class:`MetricsSnapshot` freezes a registry's instruments into plain
data: ``values`` maps hierarchical names to exported values, ``kinds``
records each name's instrument kind (the merge rule), and ``meta`` carries
run labels (benchmark, scheme, seed ...).

Merge semantics are per-kind and deliberately order-independent:

* counters **sum** — a grid total is the sum of its cells;
* gauges take the **max** — "worst occupancy seen across cells";
* histograms sum **bucket-wise** (bounds must agree).

Because each rule is commutative and associative, merging a sweep's cell
snapshots in any deterministic order yields the same grid totals — which
is how the parallel engine's workers and the serial loop are proven to
agree (see ``tests/experiments/test_parallel.py``).

``diff`` supports A/B runs: it subtracts numeric metrics name-by-name, the
substrate of "this change moved ``secure.controller.covered_fetches`` by
+4 %" claims in perf PRs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["MetricsSnapshot", "merge_snapshots"]

SNAPSHOT_SCHEMA = "repro.telemetry.snapshot/v1"


def _merge_value(kind: str, left, right):
    if kind == "counter":
        return left + right
    if kind == "gauge":
        return max(left, right)
    if kind == "histogram":
        if left["bounds"] != right["bounds"]:
            raise ValueError("cannot merge histograms with different bounds")
        return {
            "bounds": list(left["bounds"]),
            "counts": [a + b for a, b in zip(left["counts"], right["counts"])],
            "sum": left["sum"] + right["sum"],
            "count": left["count"] + right["count"],
        }
    raise ValueError(f"unknown metric kind {kind!r}")


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time export of a metric registry."""

    values: dict = field(default_factory=dict)
    kinds: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = set(self.values) - set(self.kinds)
        if missing:
            raise ValueError(
                f"metrics without a kind: {', '.join(sorted(missing))}"
            )

    def __len__(self) -> int:
        return len(self.values)

    def get(self, name: str, default=None):
        return self.values.get(name, default)

    # -- merge -----------------------------------------------------------------

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots under the per-kind merge rules.

        Metrics present on only one side pass through unchanged; a name
        registered with different kinds on the two sides is an error.
        ``meta`` keeps the keys on which both sides agree and counts the
        merged cells under ``"merged_cells"``.
        """
        values = dict(self.values)
        kinds = dict(self.kinds)
        for name, right in other.values.items():
            kind = other.kinds[name]
            if name not in values:
                values[name] = right
                kinds[name] = kind
                continue
            if kinds[name] != kind:
                raise ValueError(
                    f"metric {name!r} is a {kinds[name]} on one side and a "
                    f"{kind} on the other"
                )
            values[name] = _merge_value(kind, values[name], right)
        meta = {
            key: value
            for key, value in self.meta.items()
            if key != "merged_cells" and other.meta.get(key) == value
        }
        meta["merged_cells"] = (
            self.meta.get("merged_cells", 1) + other.meta.get("merged_cells", 1)
        )
        return MetricsSnapshot(
            values={name: values[name] for name in sorted(values)},
            kinds={name: kinds[name] for name in sorted(kinds)},
            meta=meta,
        )

    # -- diff ------------------------------------------------------------------

    def diff(self, baseline: "MetricsSnapshot") -> dict:
        """``self - baseline`` per metric, for A/B comparisons.

        Counters and gauges subtract numerically; histograms compare mean
        and count.  Metrics present on only one side are reported under
        ``"only_in_current"`` / ``"only_in_baseline"``.
        """
        deltas: dict[str, object] = {}
        for name in sorted(set(self.values) & set(baseline.values)):
            kind = self.kinds[name]
            current, base = self.values[name], baseline.values[name]
            if kind == "histogram":
                cur_mean = current["sum"] / current["count"] if current["count"] else 0.0
                base_mean = base["sum"] / base["count"] if base["count"] else 0.0
                delta = {
                    "mean": cur_mean - base_mean,
                    "count": current["count"] - base["count"],
                }
                if delta["mean"] or delta["count"]:
                    deltas[name] = delta
            else:
                if current != base:
                    deltas[name] = current - base
        return {
            "changed": deltas,
            "only_in_current": sorted(set(self.values) - set(baseline.values)),
            "only_in_baseline": sorted(set(baseline.values) - set(self.values)),
        }

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "meta": dict(self.meta),
            "kinds": {name: self.kinds[name] for name in sorted(self.kinds)},
            "metrics": {name: self.values[name] for name in sorted(self.values)},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsSnapshot":
        if payload.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"not a telemetry snapshot (schema {payload.get('schema')!r})"
            )
        return cls(
            values=dict(payload["metrics"]),
            kinds=dict(payload["kinds"]),
            meta=dict(payload.get("meta", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path) -> "MetricsSnapshot":
        return cls.from_json(Path(path).read_text())


def merge_snapshots(snapshots) -> MetricsSnapshot:
    """Fold any iterable of snapshots into one (empty iterable -> empty)."""
    merged = None
    for snapshot in snapshots:
        merged = snapshot if merged is None else merged.merge(snapshot)
    return merged if merged is not None else MetricsSnapshot()
