"""Mergeable, diffable, JSON-stable metric snapshots.

A :class:`MetricsSnapshot` freezes a registry's instruments into plain
data: ``values`` maps hierarchical names to exported values, ``kinds``
records each name's instrument kind (the merge rule), and ``meta`` carries
run labels (benchmark, scheme, seed ...).

Merge semantics are per-kind and deliberately order-independent:

* counters **sum** — a grid total is the sum of its cells;
* gauges take the **max** — "worst occupancy seen across cells";
* histograms sum **bucket-wise** (bounds must agree).

Because each rule is commutative and associative, merging a sweep's cell
snapshots in any deterministic order yields the same grid totals — which
is how the parallel engine's workers and the serial loop are proven to
agree (see ``tests/experiments/test_parallel.py``).

``diff`` supports A/B runs: it subtracts numeric metrics name-by-name, the
substrate of "this change moved ``secure.controller.covered_fetches`` by
+4 %" claims in perf PRs.

:class:`SnapshotSeries` is the retention layer on top: an ordered sequence
of *cumulative* snapshots spilled every N accesses during a replay, stored
as versioned JSONL.  Because samples are cumulative, the last sample *is*
the run's final snapshot (``final``), and the windowed view —
:meth:`SnapshotSeries.window_diffs` / :meth:`SnapshotSeries.window_rates`
— falls out of :meth:`MetricsSnapshot.diff` between consecutive samples.
That is the drift-detection substrate: a prediction-rate collapse after a
counter wrap is invisible in the final merge but obvious in the per-window
rate series.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.ioutil import atomic_write_text

__all__ = ["MetricsSnapshot", "SnapshotSeries", "merge_snapshots"]

SNAPSHOT_SCHEMA = "repro.telemetry.snapshot/v1"
SERIES_SCHEMA = "repro.telemetry.series/v1"


def _merge_value(kind: str, left, right):
    if kind == "counter":
        return left + right
    if kind == "gauge":
        return max(left, right)
    if kind == "histogram":
        if left["bounds"] != right["bounds"]:
            raise ValueError("cannot merge histograms with different bounds")
        return {
            "bounds": list(left["bounds"]),
            "counts": [a + b for a, b in zip(left["counts"], right["counts"])],
            "sum": left["sum"] + right["sum"],
            "count": left["count"] + right["count"],
        }
    raise ValueError(f"unknown metric kind {kind!r}")


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time export of a metric registry."""

    values: dict = field(default_factory=dict)
    kinds: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = set(self.values) - set(self.kinds)
        if missing:
            raise ValueError(
                f"metrics without a kind: {', '.join(sorted(missing))}"
            )

    def __len__(self) -> int:
        return len(self.values)

    def get(self, name: str, default=None):
        return self.values.get(name, default)

    # -- merge -----------------------------------------------------------------

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots under the per-kind merge rules.

        Metrics present on only one side pass through unchanged; a name
        registered with different kinds on the two sides is an error.
        ``meta`` keeps the keys on which both sides agree and counts the
        merged cells under ``"merged_cells"``.
        """
        values = dict(self.values)
        kinds = dict(self.kinds)
        for name, right in other.values.items():
            kind = other.kinds[name]
            if name not in values:
                values[name] = right
                kinds[name] = kind
                continue
            if kinds[name] != kind:
                raise ValueError(
                    f"metric {name!r} is a {kinds[name]} on one side and a "
                    f"{kind} on the other"
                )
            values[name] = _merge_value(kind, values[name], right)
        meta = {
            key: value
            for key, value in self.meta.items()
            if key != "merged_cells" and other.meta.get(key) == value
        }
        meta["merged_cells"] = (
            self.meta.get("merged_cells", 1) + other.meta.get("merged_cells", 1)
        )
        return MetricsSnapshot(
            values={name: values[name] for name in sorted(values)},
            kinds={name: kinds[name] for name in sorted(kinds)},
            meta=meta,
        )

    # -- diff ------------------------------------------------------------------

    def diff(self, baseline: "MetricsSnapshot") -> dict:
        """``self - baseline`` per metric, for A/B comparisons.

        Counters and gauges subtract numerically; histograms compare mean
        and count.  Metrics present on only one side are reported under
        ``"only_in_current"`` / ``"only_in_baseline"``.
        """
        deltas: dict[str, object] = {}
        for name in sorted(set(self.values) & set(baseline.values)):
            kind = self.kinds[name]
            current, base = self.values[name], baseline.values[name]
            if kind == "histogram":
                cur_mean = current["sum"] / current["count"] if current["count"] else 0.0
                base_mean = base["sum"] / base["count"] if base["count"] else 0.0
                delta = {
                    "mean": cur_mean - base_mean,
                    "count": current["count"] - base["count"],
                }
                if delta["mean"] or delta["count"]:
                    deltas[name] = delta
            else:
                if current != base:
                    deltas[name] = current - base
        return {
            "changed": deltas,
            "only_in_current": sorted(set(self.values) - set(baseline.values)),
            "only_in_baseline": sorted(set(baseline.values) - set(self.values)),
        }

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "meta": dict(self.meta),
            "kinds": {name: self.kinds[name] for name in sorted(self.kinds)},
            "metrics": {name: self.values[name] for name in sorted(self.values)},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsSnapshot":
        if payload.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"not a telemetry snapshot (schema {payload.get('schema')!r})"
            )
        return cls(
            values=dict(payload["metrics"]),
            kinds=dict(payload["kinds"]),
            meta=dict(payload.get("meta", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> Path:
        return atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "MetricsSnapshot":
        return cls.from_json(Path(path).read_text())


@dataclass
class SnapshotSeries:
    """Time-ordered cumulative snapshots of one run (telemetry retention).

    Each sample is a full :class:`MetricsSnapshot` harvested mid-run, with
    ``meta["accesses"]`` recording the fetch count at sample time.  Samples
    are cumulative — counters carry run-so-far totals — so:

    * :attr:`final` (the last sample) equals the snapshot a plain,
      series-less run of the same cell would produce;
    * consecutive-sample :meth:`MetricsSnapshot.diff` yields exact
      per-window deltas (:meth:`window_diffs` / :meth:`window_rates`).
    """

    interval: int = 0
    meta: dict = field(default_factory=dict)
    samples: list[MetricsSnapshot] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def __getitem__(self, index) -> MetricsSnapshot:
        return self.samples[index]

    def append(self, snapshot: MetricsSnapshot) -> None:
        """Add the next cumulative sample (must move forward in accesses)."""
        accesses = snapshot.meta.get("accesses", 0)
        if self.samples and accesses <= self.samples[-1].meta.get("accesses", 0):
            raise ValueError(
                f"series samples must strictly advance in accesses; "
                f"got {accesses} after {self.samples[-1].meta.get('accesses')}"
            )
        self.samples.append(snapshot)

    @property
    def final(self) -> MetricsSnapshot | None:
        """The run's final snapshot (samples are cumulative), or ``None``."""
        return self.samples[-1] if self.samples else None

    def accesses(self) -> list[int]:
        """The sample grid: fetch count at each spill point."""
        return [sample.meta.get("accesses", 0) for sample in self.samples]

    # -- drift detection -------------------------------------------------------

    def window_diffs(self) -> list[dict]:
        """Per-window metric deltas between consecutive samples.

        Entry *i* is ``samples[i+1].diff(samples[i])`` — exact counter
        deltas for window *i* because samples are cumulative.
        """
        return [
            self.samples[index + 1].diff(self.samples[index])
            for index in range(len(self.samples) - 1)
        ]

    def window_rates(self, numerator: str, denominator: str) -> list[float]:
        """Per-window ratio of two counters (e.g. prediction rate).

        Computes ``Δnumerator / Δdenominator`` over each window; windows
        where the denominator did not move yield 0.0.  This is the drift
        probe: a healthy run's windows hold a steady rate, a mid-run
        collapse (counter wrap, PHV re-randomization) shows as a cliff.
        """
        rates: list[float] = []
        for index in range(len(self.samples) - 1):
            left, right = self.samples[index], self.samples[index + 1]
            d_num = right.get(numerator, 0) - left.get(numerator, 0)
            d_den = right.get(denominator, 0) - left.get(denominator, 0)
            rates.append(d_num / d_den if d_den else 0.0)
        return rates

    # -- (de)serialization -----------------------------------------------------

    def to_jsonl(self) -> str:
        """Versioned JSONL: one header line, then one line per sample."""
        lines = [
            json.dumps(
                {
                    "schema": SERIES_SCHEMA,
                    "interval": self.interval,
                    "meta": dict(self.meta),
                    "samples": len(self.samples),
                },
                sort_keys=True,
            )
        ]
        lines.extend(
            json.dumps(sample.to_dict(), sort_keys=True)
            for sample in self.samples
        )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "SnapshotSeries":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty series file")
        header = json.loads(lines[0])
        if header.get("schema") != SERIES_SCHEMA:
            raise ValueError(
                f"not a telemetry series (schema {header.get('schema')!r})"
            )
        series = cls(
            interval=header.get("interval", 0), meta=dict(header.get("meta", {}))
        )
        for line in lines[1:]:
            series.append(MetricsSnapshot.from_dict(json.loads(line)))
        declared = header.get("samples")
        if declared is not None and declared != len(series.samples):
            raise ValueError(
                f"series header declares {declared} samples, file has "
                f"{len(series.samples)}"
            )
        return series

    def save(self, path) -> Path:
        return atomic_write_text(path, self.to_jsonl())

    @classmethod
    def load(cls, path) -> "SnapshotSeries":
        return cls.from_jsonl(Path(path).read_text())


def merge_snapshots(snapshots) -> MetricsSnapshot:
    """Fold any iterable of snapshots into one (empty iterable -> empty)."""
    merged = None
    for snapshot in snapshots:
        merged = snapshot if merged is None else merged.merge(snapshot)
    return merged if merged is not None else MetricsSnapshot()
