"""Structured logging: one line per operational event, fleet-wide.

Every process in the fleet — HTTP server, scheduler, supervisor, fabric
workers — emits operational events (worker deaths, lease losses, handler
exceptions, job failures) through one logger so an operator can grep a
single stream by ``job`` / ``tenant`` / ``component`` instead of
reconstructing failures from silent ``pass`` branches.

Two output formats over the same records:

* **human** (default) — ``2026-08-07T12:00:00Z WARN supervisor worker
  died job=job-ab12 cell=gzip/oracle`` — readable in a terminal;
* **JSONL** (``--log-json`` or ``REPRO_LOG_JSON=1``) — one JSON object
  per line with ``ts``/``level``/``component``/``message`` plus every
  bound field, machine-foldable next to the job journals.

The level comes from ``REPRO_LOG`` (``debug``/``info``/``warning``/
``error``/``off``; default ``warning`` so failure paths are visible but
happy paths stay quiet).  :func:`configure` overrides the environment for
the current process (the CLI's ``--log-json`` flag and tests use it).

Loggers are cheap: a disabled level costs one dict lookup and an integer
compare, so instrumented failure paths can log unconditionally.
"""

from __future__ import annotations

import json
import os
import sys
import time

__all__ = [
    "LOG_LEVEL_ENV",
    "LOG_JSON_ENV",
    "LEVELS",
    "StructuredLogger",
    "configure",
    "reset",
    "get_logger",
]

LOG_LEVEL_ENV = "REPRO_LOG"
LOG_JSON_ENV = "REPRO_LOG_JSON"

#: Severity ranks; ``off`` suppresses everything.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}

_DEFAULT_LEVEL = "warning"


class _LogConfig:
    """Process-wide sink configuration (level, format, stream)."""

    def __init__(self):
        self.level_override: str | None = None
        self.json_override: bool | None = None
        self.stream = None  # None -> sys.stderr at emit time

    @property
    def threshold(self) -> int:
        level = self.level_override
        if level is None:
            level = os.environ.get(LOG_LEVEL_ENV, _DEFAULT_LEVEL).lower()
        return LEVELS.get(level, LEVELS[_DEFAULT_LEVEL])

    @property
    def json_mode(self) -> bool:
        if self.json_override is not None:
            return self.json_override
        return os.environ.get(LOG_JSON_ENV, "") not in ("", "0", "false")


_CONFIG = _LogConfig()


def configure(
    level: str | None = None,
    json_mode: bool | None = None,
    stream=None,
) -> None:
    """Override environment-derived logging settings for this process.

    ``level`` of ``None`` keeps the current override; the CLI calls
    ``configure(json_mode=True)`` for ``--log-json``.  Tests pass a
    ``stream`` to capture output.
    """
    if level is not None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; choose from {', '.join(LEVELS)}"
            )
        _CONFIG.level_override = level
    if json_mode is not None:
        _CONFIG.json_override = json_mode
    if stream is not None:
        _CONFIG.stream = stream


def reset() -> None:
    """Drop every override (back to ``REPRO_LOG``/``REPRO_LOG_JSON``)."""
    _CONFIG.level_override = None
    _CONFIG.json_override = None
    _CONFIG.stream = None


def _render_human(record: dict) -> str:
    stamp = time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime(record["ts"])
    )
    head = (
        f"{stamp} {record['level'].upper():<7} "
        f"{record['component']} {record['message']}"
    )
    fields = " ".join(
        f"{key}={record[key]}"
        for key in sorted(record)
        if key not in ("ts", "level", "component", "message")
    )
    return f"{head} {fields}" if fields else head


class StructuredLogger:
    """One component's logger, with bound correlation fields.

    ``bind`` returns a child logger carrying extra fields (``job``,
    ``tenant``, ``lease_token``...) that land on every record it emits —
    the trace-context discipline applied to logs.
    """

    __slots__ = ("component", "fields")

    def __init__(self, component: str, fields: dict | None = None):
        self.component = component
        self.fields = dict(fields or {})

    def bind(self, **fields) -> "StructuredLogger":
        return StructuredLogger(self.component, {**self.fields, **fields})

    def enabled(self, level: str) -> bool:
        return LEVELS.get(level, 100) >= _CONFIG.threshold

    def log(self, level: str, message: str, **fields) -> None:
        if not self.enabled(level):
            return
        record = {
            "ts": time.time(),
            "level": level,
            "component": self.component,
            "message": message,
            **self.fields,
            **{k: v for k, v in fields.items() if v is not None},
        }
        if _CONFIG.json_mode:
            line = json.dumps(record, sort_keys=True, default=str)
        else:
            line = _render_human(record)
        stream = _CONFIG.stream or sys.stderr
        try:
            stream.write(line + "\n")
            stream.flush()
        except (OSError, ValueError):
            pass  # a dead stderr must never take the job down with it

    def debug(self, message: str, **fields) -> None:
        self.log("debug", message, **fields)

    def info(self, message: str, **fields) -> None:
        self.log("info", message, **fields)

    def warning(self, message: str, **fields) -> None:
        self.log("warning", message, **fields)

    def error(self, message: str, **fields) -> None:
        self.log("error", message, **fields)


def get_logger(component: str, **fields) -> StructuredLogger:
    """A logger named for one component, optionally with bound fields."""
    return StructuredLogger(component, fields or None)
