"""Typed metric instruments behind one hierarchical registry.

Three instrument kinds cover everything the simulator reports:

* :class:`Counter` — monotonically increasing event count (fetches,
  prediction hits, row conflicts).  Counters *sum* under snapshot merge.
* :class:`Gauge` — point-in-time level (engine occupancy, hit rate).
  Gauges take the *max* under merge, which is deterministic and
  order-independent for the grid-total use case.
* :class:`Histogram` — fixed-bound bucketed distribution (exposed fetch
  latency).  Bucket counts sum under merge.

Names are hierarchical dotted paths (``secure.controller.fetches``);
the dots are the namespace — exports sort by name, so related metrics
land together in every snapshot, diff, and JSON file.

Overhead policy: a *disabled* registry returns shared null instruments
whose mutators are no-ops, so instrumented code can keep unconditional
``counter.inc()`` calls on warm paths and pay almost nothing when
telemetry is off.  Truly hot loops should instead hold an instrument
reference (or guard on ``registry.enabled``) — see DESIGN.md §6d.
"""

from __future__ import annotations

import re
from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BOUNDS",
]

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

#: Power-of-two cycle bounds that resolve both a fully covered fetch
#: (tens of cycles) and a recovery-retried one (thousands).
DEFAULT_LATENCY_BOUNDS = (32, 64, 128, 256, 512, 1024, 2048, 4096)


def validate_metric_name(name: str) -> str:
    """Reject names that are not lowercase dotted paths."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name must be lowercase dotted segments "
            f"([a-z0-9_] separated by '.'), got {name!r}"
        )
    return name


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the running total."""
        if amount < 0:
            raise ValueError(f"{self.name}: counter increments must be >= 0")
        self.value += amount

    def export(self):
        return self.value


class Gauge:
    """Point-in-time level; last ``set`` wins."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def export(self):
        return self.value


class Histogram:
    """Fixed-bound bucketed distribution.

    Bucket ``i`` counts samples in ``[bounds[i-1], bounds[i])`` — a value
    equal to an edge lands in the higher bucket — with one overflow bucket
    past the last bound.  Exported form is JSON-stable:
    ``{"bounds": [...], "counts": [...], "sum": s, "count": n}``.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, bounds=DEFAULT_LATENCY_BOUNDS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"{name}: histogram bounds must strictly increase")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_right(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def load(self, counts, total: float, count: int) -> None:
        """Merge pre-aggregated bucket counts (component-stat harvesting)."""
        if len(counts) != len(self.counts):
            raise ValueError(
                f"{self.name}: expected {len(self.counts)} buckets, "
                f"got {len(counts)}"
            )
        for index, bucket in enumerate(counts):
            self.counts[index] += bucket
        self.sum += total
        self.count += count

    def export(self):
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class _NullCounter(Counter):
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def load(self, counts, total: float, count: int) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricRegistry:
    """Factory and namespace for instruments.

    Instruments are memoized by name — asking twice returns the same
    object, so independent publishers accumulate into shared totals.
    Asking for an existing name with a *different* kind is an error
    (silent kind aliasing would corrupt merges).

    A registry built with ``enabled=False`` (or the module-level
    :data:`NULL_REGISTRY`) returns shared null instruments and records
    nothing; its snapshot is always empty.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, name: str, factory, null_instrument, **kwargs):
        if not self.enabled:
            return null_instrument
        validate_metric_name(name)
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name, **kwargs)
            self._instruments[name] = instrument
            return instrument
        expected = factory.kind
        if instrument.kind != expected:
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"requested {expected}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, _NULL_COUNTER)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, _NULL_GAUGE)

    def histogram(self, name: str, bounds=DEFAULT_LATENCY_BOUNDS) -> Histogram:
        return self._get(name, Histogram, _NULL_HISTOGRAM, bounds=bounds)

    def values(self) -> dict[str, object]:
        """``{name: exported value}`` sorted by name."""
        return {
            name: self._instruments[name].export()
            for name in sorted(self._instruments)
        }

    def kinds(self) -> dict[str, str]:
        return {
            name: self._instruments[name].kind
            for name in sorted(self._instruments)
        }

    def snapshot(self, meta: dict | None = None):
        """Freeze current instrument values into a mergeable snapshot."""
        from repro.telemetry.snapshot import MetricsSnapshot

        return MetricsSnapshot(
            values=self.values(), kinds=self.kinds(), meta=dict(meta or {})
        )

    def reset(self) -> None:
        """Drop every instrument (a fresh namespace)."""
        self._instruments.clear()


#: Process-wide disabled registry: the null sink instrumented code defaults to.
NULL_REGISTRY = MetricRegistry(enabled=False)
