"""Bounded ring-buffer event tracer with Chrome ``trace_event`` export.

The secure controller stamps one span per pipeline step of a fetch — miss
issue, speculative pad generation, DRAM return, match/XOR — onto separate
tracks, so a whole run renders as the paper's Figure 4 timeline.  Times
are CPU *cycles*; the Chrome format wants microseconds, so the export maps
one cycle to one microsecond (the viewer's time axis reads as cycles).

The buffer is a fixed-capacity ring: once full, the oldest events are
dropped (and counted in :attr:`EventTracer.dropped`) so tracing a long run
costs bounded memory and keeps the *tail* of the execution — usually the
steady state being debugged.

:class:`NullTracer` (via the shared :data:`NULL_TRACER`) is the disabled
sink: ``enabled`` is False and every recording method is a no-op, so
instrumented hot paths guard with a single attribute check.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["TraceEvent", "EventTracer", "NullTracer", "NULL_TRACER"]


@dataclass(frozen=True)
class TraceEvent:
    """One cycle-stamped event.

    ``phase`` follows the Chrome trace-event phases this exporter emits:
    ``"X"`` (complete span with duration) and ``"i"`` (instant).
    """

    name: str
    phase: str
    start: int                 # cycle of the event (span start for "X")
    duration: int = 0          # cycles ("X" only)
    track: str = "controller"  # rendered as the Chrome thread name
    category: str = "sim"
    args: dict = field(default_factory=dict)

    def to_chrome(self, pid: int, tid: int) -> dict:
        event = {
            "name": self.name,
            "ph": self.phase,
            "ts": self.start,
            "pid": pid,
            "tid": tid,
            "cat": self.category,
            "args": dict(self.args),
        }
        if self.phase == "X":
            event["dur"] = self.duration
        if self.phase == "i":
            event["s"] = "t"  # instant scoped to its thread
        return event


class EventTracer:
    """Fixed-capacity ring buffer of :class:`TraceEvent`."""

    enabled = True

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._events: deque[TraceEvent] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._events)

    def record(self, event: TraceEvent) -> None:
        """Append one event, evicting (and counting) the oldest when full."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def span(
        self,
        name: str,
        start: int,
        end: int,
        track: str = "controller",
        category: str = "sim",
        **args,
    ) -> None:
        """Record a complete span covering cycles ``[start, end]``."""
        self.record(
            TraceEvent(
                name=name,
                phase="X",
                start=start,
                duration=max(0, end - start),
                track=track,
                category=category,
                args=args,
            )
        )

    def instant(
        self,
        name: str,
        at: int,
        track: str = "controller",
        category: str = "sim",
        **args,
    ) -> None:
        """Record a zero-duration marker at cycle ``at``."""
        self.record(
            TraceEvent(
                name=name, phase="i", start=at, track=track,
                category=category, args=args,
            )
        )

    def events(self) -> list[TraceEvent]:
        """Buffered events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # -- export ----------------------------------------------------------------

    def to_chrome(self, metadata: dict | None = None, pid: int = 1) -> dict:
        """The buffer as a Chrome ``trace_event`` JSON object.

        Tracks become threads: each distinct ``track`` string is assigned a
        stable tid (alphabetical) and named via a ``thread_name`` metadata
        event, so Perfetto shows labeled swimlanes.
        """
        tracks = sorted({event.track for event in self._events})
        tids = {track: index for index, track in enumerate(tracks)}
        trace_events = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
            for track, tid in tids.items()
        ]
        trace_events.extend(
            event.to_chrome(pid, tids[event.track]) for event in self._events
        )
        payload = {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "cpu-cycles (1 cycle rendered as 1us)",
                "dropped_events": self.dropped,
                **(metadata or {}),
            },
        }
        return payload

    def write_chrome(self, path, metadata: dict | None = None) -> Path:
        """Write the Chrome JSON to ``path``; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(metadata)) + "\n")
        return path


class NullTracer:
    """Disabled sink: every recording method is a no-op."""

    enabled = False
    capacity = 0
    dropped = 0

    def __len__(self) -> int:
        return 0

    def record(self, event: TraceEvent) -> None:
        pass

    def span(self, name, start, end, track="controller", category="sim", **args):
        pass

    def instant(self, name, at, track="controller", category="sim", **args):
        pass

    def events(self) -> list[TraceEvent]:
        return []

    def clear(self) -> None:
        pass


#: Shared disabled tracer instrumented components default to.
NULL_TRACER = NullTracer()
