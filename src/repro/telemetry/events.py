"""Bounded ring-buffer event tracer with Chrome ``trace_event`` export.

The secure controller stamps one span per pipeline step of a fetch — miss
issue, speculative pad generation, DRAM return, match/XOR — onto separate
tracks, so a whole run renders as the paper's Figure 4 timeline.  Times
are CPU *cycles*; the Chrome format wants microseconds, so the export maps
one cycle to one microsecond (the viewer's time axis reads as cycles).

Timeline v2 adds two temporal dimensions on top of the spans:

* **Counter tracks** (``ph:"C"``) — periodic numeric samples (prediction
  queue depth, AES pipeline occupancy, sequence-number-cache occupancy,
  quarantined lines, outstanding DRAM fetches) that Perfetto renders as
  live utilization graphs under the span rows.  Sample timestamps are
  clamped monotonic per counter name, so a retry that momentarily rewinds
  the local clock cannot produce a backwards counter track.
* **Flow events** (``ph:"s"/"t"/"f"``) — arrows linking each L2-miss
  fetch span to its speculative pad computation and the final match/XOR,
  named by outcome (``pred hit`` / ``pred miss`` / ...) so a mispredicted
  fetch is visually distinguishable from a covered one.

The buffer is a fixed-capacity ring: once full, the oldest events are
dropped (and counted in :attr:`EventTracer.dropped`) so tracing a long run
costs bounded memory and keeps the *tail* of the execution — usually the
steady state being debugged.  Exports carry the drop count in their
metadata and warn (once per tracer) when events were lost.

:class:`NullTracer` (via the shared :data:`NULL_TRACER`) is the disabled
sink: ``enabled`` is False and every recording method is a no-op, so
instrumented hot paths guard with a single attribute check.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.ioutil import atomic_write_json

__all__ = [
    "TraceEvent",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
    "merge_chrome_traces",
    "validate_chrome_trace",
]

#: Phases that carry a flow ``id`` in the Chrome export.
_FLOW_PHASES = ("s", "t", "f")


@dataclass(frozen=True)
class TraceEvent:
    """One cycle-stamped event.

    ``phase`` follows the Chrome trace-event phases this exporter emits:
    ``"X"`` (complete span with duration), ``"i"`` (instant), ``"C"``
    (counter sample — ``args`` holds the series values), and the flow
    triplet ``"s"``/``"t"``/``"f"`` (start / step / finish, bound by
    ``flow_id``).
    """

    name: str
    phase: str
    start: int                 # cycle of the event (span start for "X")
    duration: int = 0          # cycles ("X" only)
    track: str = "controller"  # rendered as the Chrome thread name
    category: str = "sim"
    flow_id: int = 0           # flow phases only
    args: dict = field(default_factory=dict)

    def to_chrome(self, pid: int, tid: int) -> dict:
        event = {
            "name": self.name,
            "ph": self.phase,
            "ts": self.start,
            "pid": pid,
            "tid": tid,
            "cat": self.category,
            "args": dict(self.args),
        }
        if self.phase == "X":
            event["dur"] = self.duration
        if self.phase == "i":
            event["s"] = "t"  # instant scoped to its thread
        if self.phase in _FLOW_PHASES:
            event["id"] = self.flow_id
            if self.phase == "f":
                event["bp"] = "e"  # bind the arrow to the enclosing slice
        return event


class EventTracer:
    """Fixed-capacity ring buffer of :class:`TraceEvent`."""

    enabled = True

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._next_flow = 0
        # Last emitted ts per counter name; samples are clamped forward so
        # every counter track is monotonic in ts (a Perfetto requirement).
        self._counter_clock: dict[str, int] = {}
        self._drop_warned = False

    def __len__(self) -> int:
        return len(self._events)

    def record(self, event: TraceEvent) -> None:
        """Append one event, evicting (and counting) the oldest when full."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def span(
        self,
        name: str,
        start: int,
        end: int,
        track: str = "controller",
        category: str = "sim",
        **args,
    ) -> None:
        """Record a complete span covering cycles ``[start, end]``."""
        self.record(
            TraceEvent(
                name=name,
                phase="X",
                start=start,
                duration=max(0, end - start),
                track=track,
                category=category,
                args=args,
            )
        )

    def instant(
        self,
        name: str,
        at: int,
        track: str = "controller",
        category: str = "sim",
        **args,
    ) -> None:
        """Record a zero-duration marker at cycle ``at``."""
        self.record(
            TraceEvent(
                name=name, phase="i", start=at, track=track,
                category=category, args=args,
            )
        )

    def counter(
        self,
        name: str,
        at: int,
        track: str = "controller",
        category: str = "counter",
        **values,
    ) -> None:
        """Record a counter sample (``ph:"C"``) of one or more series.

        ``values`` maps series labels to numbers; Perfetto stacks multiple
        series in one track.  The timestamp is clamped to be monotonic per
        counter name (recovery retries can locally rewind the clock the
        components see, and counter tracks must never run backwards).
        """
        clamped = max(at, self._counter_clock.get(name, at))
        self._counter_clock[name] = clamped
        self.record(
            TraceEvent(
                name=name, phase="C", start=clamped, track=track,
                category=category, args=values,
            )
        )

    # -- flows -----------------------------------------------------------------

    def next_flow_id(self) -> int:
        """A fresh flow id; each fetch's arrow chain gets its own."""
        self._next_flow += 1
        return self._next_flow

    def flow_begin(
        self, name: str, at: int, flow_id: int,
        track: str = "controller", category: str = "flow", **args,
    ) -> None:
        """Start a flow arrow (``ph:"s"``) at cycle ``at``."""
        self._flow("s", name, at, flow_id, track, category, args)

    def flow_step(
        self, name: str, at: int, flow_id: int,
        track: str = "controller", category: str = "flow", **args,
    ) -> None:
        """Continue a flow arrow (``ph:"t"``) through another track."""
        self._flow("t", name, at, flow_id, track, category, args)

    def flow_end(
        self, name: str, at: int, flow_id: int,
        track: str = "controller", category: str = "flow", **args,
    ) -> None:
        """Finish a flow arrow (``ph:"f"``, binding to the enclosing slice)."""
        self._flow("f", name, at, flow_id, track, category, args)

    def _flow(self, phase, name, at, flow_id, track, category, args) -> None:
        self.record(
            TraceEvent(
                name=name, phase=phase, start=at, track=track,
                category=category, flow_id=flow_id, args=args,
            )
        )

    def events(self) -> list[TraceEvent]:
        """Buffered events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self._next_flow = 0
        self._counter_clock.clear()
        self._drop_warned = False

    # -- export ----------------------------------------------------------------

    def to_chrome(self, metadata: dict | None = None, pid: int = 1) -> dict:
        """The buffer as a Chrome ``trace_event`` JSON object.

        Tracks become threads: each distinct ``track`` string is assigned a
        stable tid (alphabetical) and named via a ``thread_name`` metadata
        event, so Perfetto shows labeled swimlanes.  Flow chains whose
        start (``s``) was evicted by the ring are dropped whole — a dangling
        step or finish would render as an arrow from nowhere.
        """
        if self.dropped and not self._drop_warned:
            self._drop_warned = True
            warnings.warn(
                f"event ring buffer dropped {self.dropped} oldest event(s) "
                f"beyond capacity {self.capacity}; the export keeps the tail "
                f"of the run (raise --events to keep more)",
                RuntimeWarning,
                stacklevel=2,
            )
        events = list(self._events)
        started = {
            event.flow_id for event in events if event.phase == "s"
        }
        tracks = sorted({event.track for event in events})
        tids = {track: index for index, track in enumerate(tracks)}
        trace_events = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
            for track, tid in tids.items()
        ]
        trace_events.extend(
            event.to_chrome(pid, tids[event.track])
            for event in events
            if event.phase not in ("t", "f") or event.flow_id in started
        )
        payload = {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "cpu-cycles (1 cycle rendered as 1us)",
                "dropped_events": self.dropped,
                **(metadata or {}),
            },
        }
        return payload

    def write_chrome(self, path, metadata: dict | None = None) -> Path:
        """Write the Chrome JSON to ``path``; returns the path written."""
        return atomic_write_json(path, self.to_chrome(metadata))


class NullTracer:
    """Disabled sink: every recording method is a no-op."""

    enabled = False
    capacity = 0
    dropped = 0

    def __len__(self) -> int:
        return 0

    def record(self, event: TraceEvent) -> None:
        pass

    def span(self, name, start, end, track="controller", category="sim", **args):
        pass

    def instant(self, name, at, track="controller", category="sim", **args):
        pass

    def counter(self, name, at, track="controller", category="counter", **values):
        pass

    def next_flow_id(self) -> int:
        return 0

    def flow_begin(self, name, at, flow_id, track="controller",
                   category="flow", **args):
        pass

    def flow_step(self, name, at, flow_id, track="controller",
                  category="flow", **args):
        pass

    def flow_end(self, name, at, flow_id, track="controller",
                 category="flow", **args):
        pass

    def events(self) -> list[TraceEvent]:
        return []

    def clear(self) -> None:
        pass


#: Shared disabled tracer instrumented components default to.
NULL_TRACER = NullTracer()


# -- multi-run overlay ---------------------------------------------------------


def merge_chrome_traces(
    labeled, metadata: dict | None = None, align: bool = True
) -> dict:
    """Overlay several tracers' timelines in one Chrome trace.

    ``labeled`` is an iterable of ``(label, EventTracer)`` pairs; each
    tracer becomes its own pid group named ``label`` via ``process_name``
    metadata, so Perfetto renders the runs as stacked, directly comparable
    process lanes (the ``repro trace --diff A B`` view).

    With ``align`` (the default) each group's timestamps are shifted so
    its earliest event lands at ts 0 — runs of different lengths still
    line up at the origin.  Flow ids are namespaced per group
    (``"<pid>.<id>"``) because Chrome binds flows by id across the whole
    file, and two runs' arrows must never cross-link.
    """
    labeled = list(labeled)
    if not labeled:
        raise ValueError("merge_chrome_traces needs at least one (label, tracer)")
    trace_events: list[dict] = []
    dropped: dict[str, int] = {}
    for pid, (label, tracer) in enumerate(labeled, start=1):
        payload = tracer.to_chrome(pid=pid)
        events = payload["traceEvents"]
        timed = [event for event in events if event["ph"] != "M"]
        shift = min((event["ts"] for event in timed), default=0) if align else 0
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": str(label)},
            }
        )
        for event in events:
            if event["ph"] != "M":
                event["ts"] -= shift
            if "id" in event:
                event["id"] = f"{pid}.{event['id']}"
            trace_events.append(event)
        dropped[str(label)] = tracer.dropped
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "cpu-cycles (1 cycle rendered as 1us)",
            "dropped_events": dropped,
            "groups": [str(label) for label, _ in labeled],
            **(metadata or {}),
        },
    }


# -- well-formedness -----------------------------------------------------------


def validate_chrome_trace(payload: dict) -> list[str]:
    """Structural well-formedness check for an exported Chrome trace.

    Returns a list of human-readable problems (empty = valid):

    * every event carries ``name``/``ph``/``pid`` plus ``ts`` when timed;
    * ``X`` spans have non-negative durations;
    * counter samples (``ph:"C"``) are monotonic in ``ts`` per
      ``(pid, name)`` series;
    * every flow start (``s``) has a matching finish (``f``) with the same
      id, and no step/finish appears without its start, in causal order;
    * ``(pid, tid)`` pairs are stable — each maps to exactly one
      ``thread_name`` and every timed event's pair is named.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    thread_names: dict[tuple, str] = {}
    counter_clock: dict[tuple, int] = {}
    flow_phases: dict[tuple, list] = {}
    for index, event in enumerate(events):
        where = f"event[{index}]"
        for key in ("name", "ph", "pid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") == "thread_name":
                key = (event.get("pid"), event.get("tid"))
                name = event.get("args", {}).get("name")
                if key in thread_names and thread_names[key] != name:
                    problems.append(
                        f"{where}: (pid, tid) {key} renamed from "
                        f"{thread_names[key]!r} to {name!r}"
                    )
                thread_names[key] = name
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: missing numeric ts")
            continue
        if phase == "X" and event.get("dur", 0) < 0:
            problems.append(f"{where}: negative span duration")
        if phase == "C":
            key = (event.get("pid"), event.get("name"))
            last = counter_clock.get(key)
            if last is not None and ts < last:
                problems.append(
                    f"{where}: counter {event.get('name')!r} ts {ts} "
                    f"rewinds past {last}"
                )
            counter_clock[key] = max(ts, last or ts)
            if not event.get("args"):
                problems.append(
                    f"{where}: counter {event.get('name')!r} has no series"
                )
        if phase in _FLOW_PHASES:
            if "id" not in event:
                problems.append(f"{where}: flow event without id")
            else:
                flow_phases.setdefault(
                    (event.get("pid"), event["id"]), []
                ).append((phase, ts, index))
    for (pid, flow_id), steps in sorted(
        flow_phases.items(), key=lambda item: str(item[0])
    ):
        phases = [phase for phase, _, _ in steps]
        label = f"flow {flow_id!r} (pid {pid})"
        if phases.count("s") != 1 or phases[0] != "s":
            problems.append(f"{label}: must begin with exactly one 's'")
            continue
        if phases.count("f") != 1 or phases[-1] != "f":
            problems.append(f"{label}: must end with exactly one 'f'")
            continue
        stamps = [ts for _, ts, _ in steps]
        if stamps != sorted(stamps):
            problems.append(f"{label}: phases out of causal (ts) order")
    for index, event in enumerate(events):
        if event.get("ph") in ("M",):
            continue
        key = (event.get("pid"), event.get("tid"))
        if key not in thread_names:
            problems.append(
                f"event[{index}]: (pid, tid) {key} has no thread_name metadata"
            )
    return problems
