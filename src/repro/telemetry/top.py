"""``repro top``: one refreshing screen of fleet state, read from disk.

Everything the dashboard shows already lives under the shared cache
root — the job store's journals, the sweep manifests, the fabric's lease
files and worker beacons — so the view needs no live service: it folds
the same durable state any scheduler replica or fabric worker would
replay, which means it works mid-outage, exactly when an operator wants
it.

:func:`fleet_snapshot` is the machine-readable fold (also the data
source for ``repro jobs --watch``); :func:`render_top` formats one
screen; :func:`watch` redraws until interrupted.

Import discipline: module level touches only the stdlib + telemetry;
job-store and fabric helpers load lazily inside the fold.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

__all__ = ["fleet_snapshot", "render_top", "watch"]


def _age(now: float, then) -> float | None:
    if not isinstance(then, (int, float)) or then <= 0:
        return None
    return max(0.0, now - then)


def _fmt_age(seconds) -> str:
    if seconds is None:
        return "-"
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def _manifest_progress(cache_root: Path, sweep_key: str) -> tuple[int, int]:
    """``(done, failed)`` cells journaled in one sweep's manifest."""
    from repro.experiments.supervisor import manifest_path, parse_manifest_line

    done: set[str] = set()
    failed: set[str] = set()
    try:
        text = manifest_path(cache_root, sweep_key).read_text()
    except OSError:
        return 0, 0
    for line in text.splitlines():
        record = parse_manifest_line(line.strip()) if line.strip() else None
        if record is None:
            continue
        key = record.get("key")
        event = record.get("event")
        if not key:
            continue
        if event == "done":
            failed.discard(key)
            done.add(key)
        elif event == "failed":
            done.discard(key)
            failed.add(key)
    return len(done), len(failed)


def fleet_snapshot(store=None, cache_root=None, now=None) -> dict:
    """Fold jobs + manifests + leases + beacons into one status dict.

    Returns ``{"now", "jobs", "queue_depth", "tenants", "workers",
    "leases"}`` — every row JSON-serializable, ages in seconds.  Jobs
    carry their sweep's manifest progress; workers are the fabric
    beacons younger than ten minutes (older ones are previous sweeps'
    leftovers, not a live fleet).
    """
    from repro.experiments.cache import default_cache
    from repro.service.queue import JobStore

    if store is None:
        store = JobStore()
    cache_root = Path(cache_root) if cache_root else default_cache().root
    now = now if now is not None else time.time()

    jobs = []
    tenants: dict[str, dict] = {}
    queue_depth = 0
    progress_cache: dict[str, tuple[int, int]] = {}
    for record in store.jobs():
        spec = record.spec
        sweep_key = spec.sweep_key
        if sweep_key not in progress_cache:
            progress_cache[sweep_key] = _manifest_progress(cache_root, sweep_key)
        done, failed = progress_cache[sweep_key]
        total = len(spec.benchmarks) * len(spec.schemes)
        last_ts = max(
            (
                event["ts"]
                for event in record.events
                if isinstance(event.get("ts"), (int, float))
            ),
            default=record.submitted,
        )
        if record.state == "queued":
            queue_depth += 1
        jobs.append(
            {
                "job_id": record.job_id,
                "tenant": spec.tenant,
                "state": record.state,
                "age": _age(now, record.submitted),
                "last_event_age": _age(now, last_ts),
                "cells_done": done,
                "cells_failed": failed,
                "cells_total": total,
                "sweep_key": sweep_key,
            }
        )
        tenant = tenants.setdefault(
            spec.tenant, {"jobs": {}, "cells_total": 0, "cache_hits": 0}
        )
        tenant["jobs"][record.state] = tenant["jobs"].get(record.state, 0) + 1
        if record.state == "done":
            tenant["cells_total"] += record.detail.get("cells_total", 0)
            tenant["cache_hits"] += record.detail.get("cache_hits", 0)

    workers = []
    leases = []
    leases_root = cache_root / "leases"
    if leases_root.is_dir():
        for sweep_dir in sorted(leases_root.iterdir()):
            if not sweep_dir.is_dir():
                continue
            held = expired = 0
            for lease_path in sweep_dir.glob("*.lease"):
                try:
                    lease = json.loads(lease_path.read_text())
                except (OSError, ValueError):
                    continue
                if lease.get("state") != "held":
                    continue
                heartbeat_age = _age(now, lease.get("heartbeat"))
                # The default fabric TTL; an operator screen only needs
                # the order of magnitude to flag an abandoned lease.
                if heartbeat_age is not None and heartbeat_age > 10.0:
                    expired += 1
                else:
                    held += 1
            if held or expired:
                leases.append(
                    {"sweep_key": sweep_dir.name, "held": held,
                     "expired": expired}
                )
            workers_dir = sweep_dir / "workers"
            if not workers_dir.is_dir():
                continue
            for path in sorted(workers_dir.glob("*.json")):
                try:
                    beacon = json.loads(path.read_text())
                except (OSError, ValueError):
                    continue
                beacon_age = _age(now, beacon.get("updated"))
                if beacon_age is None or beacon_age > 600.0:
                    continue
                stats = beacon.get("stats", {})
                workers.append(
                    {
                        "owner": beacon.get("owner", path.stem),
                        "pid": beacon.get("pid"),
                        "sweep_key": sweep_dir.name,
                        "state": beacon.get("state"),
                        "beacon_age": beacon_age,
                        "executed": stats.get("cells_executed", 0),
                        "stores": stats.get("stores", 0),
                        "fenced_out": stats.get("cells_fenced_out", 0),
                        "heartbeats": stats.get("heartbeats", 0),
                    }
                )

    return {
        "now": now,
        "jobs": jobs,
        "queue_depth": queue_depth,
        "tenants": tenants,
        "workers": workers,
        "leases": leases,
    }


def render_top(snapshot: dict) -> str:
    """One terminal screen of fleet state."""
    jobs = snapshot["jobs"]
    running = sum(1 for job in jobs if job["state"] == "running")
    lines = [
        f"repro fleet  {time.strftime('%H:%M:%S', time.localtime(snapshot['now']))}"
        f"  jobs: {len(jobs)} total, {running} running, "
        f"{snapshot['queue_depth']} queued",
        "",
        f"{'job':<18}{'tenant':<14}{'state':<11}{'age':>6}{'last ev':>9}"
        f"{'cells':>12}",
    ]
    for job in jobs:
        cells = f"{job['cells_done']}/{job['cells_total']}"
        if job["cells_failed"]:
            cells += f" !{job['cells_failed']}"
        lines.append(
            f"{job['job_id']:<18}{job['tenant']:<14}{job['state']:<11}"
            f"{_fmt_age(job['age']):>6}{_fmt_age(job['last_event_age']):>9}"
            f"{cells:>12}"
        )
    if not jobs:
        lines.append("(no jobs)")

    if snapshot["workers"]:
        lines.append("")
        lines.append(
            f"{'worker':<22}{'state':<11}{'beacon':>7}{'ran':>5}{'stored':>7}"
            f"{'fenced':>7}{'hb':>5}"
        )
        for worker in snapshot["workers"]:
            lines.append(
                f"{worker['owner']:<22}{(worker['state'] or '?'):<11}"
                f"{_fmt_age(worker['beacon_age']):>7}{worker['executed']:>5}"
                f"{worker['stores']:>7}{worker['fenced_out']:>7}"
                f"{worker['heartbeats']:>5}"
            )
    if snapshot["leases"]:
        lines.append("")
        for row in snapshot["leases"]:
            lines.append(
                f"leases {row['sweep_key'][:16]}: {row['held']} held, "
                f"{row['expired']} expired"
            )
    if snapshot["tenants"]:
        lines.append("")
        lines.append(f"{'tenant':<18}{'jobs':<26}{'cells':>8}{'hit%':>7}")
        for tenant in sorted(snapshot["tenants"]):
            usage = snapshot["tenants"][tenant]
            states = " ".join(
                f"{state}:{count}"
                for state, count in sorted(usage["jobs"].items())
            )
            total = usage["cells_total"]
            ratio = (usage["cache_hits"] / total * 100) if total else 0.0
            lines.append(
                f"{tenant:<18}{states:<26}{total:>8}{ratio:>6.0f}%"
            )
    return "\n".join(lines)


def watch(
    store=None,
    cache_root=None,
    interval: float = 1.0,
    once: bool = False,
    stream=None,
    render=render_top,
    iterations: int | None = None,
) -> None:
    """Redraw the fleet screen every ``interval`` seconds until ^C.

    ``once`` prints a single snapshot and returns (for scripts and CI);
    ``iterations`` bounds the loop (tests).  ``render`` is pluggable so
    ``repro jobs --watch`` reuses this loop with its own table.
    """
    stream = stream or sys.stdout
    count = 0
    while True:
        snapshot = fleet_snapshot(store=store, cache_root=cache_root)
        screen = render(snapshot)
        if once:
            stream.write(screen + "\n")
            return
        stream.write("\x1b[2J\x1b[H" + screen + "\n")
        stream.flush()
        count += 1
        if iterations is not None and count >= iterations:
            return
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return
