"""Prometheus text exposition over the typed metric registry.

:func:`encode_exposition` renders a :class:`~repro.telemetry.registry.
MetricRegistry` (or a raw ``values``/``kinds`` pair, e.g. from a stored
snapshot) in the Prometheus *text exposition format 0.0.4* — the format
``GET /metrics`` must serve for any off-the-shelf scraper:

* dotted registry names are mangled to underscores under a ``repro_``
  prefix: ``service.jobs.submitted`` → ``repro_service_jobs_submitted``;
* counters get the conventional ``_total`` suffix;
* histograms expand to cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` / ``_count`` (the registry's per-bucket counts are
  *non*-cumulative, so the encoder prefix-sums them);
* per-tenant metrics named ``service.tenant.<slug>.<rest>`` fold into
  one family ``repro_service_tenant_<rest>{tenant="<slug>"}`` so a
  scraper can aggregate across tenants, and label values are escaped
  per spec (``\\``, ``\"``, ``\n``).

:func:`parse_exposition` / :func:`lint_exposition` are the pure-python
inverse used by tests and the CI ``metrics-smoke`` job: they check
HELP/TYPE discipline, name/label syntax, histogram bucket invariants,
and (given two successive scrapes) counter monotonicity — without
needing a real Prometheus binary in the container.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "encode_exposition",
    "parse_exposition",
    "lint_exposition",
    "check_monotone_counters",
]

#: Prometheus metric-name and label-name grammar (no leading digit).
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Registry names matching this fold the slug into a ``tenant`` label.
_TENANT_RE = re.compile(r"^service\.tenant\.([a-z0-9_]+)\.([a-z0-9_.]+)$")

_PREFIX = "repro_"


def _mangle(name: str) -> str:
    return _PREFIX + name.replace(".", "_")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _split_tenant(name: str) -> tuple[str, dict[str, str]]:
    """Fold ``service.tenant.<slug>.<rest>`` into a labeled family."""
    match = _TENANT_RE.match(name)
    if match is None:
        return name, {}
    slug, rest = match.groups()
    return f"service.tenant.{rest}", {"tenant": slug}


def encode_exposition(
    values: dict,
    kinds: dict,
    help_text: dict[str, str] | None = None,
) -> str:
    """Render registry export data as Prometheus text format.

    ``values`` / ``kinds`` are the registry's ``values()`` / ``kinds()``
    maps (or a snapshot's).  Families sharing a mangled name after
    tenant folding emit one HELP/TYPE header followed by every labeled
    sample; mixed kinds under one family raise, since that would be an
    unscrapeable exposition.
    """
    help_text = help_text or {}
    # family name -> {"kind": ..., "help": ..., "samples": [(labels, value)]}
    families: dict[str, dict] = {}
    for name in sorted(values):
        kind = kinds.get(name, "gauge")
        family, labels = _split_tenant(name)
        entry = families.setdefault(
            family,
            {"kind": kind, "help": help_text.get(family, ""), "samples": []},
        )
        if entry["kind"] != kind:
            raise ValueError(
                f"metric family {family!r} mixes kinds "
                f"{entry['kind']!r} and {kind!r}"
            )
        entry["samples"].append((labels, values[name]))

    lines: list[str] = []
    for family in sorted(families):
        entry = families[family]
        kind = entry["kind"]
        base = _mangle(family)
        if kind == "counter":
            base += "_total"
        help_line = entry["help"] or f"repro metric {family}"
        lines.append(f"# HELP {base} {help_line}")
        lines.append(f"# TYPE {base} {kind}")
        for labels, value in entry["samples"]:
            if kind == "histogram":
                _encode_histogram(lines, base, labels, value)
            else:
                lines.append(
                    f"{base}{_labels_text(labels)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


def _encode_histogram(
    lines: list[str], base: str, labels: dict[str, str], export: dict
) -> None:
    bounds = export["bounds"]
    counts = export["counts"]
    cumulative = 0
    for bound, bucket in zip(bounds, counts):
        cumulative += bucket
        bucket_labels = {**labels, "le": _format_value(bound)}
        lines.append(
            f"{base}_bucket{_labels_text(bucket_labels)} {cumulative}"
        )
    cumulative += counts[len(bounds)]
    inf_labels = {**labels, "le": "+Inf"}
    lines.append(f"{base}_bucket{_labels_text(inf_labels)} {cumulative}")
    lines.append(
        f"{base}_sum{_labels_text(labels)} {_format_value(export['sum'])}"
    )
    lines.append(f"{base}_count{_labels_text(labels)} {export['count']}")


# --------------------------------------------------------------------------
# Parsing / linting (the smoke job's stand-in for a real scraper)
# --------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?\s*$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_exposition(text: str) -> dict:
    """Parse exposition text into ``{family: {...}}``; raise on bad syntax.

    Returns, per family name (base name without ``_bucket``/``_sum``/
    ``_count`` suffixes for histograms): ``{"type": ..., "help": ...,
    "samples": {sample_name: {labels_key: value}}}`` where ``labels_key``
    is the sorted ``(name, value)`` tuple of the sample's labels.
    """
    families: dict[str, dict] = {}
    typed: dict[str, str] = {}

    def family_for(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name.removesuffix(suffix)
            if trimmed != sample_name and typed.get(trimmed) == "histogram":
                return trimmed
        return sample_name

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP line")
            name = parts[2]
            families.setdefault(
                name, {"type": None, "help": None, "samples": {}}
            )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown TYPE {kind!r}")
            families.setdefault(
                name, {"type": None, "help": None, "samples": {}}
            )["type"] = kind
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue  # free comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        sample_name = match.group("name")
        labels_blob = match.group("labels")
        labels: dict[str, str] = {}
        if labels_blob is not None:
            consumed = 0
            for label in _LABEL_RE.finditer(labels_blob):
                labels[label.group("name")] = _unescape_label_value(
                    label.group("value")
                )
                consumed = label.end()
            remainder = labels_blob[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(
                    f"line {lineno}: malformed labels: {labels_blob!r}"
                )
        value = _parse_value(match.group("value"))
        family = families.setdefault(
            family_for(sample_name), {"type": None, "help": None, "samples": {}}
        )
        labels_key = tuple(sorted(labels.items()))
        family["samples"].setdefault(sample_name, {})[labels_key] = value
    return families


def lint_exposition(text: str) -> list[str]:
    """Check scraper-facing invariants; return human-readable problems.

    An empty list means the exposition is well-formed: every family has
    HELP and TYPE before its samples, names and labels match the
    grammar, counters are finite and non-negative, and histogram bucket
    series are cumulative with a ``+Inf`` bucket equal to ``_count``.
    """
    problems: list[str] = []
    try:
        families = parse_exposition(text)
    except ValueError as error:
        return [str(error)]
    if not families:
        return ["exposition is empty"]

    for name in sorted(families):
        entry = families[name]
        if not _METRIC_NAME_RE.match(name):
            problems.append(f"{name}: invalid metric name")
        if entry["type"] is None:
            problems.append(f"{name}: missing # TYPE line")
        if entry["help"] is None:
            problems.append(f"{name}: missing # HELP line")
        if not entry["samples"]:
            problems.append(f"{name}: family declared but has no samples")
        for sample_name, series in entry["samples"].items():
            for labels_key, value in series.items():
                for label_name, _ in labels_key:
                    if not _LABEL_NAME_RE.match(label_name):
                        problems.append(
                            f"{sample_name}: invalid label name {label_name!r}"
                        )
                if entry["type"] == "counter" and (
                    math.isnan(value) or value < 0
                ):
                    problems.append(
                        f"{sample_name}: counter value {value} not >= 0"
                    )
        if entry["type"] == "counter" and not name.endswith("_total"):
            problems.append(f"{name}: counter family should end in _total")
        if entry["type"] == "histogram":
            problems.extend(_lint_histogram(name, entry["samples"]))
    return problems


def _lint_histogram(name: str, samples: dict) -> list[str]:
    problems: list[str] = []
    buckets = samples.get(f"{name}_bucket", {})
    counts = samples.get(f"{name}_count", {})
    if not buckets:
        problems.append(f"{name}: histogram without _bucket samples")
        return problems
    # Group bucket samples by their non-le labels.
    grouped: dict[tuple, list[tuple[float, float]]] = {}
    for labels_key, value in buckets.items():
        le = dict(labels_key).get("le")
        if le is None:
            problems.append(f"{name}: bucket sample missing le label")
            continue
        rest = tuple(kv for kv in labels_key if kv[0] != "le")
        grouped.setdefault(rest, []).append((_parse_value(le), value))
    for rest, series in grouped.items():
        series.sort(key=lambda pair: pair[0])
        last = -math.inf
        for bound, value in series:
            if value < last:
                problems.append(
                    f"{name}: bucket counts not cumulative at le={bound}"
                )
            last = value
        if not series or not math.isinf(series[-1][0]):
            problems.append(f"{name}: histogram missing le=+Inf bucket")
        elif rest in counts or () in counts:
            total = counts.get(rest, counts.get(()))
            if total is not None and series[-1][1] != total:
                problems.append(
                    f"{name}: +Inf bucket {series[-1][1]} != _count {total}"
                )
    return problems


def check_monotone_counters(before: str, after: str) -> list[str]:
    """Compare two successive scrapes; counters must never decrease."""
    problems: list[str] = []
    first = parse_exposition(before)
    second = parse_exposition(after)
    for name, entry in first.items():
        if entry["type"] not in ("counter", "histogram"):
            continue
        later = second.get(name)
        if later is None:
            problems.append(f"{name}: counter family vanished between scrapes")
            continue
        for sample_name, series in entry["samples"].items():
            for labels_key, value in series.items():
                new_value = later["samples"].get(sample_name, {}).get(
                    labels_key
                )
                if new_value is None:
                    problems.append(
                        f"{sample_name}{dict(labels_key)}: sample vanished"
                    )
                elif new_value < value:
                    problems.append(
                        f"{sample_name}{dict(labels_key)}: "
                        f"decreased {value} -> {new_value}"
                    )
    return problems
