"""SPEC2000-like workload models (the paper's 14-benchmark subset).

Section 5.1 subsets SPEC2000 INT+FP "for those with high L2 misses":
ammp, applu, art, bzip2, gcc, gzip, mcf, mgrid, parser, swim, twolf,
vortex, vpr, wupwise.  We cannot run the proprietary SPEC binaries, so each
benchmark is modeled as a deterministic mixture of the stream primitives in
:mod:`repro.workloads.synthetic`, parameterized from each program's
published memory personality (DESIGN.md Section 2 records the
substitution):

* FP array codes (applu/mgrid/swim/wupwise/art) — strided column sweeps
  over multi-megabyte arrays, iteration-aligned update counts;
* pointer/graph codes (mcf/ammp/twolf/vpr/parser) — Zipf-skewed line
  popularity with iteration-aligned base phases and popularity-skewed
  excess updates;
* mixed integer codes (bzip2/gcc/gzip/vortex) — tiled buffer passes,
  read-mostly code/static regions, larger cache-resident sets.

Each model also pre-seeds per-line sequence distances, standing in for the
4-billion-instruction fast-forward the paper performs before measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.trace import MemoryAccess
from repro.crypto.rng import HardwareRng
from repro.workloads.synthetic import (
    AccessStream,
    HotStream,
    StaticStream,
    StridedSweep,
    TiledSweep,
    ZipfStream,
    interleave,
    update_band,
)

__all__ = [
    "SPEC_BENCHMARKS",
    "DEMO_BENCHMARKS",
    "KNOWN_BENCHMARKS",
    "Workload",
    "build_streams",
    "build_workload",
]

#: The paper's benchmark subset, in its figures' order.
SPEC_BENCHMARKS = (
    "ammp",
    "applu",
    "art",
    "bzip2",
    "gcc",
    "gzip",
    "mcf",
    "mgrid",
    "parser",
    "swim",
    "twolf",
    "vortex",
    "vpr",
    "wupwise",
)

#: Extra models outside the paper's figure set — kept separate so the
#: figure/table commands reproduce exactly the 14-benchmark grid, while the
#: CLI (trace/series walkthroughs) also accepts these.  ``stream`` is a
#: STREAM-like pure sweep: maximally regular, so a timeline of it shows the
#: predicted/covered steady state textbook-clean.
DEMO_BENCHMARKS = ("stream",)

#: Every benchmark name the CLI accepts.
KNOWN_BENCHMARKS = SPEC_BENCHMARKS + DEMO_BENCHMARKS

_KL = 1024          # lines (32KB of data)
_REGION = 0x0800_0000   # 128MB between stream regions


def _base(index: int) -> int:
    return 0x1000_0000 + index * _REGION


@dataclass(frozen=True)
class Workload:
    """A generated trace plus its fast-forward counter state."""

    name: str
    trace: list[MemoryAccess] = field(repr=False)
    preseed: dict[int, int] = field(repr=False)
    seed: int = 1

    @property
    def references(self) -> int:
        return len(self.trace)


def build_streams(name: str) -> list[tuple[float, AccessStream]]:
    """The weighted stream mixture defining one benchmark model.

    Per-benchmark knobs (see the module docstring) are chosen so that the
    *miss-stream* statistics land in the regime the paper reports: FP sweep
    codes predict well under plain regular prediction; pointer codes carry
    a large frequently-updated band that only the two-level and context
    optimizations can track; the medium regions give the sequence-number
    cache its capacity gradient between 4KB/128KB/512KB.
    """
    if name == "ammp":
        return [
            (0.32, ZipfStream(_base(0), 48 * _KL, alpha=0.9, write_prob=0.45, mean_gap=10)),
            (0.13, update_band(_base(1), 6 * _KL, mean_gap=10)),
            (0.05, update_band(_base(5), 2 * _KL, mean_gap=10, deep=True)),
            (0.20, StridedSweep(_base(2), 12 * _KL, write_prob=0.30, mean_gap=10)),
            (0.10, StaticStream(_base(3), 16 * _KL, mean_gap=12)),
            (0.20, HotStream(_base(4), mean_gap=8)),
        ]
    if name == "applu":
        return [
            (0.40, StridedSweep(_base(0), 96 * _KL, write_prob=0.55, mean_gap=8)),
            (0.06, update_band(_base(1), 3 * _KL, mean_gap=8)),
            (0.17, StridedSweep(_base(2), 12 * _KL, write_prob=0.50, mean_gap=8)),
            (0.05, StaticStream(_base(3), 8 * _KL, mean_gap=10)),
            (0.32, HotStream(_base(4), mean_gap=7)),
        ]
    if name == "art":
        return [
            (0.50, StridedSweep(_base(0), 40 * _KL, write_prob=0.15, mean_gap=6)),
            (0.07, update_band(_base(1), 2 * _KL, write_prob=0.60, mean_gap=8)),
            (0.10, ZipfStream(_base(2), 8 * _KL, alpha=1.0, write_prob=0.60, mean_gap=8)),
            (0.33, HotStream(_base(3), mean_gap=6)),
        ]
    if name == "bzip2":
        return [
            (0.30, TiledSweep(_base(0), 64 * _KL, tile_lines=4 * _KL, write_prob=0.70, mean_gap=12)),
            (0.09, update_band(_base(1), 4 * _KL, mean_gap=12)),
            (0.03, update_band(_base(5), 1 * _KL, mean_gap=12, deep=True)),
            (0.13, ZipfStream(_base(2), 32 * _KL, alpha=0.7, write_prob=0.50, mean_gap=12)),
            (0.10, StaticStream(_base(3), 8 * _KL, mean_gap=12)),
            (0.35, HotStream(_base(4), mean_gap=10)),
        ]
    if name == "gcc":
        return [
            (0.25, StaticStream(_base(0), 64 * _KL, mean_gap=14, locality=0.8)),
            (0.20, ZipfStream(_base(1), 48 * _KL, alpha=0.6, write_prob=0.35, mean_gap=14)),
            (0.07, update_band(_base(2), 3 * _KL, mean_gap=13)),
            (0.03, update_band(_base(4), 1 * _KL, mean_gap=13, deep=True)),
            (0.45, HotStream(_base(3), mean_gap=12)),
        ]
    if name == "gzip":
        return [
            (0.22, StridedSweep(_base(0), 16 * _KL, write_prob=0.50, mean_gap=16)),
            (0.06, update_band(_base(1), 2 * _KL, mean_gap=14)),
            (0.17, StaticStream(_base(2), 16 * _KL, mean_gap=16)),
            (0.55, HotStream(_base(3), mean_gap=12)),
        ]
    if name == "mcf":
        return [
            (0.35, ZipfStream(_base(0), 128 * _KL, alpha=0.5, write_prob=0.35, mean_gap=5)),
            (0.16, update_band(_base(1), 8 * _KL, mean_gap=6)),
            (0.06, update_band(_base(4), 3 * _KL, mean_gap=6, deep=True)),
            (0.18, TiledSweep(_base(2), 64 * _KL, tile_lines=8 * _KL, write_prob=0.40, mean_gap=6)),
            (0.25, HotStream(_base(3), mean_gap=6)),
        ]
    if name == "mgrid":
        return [
            (0.42, StridedSweep(_base(0), 112 * _KL, write_prob=0.50, mean_gap=8)),
            (0.15, StridedSweep(_base(1), 16 * _KL, write_prob=0.50, mean_gap=8)),
            (0.05, update_band(_base(2), 2 * _KL, mean_gap=8)),
            (0.38, HotStream(_base(3), mean_gap=7)),
        ]
    if name == "parser":
        return [
            (0.25, ZipfStream(_base(0), 32 * _KL, alpha=0.8, write_prob=0.40, mean_gap=13)),
            (0.07, update_band(_base(1), 3 * _KL, mean_gap=12)),
            (0.03, update_band(_base(4), 1 * _KL, mean_gap=12, deep=True)),
            (0.20, StaticStream(_base(2), 32 * _KL, mean_gap=13)),
            (0.45, HotStream(_base(3), mean_gap=11)),
        ]
    if name == "swim":
        return [
            (0.45, StridedSweep(_base(0), 128 * _KL, write_prob=0.65, mean_gap=7)),
            (0.15, StridedSweep(_base(1), 16 * _KL, write_prob=0.60, mean_gap=7)),
            (0.07, update_band(_base(2), 3 * _KL, mean_gap=7)),
            (0.33, HotStream(_base(3), mean_gap=6)),
        ]
    if name == "twolf":
        return [
            (0.16, update_band(_base(0), 6 * _KL, mean_gap=9)),
            (0.06, update_band(_base(4), 2 * _KL, mean_gap=9, deep=True)),
            (0.28, ZipfStream(_base(1), 24 * _KL, alpha=0.8, write_prob=0.45, mean_gap=9)),
            (0.12, StaticStream(_base(2), 8 * _KL, mean_gap=10)),
            (0.38, HotStream(_base(3), mean_gap=8)),
        ]
    if name == "vortex":
        return [
            (0.20, StaticStream(_base(0), 64 * _KL, mean_gap=13)),
            (0.22, ZipfStream(_base(1), 48 * _KL, alpha=0.7, write_prob=0.45, mean_gap=12)),
            (0.10, update_band(_base(2), 4 * _KL, mean_gap=12)),
            (0.03, update_band(_base(4), 1 * _KL, mean_gap=12, deep=True)),
            (0.45, HotStream(_base(3), mean_gap=11)),
        ]
    if name == "vpr":
        return [
            (0.15, update_band(_base(0), 5 * _KL, mean_gap=10)),
            (0.05, update_band(_base(4), 2 * _KL, mean_gap=10, deep=True)),
            (0.26, ZipfStream(_base(1), 32 * _KL, alpha=0.75, write_prob=0.50, mean_gap=10)),
            (0.16, StridedSweep(_base(2), 12 * _KL, write_prob=0.40, mean_gap=10)),
            (0.38, HotStream(_base(3), mean_gap=9)),
        ]
    if name == "wupwise":
        return [
            (0.38, StridedSweep(_base(0), 80 * _KL, write_prob=0.50, mean_gap=11)),
            (0.10, StridedSweep(_base(1), 12 * _KL, write_prob=0.50, mean_gap=11)),
            (0.05, update_band(_base(2), 2 * _KL, mean_gap=11)),
            (0.12, StaticStream(_base(3), 16 * _KL, mean_gap=12)),
            (0.35, HotStream(_base(4), mean_gap=10)),
        ]
    if name == "stream":
        # Demo model (not part of the paper's grid): two long unit-stride
        # sweeps with a steady update band — the copy/triad personality.
        return [
            (0.55, StridedSweep(_base(0), 96 * _KL, write_prob=0.50, mean_gap=6)),
            (0.30, StridedSweep(_base(1), 96 * _KL, write_prob=0.50, mean_gap=6)),
            (0.10, update_band(_base(2), 4 * _KL, mean_gap=6)),
            (0.05, HotStream(_base(3), mean_gap=6)),
        ]
    raise ValueError(
        f"unknown benchmark {name!r}; expected one of {', '.join(KNOWN_BENCHMARKS)}"
    )


def build_workload(name: str, references: int = 60_000, seed: int = 1) -> Workload:
    """Generate a deterministic trace + fast-forward state for ``name``."""
    if references <= 0:
        raise ValueError(f"references must be positive, got {references}")
    streams = build_streams(name)
    # Stable across processes (unlike hash()), so traces are reproducible.
    name_tag = int.from_bytes(name.encode()[:8].ljust(8, b"\x00"), "big")
    rng = HardwareRng(seed * 0x9E3779B9 ^ name_tag)
    preseed: dict[int, int] = {}
    for _, stream in streams:
        preseed.update(stream.preseed(rng))
    trace = interleave(streams, references, rng, burst_mean=12)
    return Workload(name=name, trace=trace, preseed=preseed, seed=seed)
