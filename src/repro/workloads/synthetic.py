"""Synthetic memory-reference stream primitives.

The paper's mechanisms key off three properties of a program's L2-miss
stream (DESIGN.md Section 2): how often lines miss, how many times each
line has been written back since its page was mapped (its *sequence-number
distance*), and how those distances cluster in time and space.  The
primitives here expose exactly those knobs:

* :class:`IterativeSweep` — repeated passes over an array (the FP-loop
  idiom: swim/mgrid/applu).  Uniform per-page distances that grow one per
  written pass; sweep order can be permuted per pass, which destroys the
  spatial counter locality a sequence-number cache would otherwise enjoy
  while leaving update counts untouched.
* :class:`TiledSweep` — passes over one tile of a much larger array at a
  time (blocked numeric kernels, mcf's bucket scans).
* :class:`ZipfStream` — skewed random line popularity (pointer codes:
  twolf/vpr/parser/mcf).  Hot lines accumulate large, line-specific
  distances — the hard case for regular prediction.
* :class:`StaticStream` — read-only touches (code, rarely-written globals):
  distance stays 0, the easy case the paper's profiling found dominant.
* :class:`HotStream` — a cache-resident region that generates L1/L2 hits
  and no off-chip traffic (keeps instructions flowing between misses).

Every stream is deterministic (seeded :class:`~repro.crypto.rng.HardwareRng`)
and can *pre-seed* per-line sequence distances, standing in for the paper's
4-billion-instruction fast-forward that warms the profiled memory state
before measurement (Section 5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cpu.trace import MemoryAccess
from repro.crypto.rng import HardwareRng

__all__ = [
    "LINE_BYTES",
    "PAGE_BYTES",
    "AccessStream",
    "IterativeSweep",
    "StridedSweep",
    "TiledSweep",
    "ZipfStream",
    "StaticStream",
    "HotStream",
    "update_band",
    "interleave",
]

LINE_BYTES = 32
PAGE_BYTES = 4096
_LINES_PER_PAGE = PAGE_BYTES // LINE_BYTES


class AccessStream:
    """Interface: an endless source of references with a warm-up state."""

    def next_access(self, rng: HardwareRng) -> MemoryAccess:
        raise NotImplementedError

    def preseed(self, rng: HardwareRng) -> dict[int, int]:
        """Map line address -> initial sequence distance (fast-forward)."""
        return {}

    def touched_lines(self) -> list[int]:
        """All line addresses this stream can emit (for footprint checks)."""
        raise NotImplementedError


def _jitter_gap(rng: HardwareRng, mean_gap: int) -> int:
    """Gap instructions with +-50% uniform jitter around the mean."""
    if mean_gap <= 1:
        return max(mean_gap, 0)
    low = mean_gap // 2
    return low + rng.next_below(mean_gap)


@dataclass
class IterativeSweep(AccessStream):
    """Repeated passes over ``num_lines`` lines starting at ``base``.

    Parameters
    ----------
    write_prob:
        Probability a touched line is written this pass (written passes
        advance the line's sequence distance by one on eviction).
    permuted:
        Visit lines in a fresh pseudo-random order each pass; sequential
        order otherwise.
    phase_spread:
        Pre-seeded per-page distance is uniform in ``[0, phase_spread]``,
        modeling pages at different phases of the update cycle after
        fast-forward.
    """

    base: int
    num_lines: int
    mean_gap: int = 10
    write_prob: float = 0.5
    permuted: bool = True
    phase_spread: int = 8

    def __post_init__(self) -> None:
        if self.num_lines <= 0:
            raise ValueError(f"num_lines must be positive, got {self.num_lines}")
        self._cursor = 0
        self._perm_state = 0x243F6A8885A308D3  # per-pass permutation salt
        self._refresh_permutation()

    def _refresh_permutation(self) -> None:
        """Pick this pass's affine permutation (stride coprime to n)."""
        stride = (self._perm_state % self.num_lines) | 1
        while math.gcd(stride, self.num_lines) != 1:
            stride += 2
        self._stride = stride
        self._offset = (self._perm_state >> 32) % self.num_lines

    def _line_at(self, index: int) -> int:
        if self.permuted:
            index = (index * self._stride + self._offset) % self.num_lines
        return self.base + index * LINE_BYTES

    def next_access(self, rng: HardwareRng) -> MemoryAccess:
        address = self._line_at(self._cursor)
        self._cursor += 1
        if self._cursor >= self.num_lines:
            self._cursor = 0
            self._perm_state = (
                self._perm_state * 6364136223846793005 + 1442695040888963407
            ) & ((1 << 64) - 1)
            self._refresh_permutation()
        is_write = rng.next_float() < self.write_prob
        return MemoryAccess(
            address=address,
            is_write=is_write,
            gap_instructions=_jitter_gap(rng, self.mean_gap),
        )

    def preseed(self, rng: HardwareRng) -> dict[int, int]:
        seeds: dict[int, int] = {}
        pages = -(-self.num_lines // _LINES_PER_PAGE)
        for page_index in range(pages):
            phase = rng.next_below(self.phase_spread + 1)
            first = page_index * _LINES_PER_PAGE
            last = min(first + _LINES_PER_PAGE, self.num_lines)
            for line_index in range(first, last):
                seeds[self.base + line_index * LINE_BYTES] = phase
        return seeds

    def touched_lines(self) -> list[int]:
        return [self.base + i * LINE_BYTES for i in range(self.num_lines)]


@dataclass
class StridedSweep(AccessStream):
    """Strided passes over an array, in ascending (page-clustered) order.

    Models the column-order sweeps of Fortran FP codes (swim/mgrid/applu):
    pass *k* visits lines ``k % stride_lines, k % stride_lines + stride_lines, ...``
    so that

    * successive misses land in successive *pages* (bursts that train the
      two-level range table and keep the context LOR stable),
    * no two misses of a pass share a 32-byte sequence-number-cache line
      (``stride_lines >= 4``), reproducing the poor spatial counter
      locality the paper observed, and
    * every line's update count advances once per ``stride_lines`` passes,
      keeping distances uniform across the region (iteration-aligned).

    ``phase_spread`` pre-seeds one distance for the whole region (iterative
    codes update entire arrays together), drawn uniformly from
    ``[0, phase_spread]``.
    """

    base: int
    num_lines: int
    stride_lines: int = 4
    mean_gap: int = 10
    write_prob: float = 0.6
    phase_spread: int = 3
    phase_base_range: tuple[int, int] = (0, 2)

    def __post_init__(self) -> None:
        if self.num_lines <= 0:
            raise ValueError(f"num_lines must be positive, got {self.num_lines}")
        if self.stride_lines < 1:
            raise ValueError(f"stride_lines must be >= 1, got {self.stride_lines}")
        self._offset = 0
        self._cursor = 0

    def next_access(self, rng: HardwareRng) -> MemoryAccess:
        index = self._offset + self._cursor * self.stride_lines
        if index >= self.num_lines:
            self._offset = (self._offset + 1) % self.stride_lines
            self._cursor = 0
            index = self._offset
        address = self.base + index * LINE_BYTES
        self._cursor += 1
        is_write = rng.next_float() < self.write_prob
        return MemoryAccess(
            address=address,
            is_write=is_write,
            gap_instructions=_jitter_gap(rng, self.mean_gap),
        )

    def preseed(self, rng: HardwareRng) -> dict[int, int]:
        """Iteration-aligned distances: a region-wide base phase plus a
        spatially smooth jitter — blocks of 8 neighbouring pages share a
        phase, because a sweep front crosses adjacent pages together.  The
        smoothness is what the context predictor's LOR exploits.
        """
        low, high = self.phase_base_range
        region_phase = low + rng.next_below(high - low + 1)
        seeds: dict[int, int] = {}
        pages = -(-self.num_lines // _LINES_PER_PAGE)
        phase = region_phase
        for page_index in range(pages):
            if page_index % 8 == 0:
                phase = region_phase + rng.next_below(self.phase_spread + 1)
            first = page_index * _LINES_PER_PAGE
            last = min(first + _LINES_PER_PAGE, self.num_lines)
            for line_index in range(first, last):
                seeds[self.base + line_index * LINE_BYTES] = phase
        return seeds

    def touched_lines(self) -> list[int]:
        return [self.base + i * LINE_BYTES for i in range(self.num_lines)]


@dataclass
class TiledSweep(AccessStream):
    """Sweep one tile of a large array per pass, then advance tiles."""

    base: int
    total_lines: int
    tile_lines: int
    mean_gap: int = 10
    write_prob: float = 0.5
    passes_per_tile: int = 2
    phase_spread: int = 3

    def __post_init__(self) -> None:
        if self.total_lines <= 0 or self.tile_lines <= 0:
            raise ValueError("total_lines and tile_lines must be positive")
        if self.tile_lines > self.total_lines:
            raise ValueError("tile_lines cannot exceed total_lines")
        self._tile = 0
        self._cursor = 0
        self._tile_pass = 0
        self._num_tiles = -(-self.total_lines // self.tile_lines)
        self._salt = 0xB7E151628AED2A6A
        self._refresh_stride()

    def _tile_size(self) -> int:
        tile_start = self._tile * self.tile_lines
        return min(self.tile_lines, self.total_lines - tile_start)

    def _refresh_stride(self) -> None:
        tile_size = self._tile_size()
        stride = (self._salt % tile_size) | 1
        while math.gcd(stride, tile_size) != 1:
            stride += 2
        self._stride = stride

    def next_access(self, rng: HardwareRng) -> MemoryAccess:
        tile_start = self._tile * self.tile_lines
        tile_size = self._tile_size()
        index = tile_start + (self._cursor * self._stride) % tile_size
        address = self.base + index * LINE_BYTES
        self._cursor += 1
        if self._cursor >= tile_size:
            self._cursor = 0
            self._tile_pass += 1
            self._salt = (self._salt * 2862933555777941757 + 3037000493) & ((1 << 64) - 1)
            if self._tile_pass >= self.passes_per_tile:
                self._tile_pass = 0
                self._tile = (self._tile + 1) % self._num_tiles
            self._refresh_stride()
        is_write = rng.next_float() < self.write_prob
        return MemoryAccess(
            address=address,
            is_write=is_write,
            gap_instructions=_jitter_gap(rng, self.mean_gap),
        )

    def preseed(self, rng: HardwareRng) -> dict[int, int]:
        region_phase = rng.next_below(3)
        seeds: dict[int, int] = {}
        pages = -(-self.total_lines // _LINES_PER_PAGE)
        for page_index in range(pages):
            phase = region_phase + rng.next_below(self.phase_spread + 1)
            first = page_index * _LINES_PER_PAGE
            last = min(first + _LINES_PER_PAGE, self.total_lines)
            for line_index in range(first, last):
                seeds[self.base + line_index * LINE_BYTES] = phase
        return seeds

    def touched_lines(self) -> list[int]:
        return [self.base + i * LINE_BYTES for i in range(self.total_lines)]


@dataclass
class ZipfStream(AccessStream):
    """Zipf-popularity random line references (pointer-chasing codes)."""

    base: int
    num_lines: int
    alpha: float = 0.8
    mean_gap: int = 12
    write_prob: float = 0.4
    max_preseed_distance: int = 40

    def __post_init__(self) -> None:
        if self.num_lines <= 0:
            raise ValueError(f"num_lines must be positive, got {self.num_lines}")
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        weights = [1.0 / (rank ** self.alpha) for rank in range(1, self.num_lines + 1)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        self._cdf = cumulative
        # Popular ranks are scattered over the region so hot lines do not
        # all share a page.
        self._shuffle_stride = (self.num_lines // 2) * 2 + 1
        while math.gcd(self._shuffle_stride, self.num_lines) != 1:
            self._shuffle_stride += 2

    def _rank_to_line(self, rank: int) -> int:
        return (rank * self._shuffle_stride) % self.num_lines

    def _sample_rank(self, rng: HardwareRng) -> int:
        u = rng.next_float()
        low, high = 0, self.num_lines - 1
        while low < high:
            mid = (low + high) // 2
            if self._cdf[mid] < u:
                low = mid + 1
            else:
                high = mid
        return low

    def next_access(self, rng: HardwareRng) -> MemoryAccess:
        rank = self._sample_rank(rng)
        address = self.base + self._rank_to_line(rank) * LINE_BYTES
        is_write = rng.next_float() < self.write_prob
        return MemoryAccess(
            address=address,
            is_write=is_write,
            gap_instructions=_jitter_gap(rng, self.mean_gap),
        )

    def preseed(self, rng: HardwareRng) -> dict[int, int]:
        """Tail lines share a small base phase; the hottest few percent —
        which mostly live in the L2 and rarely miss — carry large,
        line-specific distances from their heavy update history."""
        base_phase = rng.next_below(4)
        hot_cutoff = max(1, self.num_lines // 120)
        seeds: dict[int, int] = {}
        for rank in range(self.num_lines):
            line = self.base + self._rank_to_line(rank) * LINE_BYTES
            if rank < hot_cutoff:
                seeds[line] = base_phase + 6 + rng.next_below(25)
            else:
                seeds[line] = base_phase
        return seeds

    def touched_lines(self) -> list[int]:
        return [self.base + i * LINE_BYTES for i in range(self.num_lines)]


@dataclass
class StaticStream(AccessStream):
    """Read-only references over a region (code / constant data)."""

    base: int
    num_lines: int
    mean_gap: int = 12
    locality: float = 0.7    # probability the next reference stays nearby
    is_instruction: bool = False

    def __post_init__(self) -> None:
        if self.num_lines <= 0:
            raise ValueError(f"num_lines must be positive, got {self.num_lines}")
        self._cursor = 0

    def next_access(self, rng: HardwareRng) -> MemoryAccess:
        if rng.next_float() < self.locality:
            self._cursor = (self._cursor + 1) % self.num_lines
        else:
            self._cursor = rng.next_below(self.num_lines)
        address = self.base + self._cursor * LINE_BYTES
        return MemoryAccess(
            address=address,
            is_write=False,
            is_instruction=self.is_instruction,
            gap_instructions=_jitter_gap(rng, self.mean_gap),
        )

    def touched_lines(self) -> list[int]:
        return [self.base + i * LINE_BYTES for i in range(self.num_lines)]


@dataclass
class HotStream(AccessStream):
    """Cache-resident working set: generates hits, not misses."""

    base: int
    num_lines: int = 64
    mean_gap: int = 6
    write_prob: float = 0.3

    def __post_init__(self) -> None:
        if self.num_lines <= 0:
            raise ValueError(f"num_lines must be positive, got {self.num_lines}")

    def next_access(self, rng: HardwareRng) -> MemoryAccess:
        line = rng.next_below(self.num_lines)
        offset = rng.next_below(LINE_BYTES // 8) * 8
        is_write = rng.next_float() < self.write_prob
        return MemoryAccess(
            address=self.base + line * LINE_BYTES + offset,
            is_write=is_write,
            gap_instructions=_jitter_gap(rng, self.mean_gap),
        )

    def touched_lines(self) -> list[int]:
        return [self.base + i * LINE_BYTES for i in range(self.num_lines)]


def update_band(
    base: int,
    num_lines: int,
    mean_gap: int = 10,
    write_prob: float = 0.75,
    phase_range: tuple[int, int] = (10, 26),
    deep: bool = False,
) -> StridedSweep:
    """A contiguous, frequently-updated structure (twolf's cell array, mcf's
    node buckets): every line already carries a large, band-clustered
    sequence distance after fast-forward.

    This is the population regular prediction cannot reach (distance far
    beyond the depth), while the two-level range table and the context LOR
    track it — the exact separation Figures 12/13 measure.

    ``deep=True`` moves the band beyond the reach of a 4-bit range table
    (bucket saturates at 15, i.e. distance 95 with depth 5): hammered
    structures whose update counts only the unbounded context LOR can
    follow.
    """
    if deep:
        phase_range = (110, 170)
    return StridedSweep(
        base,
        num_lines,
        stride_lines=4,
        mean_gap=mean_gap,
        write_prob=write_prob,
        phase_spread=3,
        phase_base_range=phase_range,
    )


def interleave(
    streams: list[tuple[float, AccessStream]],
    references: int,
    rng: HardwareRng,
    burst_mean: int = 6,
) -> list[MemoryAccess]:
    """Mix streams by weight into one deterministic trace.

    Streams are visited in *bursts* (mean length ``burst_mean``): programs
    work in phases, so consecutive references — and therefore consecutive
    L2 misses — tend to come from one structure.  Burstiness is what makes
    the context predictor's single LOR register effective (Section 7.4).
    """
    if references < 0:
        raise ValueError(f"references must be non-negative, got {references}")
    if not streams:
        raise ValueError("at least one stream is required")
    if burst_mean < 1:
        raise ValueError(f"burst_mean must be >= 1, got {burst_mean}")
    total_weight = sum(weight for weight, _ in streams)
    if total_weight <= 0:
        raise ValueError("stream weights must sum to a positive value")
    boundaries = []
    acc = 0.0
    for weight, stream in streams:
        acc += weight / total_weight
        boundaries.append((acc, stream))

    def pick_stream() -> AccessStream:
        u = rng.next_float()
        for boundary, stream in boundaries:
            if u <= boundary:
                return stream
        return boundaries[-1][1]

    trace: list[MemoryAccess] = []
    while len(trace) < references:
        stream = pick_stream()
        run = 1 + rng.next_below(2 * burst_mean - 1)
        for _ in range(min(run, references - len(trace))):
            trace.append(stream.next_access(rng))
    return trace
