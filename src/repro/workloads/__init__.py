"""Workload generators: synthetic stream primitives and SPEC2000-like models."""

from repro.workloads.spec import SPEC_BENCHMARKS, Workload, build_streams, build_workload
from repro.workloads.synthetic import (
    AccessStream,
    HotStream,
    IterativeSweep,
    StaticStream,
    StridedSweep,
    TiledSweep,
    ZipfStream,
    interleave,
)

__all__ = [
    "SPEC_BENCHMARKS",
    "Workload",
    "build_streams",
    "build_workload",
    "AccessStream",
    "HotStream",
    "IterativeSweep",
    "StaticStream",
    "StridedSweep",
    "TiledSweep",
    "ZipfStream",
    "interleave",
]
