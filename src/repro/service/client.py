"""Blocking HTTP client for the sweep service (stdlib ``http.client``).

The thin wrapper behind ``repro submit`` / ``repro jobs`` / ``repro
watch`` — and the reference consumer of the API: tests and the CI smoke
drive the server exclusively through this client, so anything it can do,
any HTTP client can.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(Exception):
    """A structured error response from the service (status + payload)."""

    def __init__(self, status: int, payload: dict):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = error.get("message") or f"HTTP {status}"
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.payload = payload

    @property
    def error_type(self) -> str:
        error = self.payload.get("error", {}) if isinstance(self.payload, dict) else {}
        return error.get("type", "unknown")


class ServiceClient:
    """One service endpoint; every method is a fresh connection."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        split = urlsplit(base_url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {split.scheme!r} (http only)")
        netloc = split.netloc or split.path
        self.host, _, port = netloc.partition(":")
        self.port = int(port) if port else 80
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        connection = self._connection()
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            try:
                decoded = json.loads(data.decode("utf-8")) if data else {}
            except ValueError:
                decoded = {"raw": data.decode("utf-8", "replace")}
            if response.status >= 400:
                raise ServiceError(response.status, decoded)
            return decoded
        finally:
            connection.close()

    # -- API -------------------------------------------------------------------

    def submit(
        self,
        tenant: str,
        benchmarks: list[str],
        schemes: list[str],
        machine: str = "table1-256K",
        references: int | None = None,
        seed: int = 1,
    ) -> dict:
        """Submit one grid; returns the receipt (job id + dedup'd keys)."""
        return self._request(
            "POST",
            "/v1/jobs",
            body={
                "tenant": tenant,
                "benchmarks": list(benchmarks),
                "schemes": list(schemes),
                "machine": machine,
                "references": references,
                "seed": seed,
            },
        )

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self, tenant: str | None = None) -> list[dict]:
        path = "/v1/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._request("GET", path)["jobs"]

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def result_bytes(self, job_id: str) -> bytes:
        """The job's canonical result bytes, verbatim (identity checks)."""
        connection = self._connection()
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/result")
            response = connection.getresponse()
            data = response.read()
            if response.status >= 400:
                try:
                    decoded = json.loads(data.decode("utf-8"))
                except ValueError:
                    decoded = {"raw": data.decode("utf-8", "replace")}
                raise ServiceError(response.status, decoded)
            return data
        finally:
            connection.close()

    def trace(self, job_id: str) -> dict:
        """The job's fleet-merged Chrome trace (journal + manifest + beacons)."""
        return self._request("GET", f"/v1/jobs/{job_id}/trace")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def usage(self, tenant: str) -> dict:
        return self._request("GET", f"/v1/tenants/{tenant}/usage")

    # -- operations ------------------------------------------------------------

    def metrics(self) -> str:
        """The raw ``/metrics`` Prometheus text exposition."""
        connection = self._connection()
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            data = response.read()
            if response.status >= 400:
                raise ServiceError(
                    response.status, {"raw": data.decode("utf-8", "replace")}
                )
            return data.decode("utf-8")
        finally:
            connection.close()

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def ready(self) -> dict:
        """The ``/readyz`` verdict; raises :class:`ServiceError` on 503."""
        return self._request("GET", "/readyz")

    def events(self, job_id: str):
        """Yield the job's live event stream (blocks until terminal).

        The connection stays open for the duration; ``http.client``
        de-chunks the response, so iteration is line-per-event.
        """
        connection = self._connection()
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    decoded = json.loads(data.decode("utf-8"))
                except ValueError:
                    decoded = {"raw": data.decode("utf-8", "replace")}
                raise ServiceError(response.status, decoded)
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 0.1) -> dict:
        """Poll until the job reaches a terminal state; returns its record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(poll)
