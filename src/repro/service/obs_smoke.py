"""Observability smoke: the CI gate for the fleet observability plane.

Starts a real service with the **fabric** executor (worker 0 in-process
plus forked drain peers, so the job genuinely spans multiple OS
processes), submits one tiny grid, and asserts the observability
contract end to end:

1. **probes** — ``GET /healthz`` answers and ``GET /readyz`` reports
   ready (store writable, admission loop heartbeating);
2. **metrics** — ``GET /metrics`` passes the pure-python exposition
   linter on both a cold and a warm scrape, and every counter is
   monotone between the two;
3. **trace** — ``GET /v1/jobs/{id}/trace`` returns a Chrome trace that
   passes :func:`~repro.telemetry.events.validate_chrome_trace`, spans
   at least three process lanes, and is stitched from records written
   by at least three distinct OS processes carrying the job's trace
   context.

``--artifacts DIR`` saves both scrapes, the merged trace, and the
report for CI upload.  Run directly (CI's ``metrics-smoke`` job)::

    PYTHONPATH=src python -m repro.service.obs_smoke --refs 2000 \
        --artifacts obs-artifacts --json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.experiments import cache as result_cache
from repro.service.client import ServiceClient
from repro.service.queue import JobStore
from repro.service.scheduler import SchedulerPolicy, ServiceScheduler
from repro.service.server import serve_in_thread
from repro.telemetry.events import validate_chrome_trace
from repro.telemetry.prometheus import (
    check_monotone_counters,
    lint_exposition,
    parse_exposition,
)

__all__ = ["run_obs_smoke", "main"]

_BENCHMARKS = ["stream", "gzip"]
_SCHEMES = ["baseline", "pred_regular"]
_TENANT = "obs-smoke"


def _wait_ready(client: ServiceClient, timeout: float = 10.0) -> dict:
    """Poll ``/readyz`` until ready (the loop needs one tick to start)."""
    from repro.service.client import ServiceError

    deadline = time.monotonic() + timeout
    last: dict = {}
    while time.monotonic() < deadline:
        try:
            return client.ready()
        except ServiceError as err:
            last = err.payload
        time.sleep(0.1)
    raise AssertionError(f"service never became ready: {last}")


def _observed_pids(store: JobStore, job_id: str, cache_root: Path) -> set[int]:
    """Distinct OS pids that wrote records carrying this job's context.

    Journal spans and manifest lines are trace-tagged directly; worker
    beacons belong to the job's sweep (its lease directory) and stamp
    their own pid — together they witness every process the job touched.
    """
    from repro.experiments.supervisor import manifest_path, parse_manifest_line

    record = store.job(job_id)
    pids: set[int] = set()
    for event in record.events:
        if event.get("event") == "span" and isinstance(event.get("pid"), int):
            pids.add(event["pid"])
    sweep_key = record.spec.sweep_key
    try:
        manifest_text = manifest_path(cache_root, sweep_key).read_text()
    except OSError:
        manifest_text = ""
    for line in manifest_text.splitlines():
        parsed = parse_manifest_line(line.strip()) if line.strip() else None
        if parsed is None:
            continue
        trace = parsed.get("trace") or {}
        if trace.get("job_id") != job_id:
            continue
        if isinstance(parsed.get("pid"), int):
            pids.add(parsed["pid"])
    workers_dir = cache_root / "leases" / sweep_key / "workers"
    if workers_dir.is_dir():
        for path in workers_dir.glob("*.json"):
            try:
                beacon = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(beacon.get("pid"), int):
                pids.add(beacon["pid"])
    return pids


def run_obs_smoke(
    references: int = 2000,
    seed: int = 1,
    workers: int = 3,
    cache_dir: str | None = None,
    artifacts: str | None = None,
) -> dict:
    """Run the observability smoke; returns the report, raises on violation."""
    saved_env = os.environ.get(result_cache.CACHE_DIR_ENV)
    if cache_dir is not None:
        os.environ[result_cache.CACHE_DIR_ENV] = str(cache_dir)
        result_cache.reset_default_cache()
    started = time.perf_counter()
    artifacts_dir = Path(artifacts) if artifacts else None
    if artifacts_dir is not None:
        artifacts_dir.mkdir(parents=True, exist_ok=True)

    def _save(name: str, text: str) -> None:
        if artifacts_dir is not None:
            (artifacts_dir / name).write_text(text)

    try:
        store = JobStore()
        handle = serve_in_thread(
            ServiceScheduler(
                store=store,
                policy=SchedulerPolicy(
                    sample_interval_seconds=0.05,
                    executor="fabric",
                    fabric_workers=workers,
                ),
            )
        )
        try:
            client = ServiceClient(handle.url)

            # 1. probes.
            health = client.health()
            if health != {"ok": True}:
                raise AssertionError(f"unexpected /healthz payload: {health}")
            verdict = _wait_ready(client)
            if not verdict.get("ready"):
                raise AssertionError(f"/readyz not ready: {verdict}")

            # 2. cold scrape lints before any job exists.
            cold = client.metrics()
            _save("metrics-cold.txt", cold)
            problems = lint_exposition(cold)
            if problems:
                raise AssertionError(f"cold /metrics fails lint: {problems}")

            # 3. one tiny job through the fabric (multi-process drain).
            receipt = client.submit(
                _TENANT, _BENCHMARKS, _SCHEMES, references=references, seed=seed
            )
            job_id = receipt["job_id"]
            if not receipt.get("trace", {}).get("job_id") == job_id:
                raise AssertionError(f"receipt carries no trace context: {receipt}")
            record = client.wait(job_id, timeout=300.0)
            if record["state"] != "done":
                raise AssertionError(f"job ended {record['state']}: {record}")

            # 4. warm scrape: still lints, counters moved only forward.
            warm = client.metrics()
            _save("metrics-warm.txt", warm)
            problems = lint_exposition(warm)
            if problems:
                raise AssertionError(f"warm /metrics fails lint: {problems}")
            regressions = check_monotone_counters(cold, warm)
            if regressions:
                raise AssertionError(f"counters moved backwards: {regressions}")
            families = parse_exposition(warm)
            for required in (
                "repro_service_http_requests_total",
                "repro_service_jobs_admitted_total",
                "repro_service_latency_submit_to_result_sec",
            ):
                if required not in families:
                    raise AssertionError(f"/metrics is missing {required}")

            # 5. the fleet trace spans the whole fleet.
            trace = client.trace(job_id)
            _save("trace.json", json.dumps(trace, sort_keys=True))
            trace_problems = validate_chrome_trace(trace)
            if trace_problems:
                raise AssertionError(f"fleet trace invalid: {trace_problems}")
            lanes = {
                event["args"]["name"]
                for event in trace["traceEvents"]
                if event.get("ph") == "M" and event.get("name") == "process_name"
            }
            if len(lanes) < 3:
                raise AssertionError(f"expected >=3 process lanes, got {lanes}")
            pids = _observed_pids(store, job_id, result_cache.default_cache().root)
            if len(pids) < 3:
                raise AssertionError(
                    f"expected records from >=3 distinct OS processes, got {pids}"
                )
        finally:
            handle.stop()

        report = {
            "ok": True,
            "references": references,
            "workers": workers,
            "job_id": job_id,
            "lanes": sorted(lanes),
            "distinct_pids": len(pids),
            "trace_events": len(trace["traceEvents"]),
            "metric_families": len(families),
            "elapsed_sec": round(time.perf_counter() - started, 3),
        }
        _save("report.json", json.dumps(report, indent=2, sort_keys=True))
        return report
    finally:
        if cache_dir is not None:
            if saved_env is None:
                os.environ.pop(result_cache.CACHE_DIR_ENV, None)
            else:
                os.environ[result_cache.CACHE_DIR_ENV] = saved_env
            result_cache.reset_default_cache()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="observability smoke test")
    parser.add_argument("--refs", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--workers", type=int, default=3, help="fabric drain width"
    )
    parser.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="save scrapes, trace and report here for CI upload",
    )
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    args = parser.parse_args(argv)
    report = run_obs_smoke(
        references=args.refs,
        seed=args.seed,
        workers=args.workers,
        artifacts=args.artifacts,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"obs smoke ok: job {report['job_id']}, "
            f"{len(report['lanes'])} lanes, {report['distinct_pids']} pids, "
            f"{report['metric_families']} metric families, "
            f"{report['elapsed_sec']}s"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
