"""Durable on-disk job store for the sweep service.

Each job lives under ``<cache root>/service/jobs/<job_id>/`` as:

* ``spec.json`` — the immutable grid spec (atomic write, never rewritten);
* ``journal.jsonl`` — an append-only state journal (``queued`` → ``running``
  → ``done``/``failed``/``cancelled`` plus progress samples), replayed on
  restart exactly like the sweep manifest: torn trailing lines are
  salvaged or skipped via
  :func:`repro.experiments.supervisor.parse_manifest_line`;
* ``result.json`` — the canonical :class:`~repro.experiments.sweep.SweepResult`
  bytes, written atomically once the job completes.

The store holds no in-memory truth: every query replays the journal, so a
killed-and-restarted service (or a second reader such as the event
stream) reconstructs identical state from disk.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.cache import default_cache
from repro.experiments.config import TABLE1_1M, TABLE1_256K, MachineConfig
from repro.experiments.runner import SCHEMES
from repro.experiments.supervisor import grid_cells, parse_manifest_line, sweep_key
from repro.ioutil import atomic_write_json, atomic_write_text
from repro.workloads.spec import KNOWN_BENCHMARKS

__all__ = [
    "JOB_SCHEMA",
    "TERMINAL_STATES",
    "MACHINES",
    "JobSpec",
    "JobRecord",
    "JobStore",
]

JOB_SCHEMA = "repro.service.job/v1"

#: States from which a job never transitions again.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Machines a job spec may name (the paper's two Table-1 configurations).
MACHINES: dict[str, MachineConfig] = {
    TABLE1_256K.name: TABLE1_256K,
    TABLE1_1M.name: TABLE1_1M,
}

_TENANT_RE = re.compile(r"^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$")


@dataclass(frozen=True)
class JobSpec:
    """One tenant's grid request — everything needed to run it verbatim.

    Validation happens at construction so a malformed submission is
    rejected before anything touches disk; the spec is frozen because the
    job id and cache keys are derived from it.
    """

    tenant: str
    benchmarks: tuple[str, ...]
    schemes: tuple[str, ...]
    machine: str = TABLE1_256K.name
    references: int | None = None
    seed: int = 1

    def __post_init__(self) -> None:
        if not _TENANT_RE.match(self.tenant):
            raise ValueError(
                f"invalid tenant id {self.tenant!r} (alphanumeric, dot, "
                "dash, underscore; max 64 chars)"
            )
        if not self.benchmarks:
            raise ValueError("spec names no benchmarks")
        if not self.schemes:
            raise ValueError("spec names no schemes")
        for benchmark in self.benchmarks:
            if benchmark not in KNOWN_BENCHMARKS:
                raise ValueError(f"unknown benchmark {benchmark!r}")
        for scheme in self.schemes:
            if scheme not in SCHEMES:
                raise ValueError(f"unknown scheme {scheme!r}")
        if self.machine not in MACHINES:
            raise ValueError(
                f"unknown machine {self.machine!r}; "
                f"expected one of {', '.join(sorted(MACHINES))}"
            )
        if self.references is not None and self.references <= 0:
            raise ValueError(f"references must be positive, got {self.references}")

    @property
    def machine_config(self) -> MachineConfig:
        return MACHINES[self.machine]

    @property
    def sweep_key(self) -> str:
        """The manifest key this job's grid writes/resumes under."""
        return sweep_key(
            list(self.benchmarks),
            list(self.schemes),
            self.machine_config,
            self.references,
            self.seed,
        )

    def cells(self) -> list[tuple[str, str, str]]:
        """``(benchmark, scheme, cache_key)`` for every grid point.

        Cache keys are content-addressed, so two tenants submitting
        overlapping grids produce overlapping key sets — the dedup
        substrate the scheduler's accounting is built on.
        """
        return [
            (benchmark, spec.name, cell_key)
            for benchmark, spec, cell_key in grid_cells(
                list(self.benchmarks),
                list(self.schemes),
                self.machine_config,
                self.references,
                self.seed,
            )
        ]

    def to_dict(self) -> dict:
        return {
            "schema": JOB_SCHEMA,
            "tenant": self.tenant,
            "benchmarks": list(self.benchmarks),
            "schemes": list(self.schemes),
            "machine": self.machine,
            "references": self.references,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        schema = payload.get("schema", JOB_SCHEMA)
        if schema != JOB_SCHEMA:
            raise ValueError(f"not a service job spec (schema {schema!r})")
        return cls(
            tenant=payload["tenant"],
            benchmarks=tuple(payload["benchmarks"]),
            schemes=tuple(payload["schemes"]),
            machine=payload.get("machine", TABLE1_256K.name),
            references=payload.get("references"),
            seed=payload.get("seed", 1),
        )


@dataclass
class JobRecord:
    """One job's current state, reconstructed from spec + journal replay."""

    job_id: str
    spec: JobSpec
    state: str
    submitted: float
    events: list[dict] = field(repr=False, default_factory=list)
    detail: dict = field(default_factory=dict)
    #: Wall clock of the newest journal line — how an operator (or
    #: ``repro jobs``) tells a progressing job from a stuck one.
    last_event: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "submitted": self.submitted,
            "last_event": self.last_event,
            "spec": self.spec.to_dict(),
            "detail": dict(self.detail),
        }


class JobStore:
    """Crash-safe directory-of-jobs persistence.

    All writes are either atomic whole-file replaces (`spec.json`,
    `result.json`) or single-line ``O_APPEND`` journal writes, so a crash
    at any point leaves every job replayable.
    """

    def __init__(self, root: Path | str | None = None):
        if root is None:
            root = default_cache().root / "service"
        self.root = Path(root)

    # -- layout ---------------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.root / "jobs" / job_id

    def spec_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "spec.json"

    def journal_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "journal.jsonl"

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    # -- writes ---------------------------------------------------------------

    def submit(self, spec: JobSpec, job_id: str | None = None) -> JobRecord:
        """Persist a new job: spec atomically, then the ``queued`` event."""
        if job_id is None:
            job_id = f"job-{os.urandom(6).hex()}"
        job_dir = self.job_dir(job_id)
        if job_dir.exists():
            raise ValueError(f"job id collision: {job_id}")
        job_dir.mkdir(parents=True)
        submitted = time.time()
        atomic_write_json(
            self.spec_path(job_id),
            {**spec.to_dict(), "submitted": submitted, "job_id": job_id},
        )
        self.set_state(job_id, "queued")
        return JobRecord(
            job_id=job_id, spec=spec, state="queued", submitted=submitted
        )

    def append(self, job_id: str, record: dict) -> None:
        """Append one journal event (single write + flush, torn-write safe)."""
        line = json.dumps(record, sort_keys=True) + "\n"
        with self.journal_path(job_id).open("a") as handle:
            handle.write(line)
            handle.flush()

    def set_state(self, job_id: str, state: str, **extra) -> None:
        self.append(
            job_id, {"event": "state", "state": state, "ts": time.time(), **extra}
        )

    def store_result(self, job_id: str, canonical_json: str) -> None:
        """Atomically persist the job's canonical result bytes."""
        atomic_write_text(self.result_path(job_id), canonical_json)

    # -- reads (journal replay) ------------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        spec_path = self.spec_path(job_id)
        try:
            payload = json.loads(spec_path.read_text())
        except FileNotFoundError:
            raise KeyError(f"unknown job {job_id!r}") from None
        spec = JobSpec.from_dict(payload)
        submitted = payload.get("submitted", 0.0)
        events: list[dict] = []
        state = "queued"
        detail: dict = {}
        last_event = submitted
        try:
            text = self.journal_path(job_id).read_text()
        except FileNotFoundError:
            text = ""
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            record = parse_manifest_line(line)
            if record is None:
                continue  # torn line from a crash mid-append
            events.append(record)
            ts = record.get("ts")
            if isinstance(ts, (int, float)) and ts > last_event:
                last_event = ts
            if record.get("event") == "state":
                state = record.get("state", state)
                detail = {
                    key: value
                    for key, value in record.items()
                    if key not in ("event", "state", "ts")
                }
        return JobRecord(
            job_id=job_id,
            spec=spec,
            state=state,
            submitted=submitted,
            events=events,
            detail=detail,
            last_event=last_event,
        )

    def jobs(self, tenant: str | None = None) -> list[JobRecord]:
        """All jobs (optionally one tenant's), oldest submission first."""
        jobs_dir = self.root / "jobs"
        if not jobs_dir.is_dir():
            return []
        records = []
        for path in jobs_dir.iterdir():
            if not (path / "spec.json").exists():
                continue
            record = self.job(path.name)
            if tenant is None or record.spec.tenant == tenant:
                records.append(record)
        records.sort(key=lambda record: (record.submitted, record.job_id))
        return records

    def recover(self) -> list[JobRecord]:
        """Re-queue every non-terminal job after a restart.

        Jobs found ``running`` were interrupted mid-execution; they are
        journalled back to ``queued`` with a ``recovered`` marker and will
        re-execute with ``resume=True`` — cached cells are served from the
        manifest + result cache, so no completed work is recomputed.
        """
        recovered = []
        for record in self.jobs():
            if record.terminal:
                continue
            if record.state == "running":
                self.set_state(record.job_id, "queued", recovered=True)
                record.state = "queued"
                record.detail = {"recovered": True}
            recovered.append(record)
        return recovered
