"""Stdlib-only asyncio HTTP/1.1 front door for the sweep service.

Routes (all JSON; errors are structured ``{"error": {...}}`` envelopes):

* ``POST /v1/jobs`` — submit a grid spec; 200 with job id + dedup'd
  cache keys + the minted trace context, or 429 when the tenant's quota
  rejects it;
* ``GET /v1/jobs`` / ``GET /v1/jobs?tenant=t`` — list jobs;
* ``GET /v1/jobs/{id}`` — status (journal replay);
* ``GET /v1/jobs/{id}/events`` — chunked ``application/x-ndjson`` live
  stream interleaving the job journal (state changes, progress samples)
  with the sweep manifest (per-cell start/done/failed), until terminal;
* ``GET /v1/jobs/{id}/result`` — the canonical result bytes (409 until
  the job is done);
* ``GET /v1/jobs/{id}/trace`` — the fleet-merged Chrome trace (journal
  + manifest + worker beacons, one lane per process);
* ``DELETE /v1/jobs/{id}`` — cancel;
* ``GET /v1/tenants/{id}/usage`` — dedup accounting;
* ``GET /metrics`` — Prometheus text exposition of the scheduler's
  registry; ``GET /healthz`` — process liveness; ``GET /readyz`` —
  store writable + scheduler loop heartbeating (503 when not).

The HTTP layer is deliberately minimal — request line, headers,
``Content-Length`` bodies, chunked responses — because the only clients
are :mod:`repro.service.client`, curl, Prometheus, and CI.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

from repro.experiments.cache import default_cache
from repro.experiments.supervisor import ManifestTail, manifest_path
from repro.service.queue import JobSpec
from repro.service.scheduler import QuotaExceeded, ServiceScheduler
from repro.telemetry.fleet import fleet_trace
from repro.telemetry.log import get_logger
from repro.telemetry.prometheus import encode_exposition

__all__ = ["ServiceServer", "ServiceHandle", "serve_in_thread"]

_MAX_BODY_BYTES = 1 << 20


class _HttpError(Exception):
    def __init__(self, status: int, error_type: str, message: str):
        super().__init__(message)
        self.status = status
        self.payload = {
            "error": {"type": error_type, "status": status, "message": message}
        }


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_LOG = get_logger("server")


def _job_id_from_path(path: str) -> str | None:
    """Best-effort job id for error logs (``/v1/jobs/<id>...`` routes)."""
    segments = [s for s in urlsplit(path).path.split("/") if s]
    if segments[:2] == ["v1", "jobs"] and len(segments) >= 3:
        return segments[2]
    return None


class ServiceServer:
    """One asyncio server bound to a scheduler (same event loop)."""

    def __init__(
        self,
        scheduler: ServiceScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._scheduler_task: asyncio.Task | None = None

    async def start(self) -> None:
        """Bind the socket, recover the store, start the admission loop."""
        self.scheduler.recover()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler_task = asyncio.ensure_future(self.scheduler.run())

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.scheduler.request_stop()
        if self._scheduler_task is not None:
            await self._scheduler_task

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        method = path = None
        try:
            method, path, body = await self._read_request(reader)
            self.scheduler.registry.counter("service.http.requests").inc()
            await self._dispatch(writer, method, path, body)
        except _HttpError as error:
            if error.status >= 500:
                self.scheduler.registry.counter("service.http.errors").inc()
            await self._send_json(writer, error.status, error.payload)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except Exception as error:  # noqa: BLE001 — fault barrier per connection
            # The barrier keeps one bad handler from killing the accept
            # loop, but a swallowed exception is an invisible 500: count
            # it and say which request (and job) blew up.
            self.scheduler.registry.counter("service.http.errors").inc()
            _LOG.error(
                "request handler failed",
                method=method, path=path,
                job=_job_id_from_path(path) if path else None,
                error_type=type(error).__name__, error=str(error),
            )
            try:
                await self._send_json(
                    writer,
                    500,
                    {
                        "error": {
                            "type": type(error).__name__,
                            "status": 500,
                            "message": str(error),
                        }
                    },
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "bad_request", "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, "bad_request", f"malformed request line: {request_line!r}")
        method, path, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad_request", "bad Content-Length") from None
        if content_length > _MAX_BODY_BYTES:
            raise _HttpError(400, "bad_request", "request body too large")
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    async def _dispatch(self, writer, method: str, path: str, body: bytes) -> None:
        split = urlsplit(path)
        query = {k: v[0] for k, v in parse_qs(split.query).items()}
        segments = [s for s in split.path.split("/") if s]
        if segments == ["metrics"] and method == "GET":
            return await self._get_metrics(writer)
        if segments == ["healthz"] and method == "GET":
            return await self._send_json(writer, 200, {"ok": True})
        if segments == ["readyz"] and method == "GET":
            verdict = self.scheduler.readiness()
            return await self._send_json(
                writer, 200 if verdict["ready"] else 503, verdict
            )
        if segments[:2] == ["v1", "jobs"]:
            if len(segments) == 2:
                if method == "POST":
                    return await self._post_job(writer, body)
                if method == "GET":
                    return await self._list_jobs(writer, query.get("tenant"))
                raise _HttpError(405, "method_not_allowed", f"{method} {split.path}")
            job_id = segments[2]
            if len(segments) == 3:
                if method == "GET":
                    return await self._get_job(writer, job_id)
                if method == "DELETE":
                    return await self._cancel_job(writer, job_id)
                raise _HttpError(405, "method_not_allowed", f"{method} {split.path}")
            if len(segments) == 4 and method == "GET":
                if segments[3] == "events":
                    return await self._stream_events(writer, job_id)
                if segments[3] == "result":
                    return await self._get_result(writer, job_id)
                if segments[3] == "trace":
                    return await self._get_trace(writer, job_id)
        elif (
            segments[:2] == ["v1", "tenants"]
            and len(segments) == 4
            and segments[3] == "usage"
            and method == "GET"
        ):
            return await self._send_json(
                writer, 200, self.scheduler.usage(segments[2])
            )
        raise _HttpError(404, "not_found", f"no route for {method} {split.path}")

    # -- routes ----------------------------------------------------------------

    async def _post_job(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
            spec = JobSpec.from_dict(payload)
        except (ValueError, KeyError, TypeError) as error:
            raise _HttpError(400, "bad_spec", str(error)) from None
        try:
            receipt = self.scheduler.submit(spec, origin="server")
        except QuotaExceeded as error:
            await self._send_json(writer, error.status, error.to_dict())
            return
        await self._send_json(writer, 200, receipt)

    async def _get_metrics(self, writer) -> None:
        registry = self.scheduler.registry
        text = encode_exposition(registry.values(), registry.kinds())
        await self._send_raw(
            writer, 200, "text/plain; version=0.0.4; charset=utf-8",
            text.encode("utf-8"),
        )

    async def _get_trace(self, writer, job_id: str) -> None:
        record = self._job_record(job_id)  # 404 before the folding work
        del record
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(
            None, fleet_trace, job_id, self.scheduler.store
        )
        await self._send_json(writer, 200, payload)

    def _job_record(self, job_id: str):
        try:
            return self.scheduler.store.job(job_id)
        except KeyError:
            raise _HttpError(404, "unknown_job", f"unknown job {job_id!r}") from None

    async def _get_job(self, writer, job_id: str) -> None:
        await self._send_json(writer, 200, self._job_record(job_id).to_dict())

    async def _list_jobs(self, writer, tenant: str | None) -> None:
        records = self.scheduler.store.jobs(tenant)
        await self._send_json(
            writer, 200, {"jobs": [record.to_dict() for record in records]}
        )

    async def _cancel_job(self, writer, job_id: str) -> None:
        self._job_record(job_id)
        record = self.scheduler.cancel(job_id)
        await self._send_json(writer, 200, record.to_dict())

    async def _get_result(self, writer, job_id: str) -> None:
        record = self._job_record(job_id)
        if record.state != "done":
            raise _HttpError(
                409,
                "result_not_ready",
                f"job {job_id} is {record.state}, not done",
            )
        data = self.scheduler.store.result_path(job_id).read_bytes()
        await self._send_raw(writer, 200, "application/json", data)

    async def _stream_events(self, writer, job_id: str) -> None:
        """Chunked NDJSON: job journal + sweep manifest, until terminal.

        Each line is one event tagged with its source.  The stream ends
        after the job reaches a terminal state *and* both journals have
        drained dry — the final drains run after the state check, so the
        terminal event itself (and the manifest lines appended just
        before it) are never dropped.
        """
        record = self._job_record(job_id)
        store = self.scheduler.store
        job_tail = ManifestTail(store.journal_path(job_id))
        manifest_tail = ManifestTail(
            manifest_path(default_cache().root, record.spec.sweep_key)
        )
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        poll = self.scheduler.policy.poll_interval_seconds

        async def emit(source: str, events: list[dict]) -> None:
            for event in events:
                record = dict(event)
                # Manifest lines carry their own "source" (which fabric
                # worker wrote them); keep it as "origin" so the feed tag
                # is unambiguous.
                if "source" in record:
                    record["origin"] = record.pop("source")
                record["source"] = source
                line = json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
                writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
            if events:
                await writer.drain()

        while True:
            terminal = store.job(job_id).terminal
            await emit("job", job_tail.drain())
            await emit("manifest", manifest_tail.drain())
            if terminal:
                # One final pass: anything appended between the drains
                # above and the terminal flag we already observed.
                await emit("job", job_tail.drain())
                await emit("manifest", manifest_tail.drain())
                break
            await asyncio.sleep(poll)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- response helpers ------------------------------------------------------

    async def _send_raw(
        self, writer, status: int, content_type: str, data: bytes
    ) -> None:
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + data)
        await writer.drain()

    async def _send_json(self, writer, status: int, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        await self._send_raw(writer, status, "application/json", data)


@dataclass
class ServiceHandle:
    """A server running in a daemon thread (tests, smoke, bench)."""

    server: ServiceServer
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self, timeout: float = 10.0) -> None:
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop)
        future.result(timeout=timeout)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=timeout)


def serve_in_thread(
    scheduler: ServiceScheduler | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ServiceHandle:
    """Start a full service (scheduler + HTTP) in a background thread."""
    scheduler = scheduler or ServiceScheduler()
    server = ServiceServer(scheduler, host=host, port=port)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _start() -> None:
            try:
                await server.start()
            except BaseException as error:  # noqa: BLE001 — reported to starter
                failure.append(error)
                raise
            finally:
                started.set()

        try:
            loop.run_until_complete(_start())
            loop.run_forever()
        except BaseException:
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("service did not start within 30s")
    if failure:
        raise RuntimeError(f"service failed to start: {failure[0]}")
    return ServiceHandle(server=server, thread=thread, loop=loop)
