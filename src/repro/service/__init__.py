"""repro.service — the async, multi-tenant sweep-as-a-service front door.

Clients submit (benchmark x scheme) grids as jobs, stream live progress,
and fetch byte-stable results without touching the executor directly:

* :mod:`repro.service.queue` — durable on-disk job store (JSON spec +
  append-only JSONL state journal per job, crash-safe replay);
* :mod:`repro.service.scheduler` — asyncio admission/execution loop with
  per-tenant quotas and cache-hit vs computed-cell dedup accounting;
* :mod:`repro.service.server` — stdlib-only asyncio HTTP/1.1 front door
  (``POST /v1/jobs``, chunked ``/events`` streams, tenant usage);
* :mod:`repro.service.client` — blocking client behind the ``repro
  serve`` / ``submit`` / ``jobs`` / ``watch`` CLI verbs.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import (
    JOB_SCHEMA,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    JobStore,
)
from repro.service.scheduler import (
    QuotaExceeded,
    SchedulerPolicy,
    ServiceScheduler,
    TenantQuota,
)
from repro.service.server import ServiceHandle, ServiceServer, serve_in_thread

__all__ = [
    "JOB_SCHEMA",
    "TERMINAL_STATES",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "QuotaExceeded",
    "SchedulerPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "ServiceScheduler",
    "ServiceServer",
    "TenantQuota",
    "serve_in_thread",
]
