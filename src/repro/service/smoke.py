"""End-to-end service smoke: the CI gate for the front door.

Starts a real server (background thread), drives it exclusively through
:class:`~repro.service.client.ServiceClient`, and asserts the service
contract:

1. **cold identity** — a submitted grid's result bytes equal a direct
   serial :func:`~repro.experiments.sweep.run_grid` of the same spec;
2. **live progress** — the event stream carried manifest ``start``/
   ``done`` events and at least one progress ``sample``;
3. **warm identity + dedup** — a second tenant resubmitting the same
   grid is served entirely from cache (all cells hit) with byte-identical
   results;
4. **usage accounting** — each tenant's hits + computed sum to the grid
   size.

Run directly (CI's ``service-smoke`` job)::

    PYTHONPATH=src python -m repro.service.smoke --refs 3000 --json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments import cache as result_cache
from repro.experiments.sweep import run_grid
from repro.service.client import ServiceClient
from repro.service.queue import JobStore
from repro.service.scheduler import SchedulerPolicy, ServiceScheduler
from repro.service.server import serve_in_thread

__all__ = ["run_service_smoke", "main"]

_BENCHMARKS = ["stream"]
_SCHEMES = ["baseline", "pred_regular"]


def run_service_smoke(
    references: int = 2000, seed: int = 1, cache_dir: str | None = None
) -> dict:
    """Run the full smoke; returns the report dict, raises on violation."""
    saved_env = os.environ.get(result_cache.CACHE_DIR_ENV)
    if cache_dir is not None:
        os.environ[result_cache.CACHE_DIR_ENV] = str(cache_dir)
        result_cache.reset_default_cache()
    started = time.perf_counter()
    try:
        direct = run_grid(
            _BENCHMARKS, _SCHEMES, references=references, seed=seed
        ).canonical_json().encode("utf-8")

        handle = serve_in_thread(
            ServiceScheduler(
                store=JobStore(),
                policy=SchedulerPolicy(sample_interval_seconds=0.05),
            )
        )
        try:
            client = ServiceClient(handle.url)

            # 1. cold submission (the direct run above did not use the
            #    cache, so every cell computes inside the service).
            receipt = client.submit(
                "tenant-a", _BENCHMARKS, _SCHEMES, references=references, seed=seed
            )
            job_id = receipt["job_id"]
            events = list(client.events(job_id))
            record = client.wait(job_id, timeout=300.0)
            if record["state"] != "done":
                raise AssertionError(f"job ended {record['state']}: {record}")
            service_bytes = client.result_bytes(job_id)
            if service_bytes != direct:
                raise AssertionError(
                    "service result differs from direct run_grid "
                    f"({len(service_bytes)} vs {len(direct)} bytes)"
                )
            samples = [e for e in events if e.get("event") == "sample"]
            manifest_done = [
                e
                for e in events
                if e.get("source") == "manifest" and e.get("event") == "done"
            ]
            if not samples:
                raise AssertionError("event stream carried no progress samples")
            if not manifest_done:
                raise AssertionError("event stream carried no manifest done events")

            # 2. warm resubmission from a second tenant: full dedup.
            warm_receipt = client.submit(
                "tenant-b", _BENCHMARKS, _SCHEMES, references=references, seed=seed
            )
            warm_record = client.wait(warm_receipt["job_id"], timeout=120.0)
            warm_bytes = client.result_bytes(warm_receipt["job_id"])
            if warm_bytes != direct:
                raise AssertionError("warm service result differs from direct run")
            cells_total = warm_record["detail"]["cells_total"]
            if warm_record["detail"]["cache_hits"] != cells_total:
                raise AssertionError(
                    f"warm job should be all cache hits: {warm_record['detail']}"
                )

            # 3. usage accounting sums per tenant.
            usage = {t: client.usage(t) for t in ("tenant-a", "tenant-b")}
            for tenant, report in usage.items():
                if report["cache_hits"] + report["cells_computed"] != report[
                    "cells_total"
                ]:
                    raise AssertionError(f"usage does not sum for {tenant}: {report}")
        finally:
            handle.stop()

        return {
            "ok": True,
            "references": references,
            "grid_cells": len(_BENCHMARKS) * len(_SCHEMES),
            "cold_identical": True,
            "warm_identical": True,
            "events_total": len(events),
            "progress_samples": len(samples),
            "manifest_done_events": len(manifest_done),
            "warm_cache_hits": warm_record["detail"]["cache_hits"],
            "usage": usage,
            "elapsed_sec": round(time.perf_counter() - started, 3),
        }
    finally:
        if cache_dir is not None:
            if saved_env is None:
                os.environ.pop(result_cache.CACHE_DIR_ENV, None)
            else:
                os.environ[result_cache.CACHE_DIR_ENV] = saved_env
            result_cache.reset_default_cache()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="sweep-service smoke test")
    parser.add_argument("--refs", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    args = parser.parse_args(argv)
    report = run_service_smoke(references=args.refs, seed=args.seed)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"service smoke ok: {report['grid_cells']} cells, "
            f"{report['progress_samples']} samples, "
            f"warm hits {report['warm_cache_hits']}, "
            f"{report['elapsed_sec']}s"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
