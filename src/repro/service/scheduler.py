"""Asyncio job scheduler: admission under quotas, execution, accounting.

The scheduler is the only component that runs grids.  Admission applies
per-tenant quotas (inflight jobs, concurrent jobs, cells per job) and a
global concurrency cap; execution routes each admitted job through
:func:`~repro.experiments.supervisor.run_grid_supervised` (or a fabric
drain) in a worker thread, with ``use_cache=True`` + ``resume=True`` so
cells another tenant — or a previous life of this service — already
computed are served from the content-addressed cache instead of re-run.

Dedup accounting is measured, not trusted: immediately before running,
the scheduler counts which of the job's cache keys already resolve
(``cache_hits``); the remainder is ``cells_computed``.  The two always
sum to the grid size, and because keys are content-addressed the same
split is what any tenant would observe — cross-tenant dedup shows up as
a second tenant's job arriving all-hits.
"""

from __future__ import annotations

import asyncio
import re
import time
from dataclasses import dataclass

from repro.experiments.cache import default_cache
from repro.experiments.supervisor import (
    ManifestTail,
    SupervisorPolicy,
    manifest_path,
    run_grid_supervised,
)
from repro.service.queue import TERMINAL_STATES, JobRecord, JobSpec, JobStore
from repro.telemetry.fleet import TraceContext, span_record
from repro.telemetry.log import get_logger
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.snapshot import MetricsSnapshot

__all__ = [
    "TenantQuota",
    "SchedulerPolicy",
    "QuotaExceeded",
    "ServiceScheduler",
]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (the multi-tenant fairness contract)."""

    max_inflight_jobs: int = 4       # queued + running at once
    max_concurrent_jobs: int = 1     # running at once
    max_cells_per_job: int = 256     # grid size ceiling per submission


@dataclass(frozen=True)
class SchedulerPolicy:
    """Service-wide execution knobs."""

    max_concurrent_jobs: int = 2          # across all tenants
    sample_interval_seconds: float = 0.25  # progress-sample cadence
    poll_interval_seconds: float = 0.05    # admission-loop cadence
    cell_jobs: int = 1                     # worker processes per grid
    executor: str = "supervised"           # "supervised" | "fabric"
    fabric_workers: int = 2                # drain width in fabric mode


class QuotaExceeded(Exception):
    """A submission the tenant's quota rejects (HTTP 429 at the edge)."""

    status = 429

    def __init__(self, tenant: str, reason: str, limit: int, current: int):
        super().__init__(
            f"tenant {tenant!r} over quota: {reason} (limit {limit}, at {current})"
        )
        self.tenant = tenant
        self.reason = reason
        self.limit = limit
        self.current = current

    def to_dict(self) -> dict:
        return {
            "error": {
                "type": "quota_exceeded",
                "status": self.status,
                "message": str(self),
                "tenant": self.tenant,
                "reason": self.reason,
                "limit": self.limit,
                "current": self.current,
            }
        }


def _tenant_slug(tenant: str) -> str:
    return re.sub(r"[^a-z0-9_]", "_", tenant.lower())


#: Seconds buckets resolving both a warm all-cache-hits job (~10ms) and a
#: cold multi-cell grid (minutes).
LATENCY_BOUNDS_SECONDS = (
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

_LOG = get_logger("scheduler")


class ServiceScheduler:
    """Admission + execution loop over a :class:`JobStore`.

    Synchronous entry points (:meth:`submit`, :meth:`usage`,
    :meth:`cancel`) are safe to call from the server's event loop; the
    grid itself runs in a thread via ``run_in_executor`` so the loop stays
    responsive while a job computes.
    """

    def __init__(
        self,
        store: JobStore | None = None,
        quota: TenantQuota | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        policy: SchedulerPolicy | None = None,
        registry: MetricRegistry | None = None,
    ):
        self.store = store or JobStore()
        self.quota = quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self.policy = policy or SchedulerPolicy()
        self.registry = registry or MetricRegistry()
        self._stop = False
        self._active: dict[str, asyncio.Task] = {}
        self._cancelled: set[str] = set()
        self._denials: dict[str, int] = {}
        #: Wall clock of the admission loop's last iteration — the
        #: liveness signal behind ``GET /readyz``.
        self.last_tick = 0.0

    # -- admission -------------------------------------------------------------

    def tenant_quota(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.quota)

    def submit(self, spec: JobSpec, origin: str = "scheduler") -> dict:
        """Admit one job or raise :class:`QuotaExceeded`.

        Returns the submission receipt: job id, state, sweep key, the
        dedup precheck — which of the grid's cache keys already resolve
        (possibly computed by *other* tenants; content addressing makes
        that indistinguishable from this tenant's own warm cache, which
        is the point) — and the job's freshly minted trace context.

        ``origin`` names the layer that accepted the submission (the HTTP
        front door passes ``"server"``); it becomes the role of the
        ``submitted`` span, so the fleet trace renders the entry point as
        its own process lane.
        """
        quota = self.tenant_quota(spec.tenant)
        cells = spec.cells()
        if len(cells) > quota.max_cells_per_job:
            self._deny(spec.tenant)
            raise QuotaExceeded(
                spec.tenant, "cells per job", quota.max_cells_per_job, len(cells)
            )
        inflight = [
            record
            for record in self.store.jobs(spec.tenant)
            if record.state not in TERMINAL_STATES
        ]
        if len(inflight) >= quota.max_inflight_jobs:
            self._deny(spec.tenant)
            raise QuotaExceeded(
                spec.tenant, "inflight jobs", quota.max_inflight_jobs, len(inflight)
            )
        disk = default_cache()
        cached = [key for _, _, key in cells if disk.lookup_cell(key) is not None]
        record = self.store.submit(spec)
        root = TraceContext.mint(record.job_id)
        self.store.append(
            record.job_id,
            span_record("submitted", origin, root, tenant=spec.tenant),
        )
        self.store.append(
            record.job_id, span_record("admitted", "scheduler", root.child())
        )
        self.registry.counter("service.jobs.admitted").inc()
        self._refresh_queue_depth()
        _LOG.info(
            "job admitted", job=record.job_id, tenant=spec.tenant,
            cells=len(cells), cached=len(cached),
        )
        return {
            "job_id": record.job_id,
            "state": record.state,
            "sweep_key": spec.sweep_key,
            "cells_total": len(cells),
            "cached_keys": cached,
            "trace": root.to_dict(),
        }

    def _deny(self, tenant: str) -> None:
        self._denials[tenant] = self._denials.get(tenant, 0) + 1
        self.registry.counter("service.jobs.denied").inc()
        _LOG.warning("submission denied by quota", tenant=tenant)

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued or running job (idempotent for terminal states)."""
        record = self.store.job(job_id)
        if record.terminal:
            return record
        self._cancelled.add(job_id)
        self.store.set_state(job_id, "cancelled")
        self.registry.counter("service.jobs.cancelled").inc()
        self._refresh_queue_depth()
        return self.store.job(job_id)

    def recover(self) -> list[JobRecord]:
        """Replay the store after a restart; non-terminal jobs re-queue."""
        return self.store.recover()

    def request_stop(self) -> None:
        self._stop = True

    # -- the loop --------------------------------------------------------------

    async def run(self) -> None:
        """Admit queued jobs FIFO until :meth:`request_stop`, then drain."""
        self._stop = False  # a stop request only ends the run it interrupts
        try:
            while not self._stop:
                self.last_tick = time.time()
                self._admit_ready()
                await asyncio.sleep(self.policy.poll_interval_seconds)
        finally:
            if self._active:
                await asyncio.gather(
                    *self._active.values(), return_exceptions=True
                )

    def _admit_ready(self) -> None:
        self._active = {
            job_id: task
            for job_id, task in self._active.items()
            if not task.done()
        }
        if len(self._active) >= self.policy.max_concurrent_jobs:
            return
        running_by_tenant: dict[str, int] = {}
        queued: list[JobRecord] = []
        for record in self.store.jobs():
            if record.job_id in self._cancelled:
                continue
            if record.job_id in self._active:
                tenant = record.spec.tenant
                running_by_tenant[tenant] = running_by_tenant.get(tenant, 0) + 1
            elif record.state == "queued":
                queued.append(record)
        self.registry.gauge("service.queue.depth").set(len(queued))
        for record in queued:
            if len(self._active) >= self.policy.max_concurrent_jobs:
                break
            tenant = record.spec.tenant
            limit = self.tenant_quota(tenant).max_concurrent_jobs
            if running_by_tenant.get(tenant, 0) >= limit:
                continue
            running_by_tenant[tenant] = running_by_tenant.get(tenant, 0) + 1
            self._active[record.job_id] = asyncio.ensure_future(
                self._execute(record.job_id)
            )

    def _refresh_queue_depth(self) -> None:
        depth = sum(
            1 for record in self.store.jobs() if record.state == "queued"
        )
        self.registry.gauge("service.queue.depth").set(depth)

    # -- liveness --------------------------------------------------------------

    def heartbeat_age(self) -> float | None:
        """Seconds since the admission loop last ticked; None before it
        ever ran (a started-but-not-yet-looping scheduler is not ready)."""
        if not self.last_tick:
            return None
        return max(0.0, time.time() - self.last_tick)

    def readiness(self) -> dict:
        """The ``/readyz`` verdict: store writable + loop heartbeating.

        A scheduler whose loop stalled (deadlocked executor, crashed
        task) or whose store is unwritable (full/read-only disk) can
        accept a POST but never run it — that is exactly the state a
        load balancer must route away from.
        """
        checks: dict[str, dict] = {}
        probe = self.store.root / f".readyz-probe.{id(self):x}"
        try:
            probe.parent.mkdir(parents=True, exist_ok=True)
            probe.write_text(str(time.time()))
            probe.unlink()
            checks["store_writable"] = {"ok": True}
        except OSError as error:
            checks["store_writable"] = {"ok": False, "error": str(error)}
        age = self.heartbeat_age()
        limit = max(5 * self.policy.poll_interval_seconds, 2.0)
        checks["scheduler_loop"] = {
            "ok": age is not None and age < limit,
            "heartbeat_age": age,
            "limit_seconds": limit,
        }
        return {
            "ready": all(check["ok"] for check in checks.values()),
            "checks": checks,
        }

    # -- execution -------------------------------------------------------------

    def _job_trace(self, record: JobRecord) -> TraceContext:
        """The job's root trace context, replayed from its journal."""
        for event in record.events:
            if event.get("event") == "span" and event.get("trace"):
                try:
                    return TraceContext.from_dict(event["trace"])
                except (KeyError, TypeError):
                    continue
        return TraceContext.mint(record.job_id)

    async def _execute(self, job_id: str) -> None:
        record = self.store.job(job_id)
        spec = record.spec
        trace = self._job_trace(record)
        resumed = bool(record.detail.get("recovered"))
        running_ts = time.time()
        self.store.set_state(job_id, "running", sweep_key=spec.sweep_key)
        self.store.append(
            job_id, span_record("scheduled", "scheduler", trace.child())
        )
        loop = asyncio.get_running_loop()
        sampler = asyncio.ensure_future(self._sample_progress(job_id, spec))
        try:
            sweep, accounting = await loop.run_in_executor(
                None, self._run_job, spec, trace.child()
            )
        except Exception as error:  # noqa: BLE001 — journalled, not raised
            sampler.cancel()
            await asyncio.gather(sampler, return_exceptions=True)
            if job_id in self._cancelled:
                return
            self.store.set_state(
                job_id,
                "failed",
                error_type=type(error).__name__,
                message=str(error),
            )
            self.registry.counter("service.jobs.failed").inc()
            _LOG.error(
                "job failed", job=job_id, tenant=spec.tenant,
                error_type=type(error).__name__, error=str(error),
            )
            return
        sampler.cancel()
        await asyncio.gather(sampler, return_exceptions=True)
        if job_id in self._cancelled:
            # The cancelled job's cells still landed in the shared cache
            # (content-addressed work is never wasted), but its result and
            # terminal state stay "cancelled".
            return
        self.store.store_result(job_id, sweep.canonical_json())
        done_ts = time.time()
        self.store.append(
            job_id, span_record("result_stored", "scheduler", trace.child())
        )
        self.store.set_state(
            job_id,
            "done",
            resumed=resumed,
            complete=sweep.complete,
            **accounting,
        )
        self.registry.counter("service.jobs.completed").inc()
        slug = _tenant_slug(spec.tenant)
        total = accounting["cells_total"]
        if total:
            self.registry.gauge(f"service.tenant.{slug}.cache_hit_ratio").set(
                accounting["cache_hits"] / total
            )
        self._observe_latency(
            job_id, spec, submitted=record.submitted or running_ts,
            running_ts=running_ts, done_ts=done_ts,
        )
        _LOG.info(
            "job done", job=job_id, tenant=spec.tenant,
            seconds=round(done_ts - running_ts, 3), **accounting,
        )

    # -- latency accounting ----------------------------------------------------

    def _first_cell_ts(self, job_id: str, spec: JobSpec, floor: float) -> float:
        """When this job's first cell started, per the sweep manifest.

        Prefers lines tagged with the job's trace context; falls back to
        the first ``start`` at or after the job began running (an
        untagged line from a direct CLI drain of the same sweep).  A
        fully warm resume writes no ``start`` at all — then the job's
        "first cell" is the moment execution began.
        """
        from repro.experiments.supervisor import parse_manifest_line

        best = None
        try:
            text = manifest_path(default_cache().root, spec.sweep_key).read_text()
        except OSError:
            return floor
        for line in text.splitlines():
            record = parse_manifest_line(line.strip()) if line.strip() else None
            if record is None or record.get("event") != "start":
                continue
            ts = record.get("ts")
            if not isinstance(ts, (int, float)):
                continue
            tagged = (record.get("trace") or {}).get("job_id")
            if tagged is not None:
                if tagged != job_id:
                    continue
            elif ts < floor:
                continue
            if best is None or ts < best:
                best = ts
        return best if best is not None else floor

    def _observe_latency(
        self, job_id: str, spec: JobSpec,
        submitted: float, running_ts: float, done_ts: float,
    ) -> None:
        """Journal and export the submit→schedule→first-cell→result split."""
        first_cell = self._first_cell_ts(job_id, spec, running_ts)
        stages = {
            "submit_to_schedule_sec": max(0.0, running_ts - submitted),
            "schedule_to_first_cell_sec": max(0.0, first_cell - running_ts),
            "first_cell_to_result_sec": max(0.0, done_ts - first_cell),
            "submit_to_result_sec": max(0.0, done_ts - submitted),
        }
        slug = _tenant_slug(spec.tenant)
        for name, seconds in stages.items():
            for metric in (
                f"service.latency.{name}",
                f"service.tenant.{slug}.latency.{name}",
            ):
                self.registry.histogram(
                    metric, bounds=LATENCY_BOUNDS_SECONDS
                ).observe(seconds)
        self.store.append(
            job_id,
            {"event": "latency", "ts": done_ts,
             **{name: round(value, 6) for name, value in stages.items()}},
        )

    def _run_job(self, spec: JobSpec, trace: TraceContext | None = None):
        """Run one grid in a worker thread; returns (sweep, accounting).

        The job's trace context is activated around the run — thread-local
        for the supervisor/manifest writes happening on this thread, and
        via ``REPRO_TRACE`` for the worker processes forked below, so
        every manifest line lands tagged with the job that caused it.
        """
        from contextlib import nullcontext

        disk = default_cache()
        cells = spec.cells()
        hits = sum(
            1 for _, _, key in cells if disk.lookup_cell(key) is not None
        )
        with trace.activate() if trace is not None else nullcontext():
            if self.policy.executor == "fabric":
                from repro.fabric.coordinator import SwarmSpec, drain_swarm

                sweep = drain_swarm(
                    SwarmSpec(
                        benchmarks=spec.benchmarks,
                        schemes=spec.schemes,
                        machine=spec.machine,
                        references=spec.references,
                        seed=spec.seed,
                    ),
                    workers=self.policy.fabric_workers,
                )
            else:
                sweep = run_grid_supervised(
                    list(spec.benchmarks),
                    list(spec.schemes),
                    machine=spec.machine_config,
                    references=spec.references,
                    seed=spec.seed,
                    keep_going=True,
                    jobs=self.policy.cell_jobs,
                    use_cache=True,
                    resume=True,
                    policy=SupervisorPolicy(),
                )
        accounting = {
            "cells_total": len(cells),
            "cache_hits": hits,
            "cells_computed": len(cells) - hits,
        }
        return sweep, accounting

    async def _sample_progress(self, job_id: str, spec: JobSpec) -> None:
        """Journal periodic progress snapshots while the job runs.

        Samples are cumulative :class:`MetricsSnapshot` dicts with
        ``meta["accesses"]`` carrying the sample index, so a consumer can
        fold them straight into a
        :class:`~repro.telemetry.snapshot.SnapshotSeries`.  The first
        sample is emitted immediately so even a fully warm job (zero
        compute time) streams at least one sample.
        """
        tail = ManifestTail(
            manifest_path(default_cache().root, spec.sweep_key)
        )
        done = failed = 0
        index = 0
        try:
            while True:
                for event in tail.drain():
                    if event.get("event") == "done":
                        done += 1
                    elif event.get("event") == "failed":
                        failed += 1
                index += 1
                snapshot = MetricsSnapshot(
                    values={
                        "service.job.cells_done": done,
                        "service.job.cells_failed": failed,
                        "service.job.cells_total": len(spec.cells()),
                    },
                    kinds={
                        "service.job.cells_done": "counter",
                        "service.job.cells_failed": "counter",
                        "service.job.cells_total": "gauge",
                    },
                    meta={"accesses": index, "job_id": job_id},
                )
                self.store.append(
                    job_id,
                    {
                        "event": "sample",
                        "ts": time.time(),
                        "snapshot": snapshot.to_dict(),
                    },
                )
                await asyncio.sleep(self.policy.sample_interval_seconds)
        except asyncio.CancelledError:
            return

    # -- usage accounting ------------------------------------------------------

    def usage(self, tenant: str) -> dict:
        """Fold one tenant's journals into a usage report.

        Everything except the denial counter is derived from the durable
        journals, so usage survives restarts and two readers always
        agree.
        """
        states: dict[str, int] = {}
        cells_total = cache_hits = cells_computed = 0
        for record in self.store.jobs(tenant):
            states[record.state] = states.get(record.state, 0) + 1
            if record.state == "done":
                cells_total += record.detail.get("cells_total", 0)
                cache_hits += record.detail.get("cache_hits", 0)
                cells_computed += record.detail.get("cells_computed", 0)
        return {
            "tenant": tenant,
            "jobs": states,
            "cells_total": cells_total,
            "cache_hits": cache_hits,
            "cells_computed": cells_computed,
            "cache_hit_ratio": (cache_hits / cells_total) if cells_total else 0.0,
            "denied": self._denials.get(tenant, 0),
        }
