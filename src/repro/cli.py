"""Command-line interface: run experiments and figures from a shell.

Examples::

    python -m repro list                      # benchmarks, schemes, figures
    python -m repro table1
    python -m repro figure figure7 --refs 20000
    python -m repro run swim pred_context --refs 20000
    python -m repro run mcf oracle baseline pred_regular --l2 1M
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import TABLE1_1M, TABLE1_256K, table1_rows
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import render_figure
from repro.experiments.runner import SCHEMES, run_benchmark
from repro.workloads.spec import SPEC_BENCHMARKS

__all__ = ["main"]

_MACHINES = {"256K": TABLE1_256K, "1M": TABLE1_1M}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("benchmarks:", ", ".join(SPEC_BENCHMARKS))
    print("schemes:   ", ", ".join(sorted(SCHEMES)))
    print("figures:   ", ", ".join(sorted(ALL_FIGURES)))
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    rows = table1_rows()
    width = max(len(name) for name, _ in rows)
    print("Table 1: Processor model parameters")
    for name, value in rows:
        print(f"{name:<{width}}  {value}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    figure_fn = ALL_FIGURES.get(args.name)
    if figure_fn is None:
        print(f"unknown figure {args.name!r}; choose from "
              f"{', '.join(sorted(ALL_FIGURES))}", file=sys.stderr)
        return 2
    if args.name == "table1":
        return _cmd_table1(args)
    result = figure_fn(references=args.refs, seed=args.seed)
    print(render_figure(result))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    unknown = [s for s in args.schemes if s not in SCHEMES]
    if unknown:
        print(f"unknown scheme(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.benchmark not in SPEC_BENCHMARKS:
        print(f"unknown benchmark {args.benchmark!r}", file=sys.stderr)
        return 2
    machine = _MACHINES[args.l2]
    results = run_benchmark(
        args.benchmark, args.schemes, machine=machine,
        references=args.refs, seed=args.seed,
    )
    oracle = results.get("oracle")
    header = (
        f"{'scheme':<22}{'IPC':>9}{'pred':>8}{'seq$':>8}"
        f"{'exposed':>9}" + ("" if oracle is None else f"{'norm':>8}")
    )
    print(f"{args.benchmark} on {machine.name} ({args.refs or 'default'} refs)")
    print(header)
    for scheme, metrics in results.items():
        row = (
            f"{scheme:<22}{metrics.ipc:>9.4f}{metrics.prediction_rate:>8.3f}"
            f"{metrics.seqcache_hit_rate:>8.3f}{metrics.mean_exposed_latency:>9.1f}"
        )
        if oracle is not None:
            row += f"{metrics.normalized_ipc(oracle):>8.3f}"
        print(row)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Counter-mode security architecture reproduction (ISCA 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, schemes and figures").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("table1", help="print Table 1").set_defaults(func=_cmd_table1)

    figure = sub.add_parser("figure", help="reproduce one figure")
    figure.add_argument("name", help="e.g. figure7 .. figure16")
    figure.add_argument("--refs", type=int, default=None, help="trace length")
    figure.add_argument("--seed", type=int, default=1)
    figure.set_defaults(func=_cmd_figure)

    run = sub.add_parser("run", help="run schemes on one benchmark")
    run.add_argument("benchmark")
    run.add_argument("schemes", nargs="+")
    run.add_argument("--refs", type=int, default=None)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--l2", choices=sorted(_MACHINES), default="256K")
    run.set_defaults(func=_cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
