"""Command-line interface: run experiments and figures from a shell.

Examples::

    python -m repro list                      # benchmarks, schemes, figures
    python -m repro table1
    python -m repro figure figure7 --refs 20000 --jobs 4
    python -m repro run swim pred_context --refs 20000
    python -m repro run mcf oracle baseline pred_regular --l2 1M --jobs 0
    python -m repro run captured baseline --trace trace.rtrc
    python -m repro faults --ops 40 --json --jobs 4
    python -m repro faults --layer sweep      # chaos-soak the sweep executor
    python -m repro faults --layer fabric     # chaos-soak the lease fabric
    python -m repro swarm start --benchmarks gzip,art --schemes oracle,pred_regular
    python -m repro swarm drain --workers 2   # join the drain from any terminal
    python -m repro swarm status              # per-cell / per-host liveness
    python -m repro cache stats               # the on-disk result cache
    python -m repro cache verify --repair     # digest-check + quarantine
    python -m repro run gzip oracle pred_regular --supervise --jobs 2
    python -m repro figure figure7 --resume   # pick up an interrupted grid
    python -m repro bench                     # writes BENCH_perf.json
    python -m repro bench --check BENCH_perf.json   # regression guard
    python -m repro trace swim --out trace.json     # chrome://tracing view
    python -m repro --emit-metrics m.json run swim oracle pred_regular
    python -m repro top                       # live fleet dashboard
    python -m repro jobs --watch              # refreshing jobs table
    python -m repro trace --job job-ab12cd    # fleet-merged job trace

Commands that run grid cells cache finished results under ``.repro-cache``
(``--no-cache`` bypasses) and accept ``--jobs N`` worker processes
(``0`` = auto).  ``--supervise`` runs cells under the crash-safe
supervisor (per-cell timeouts, retry, checkpoint manifest); ``--resume``
additionally serves already-finished cells from the manifest + cache
after an interrupt.  The global ``--emit-metrics PATH`` flag writes the
telemetry snapshot of supporting commands (``run``, ``trace``) as JSON.

Errors (missing or corrupt trace files, integrity violations) are reported
as a single line on stderr with a nonzero exit code; ``--keep-going`` on
``run`` degrades scheme failures to partial results instead of aborting.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.cpu.engine import BACKEND_ENV, available_backends
from repro.cpu.system import collect_miss_trace, replay_miss_trace
from repro.cpu.tracefile import TraceFormatError, load_trace_file
from repro.experiments import cache as result_cache
from repro.experiments.config import TABLE1_1M, TABLE1_256K, table1_rows
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.parallel import run_benchmark_cells_parallel
from repro.experiments.report import render_figure
from repro.experiments.runner import SCHEMES, make_controller, run_cell
from repro.faults.campaign import DEFAULT_RATES, FaultCampaign
from repro.faults.injector import FaultType
from repro.ioutil import atomic_write_json
from repro.memory.hierarchy import MemoryHierarchy
from repro.secure.errors import SecureMemoryError
from repro.telemetry.events import EventTracer, merge_chrome_traces
from repro.telemetry.profile import PROFILER
from repro.telemetry.snapshot import merge_snapshots
from repro.workloads.spec import DEMO_BENCHMARKS, KNOWN_BENCHMARKS, SPEC_BENCHMARKS

__all__ = ["main"]

_MACHINES = {"256K": TABLE1_256K, "1M": TABLE1_1M}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("benchmarks:", ", ".join(SPEC_BENCHMARKS))
    print("demo:      ", ", ".join(DEMO_BENCHMARKS),
          "(trace/series/run only; not part of the paper's figures)")
    print("schemes:   ", ", ".join(sorted(SCHEMES)))
    print("figures:   ", ", ".join(sorted(ALL_FIGURES)))
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    rows = table1_rows()
    width = max(len(name) for name, _ in rows)
    print("Table 1: Processor model parameters")
    for name, value in rows:
        print(f"{name:<{width}}  {value}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    figure_fn = ALL_FIGURES.get(args.name)
    if figure_fn is None:
        print(f"unknown figure {args.name!r}; choose from "
              f"{', '.join(sorted(ALL_FIGURES))}", file=sys.stderr)
        return 2
    if args.name == "table1":
        return _cmd_table1(args)
    supervised = args.supervise or args.resume
    if supervised:
        # Figure functions don't take engine options beyond jobs/cache, so
        # supervision is installed as the process-wide run_grid default.
        from repro.experiments import sweep as sweep_mod

        sweep_mod.set_default_supervision(
            policy=_supervisor_policy(args), resume=args.resume
        )
    try:
        result = figure_fn(
            references=args.refs,
            seed=args.seed,
            jobs=args.jobs,
            use_cache=not args.no_cache,
        )
    finally:
        if supervised:
            sweep_mod.reset_default_supervision()
    print(render_figure(result))
    return 0


def _supervisor_policy(args: argparse.Namespace):
    """The supervision policy the --supervise/--resume flags describe."""
    from repro.experiments.supervisor import SupervisorPolicy

    return SupervisorPolicy(cell_timeout_seconds=args.cell_timeout)


def _trace_results(args: argparse.Namespace, machine):
    """Replay a saved trace file through each scheme (the ``--trace`` path)."""
    trace = load_trace_file(args.trace)
    if args.refs:
        trace = trace[: args.refs]
    miss_trace = collect_miss_trace(
        trace,
        hierarchy=MemoryHierarchy(machine.hierarchy),
        flush_interval_instructions=machine.flush_interval_instructions,
    )
    results, failures = {}, []
    for scheme in args.schemes:
        try:
            controller = make_controller(SCHEMES[scheme], machine, args.seed)
            results[scheme] = replay_miss_trace(
                miss_trace, controller, core=machine.core, scheme=scheme
            )
        except Exception as err:
            if not args.keep_going:
                raise
            failures.append(f"{args.benchmark}/{scheme}: {type(err).__name__}: {err}")
    return results, failures


def _emit_snapshot(path: str, snapshots: dict) -> bool:
    """Merge per-cell snapshots and write them where ``--emit-metrics`` asks."""
    if not snapshots:
        print("note: no telemetry snapshots collected; nothing emitted",
              file=sys.stderr)
        return False
    merged = merge_snapshots(snapshots[key] for key in sorted(snapshots))
    merged.save(path)
    print(f"metrics snapshot ({len(merged.values)} metrics) written to {path}")
    return True


def _cmd_run(args: argparse.Namespace) -> int:
    unknown = [s for s in args.schemes if s not in SCHEMES]
    if unknown:
        print(f"unknown scheme(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.trace is None and args.benchmark not in KNOWN_BENCHMARKS:
        print(f"unknown benchmark {args.benchmark!r}", file=sys.stderr)
        return 2
    machine = _MACHINES[args.l2]
    failures: list[str] = []
    snapshots: dict[str, object] = {}
    supervision = None
    if args.trace is not None:
        results, failures = _trace_results(args, machine)
    elif args.supervise or args.resume:
        from repro.experiments.sweep import run_grid

        sweep = run_grid(
            [args.benchmark], list(args.schemes), machine=machine,
            references=args.refs, seed=args.seed,
            keep_going=args.keep_going, jobs=args.jobs,
            use_cache=not args.no_cache,
            supervise=True, resume=args.resume,
            policy=_supervisor_policy(args),
        )
        results = {scheme: m for (_, scheme), m in sweep.results.items()}
        snapshots = {scheme: s for (_, scheme), s in sweep.snapshots.items()}
        failures = [str(failure) for failure in sweep.failures]
        supervision = sweep.supervision
    else:
        cells, run_failures = run_benchmark_cells_parallel(
            args.benchmark, args.schemes, machine=machine,
            references=args.refs, seed=args.seed,
            keep_going=args.keep_going, jobs=args.jobs,
            use_cache=not args.no_cache,
        )
        results = {name: cell.metrics for name, cell in cells.items()}
        snapshots = {name: cell.snapshot for name, cell in cells.items()}
        failures = [str(failure) for failure in run_failures]
    oracle = results.get("oracle")
    header = (
        f"{'scheme':<22}{'IPC':>9}{'pred':>8}{'seq$':>8}"
        f"{'exposed':>9}" + ("" if oracle is None else f"{'norm':>8}")
    )
    print(f"{args.benchmark} on {machine.name} ({args.refs or 'default'} refs)")
    print(header)
    for scheme, metrics in results.items():
        row = (
            f"{scheme:<22}{metrics.ipc:>9.4f}{metrics.prediction_rate:>8.3f}"
            f"{metrics.seqcache_hit_rate:>8.3f}{metrics.mean_exposed_latency:>9.1f}"
        )
        if oracle is not None:
            row += f"{metrics.normalized_ipc(oracle):>8.3f}"
        print(row)
    if supervision is not None:
        interesting = {
            name: value
            for name, value in supervision.items()
            if value and name != "cells_total"
        }
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
        print(f"supervision: {rendered or 'clean run'}")
    if args.emit_metrics:
        _emit_snapshot(args.emit_metrics, snapshots)
    for failure in failures:
        print(f"FAILED {failure}", file=sys.stderr)
    if args.keep_going and failures:
        total = len(args.schemes)
        print(
            f"keep-going: {len(failures)} of {total} cell(s) failed, "
            f"{len(results)} completed; failed cells listed above with "
            f"their cache keys",
            file=sys.stderr,
        )
    return 1 if failures else 0


def _traced_cell(benchmark, scheme, machine, args):
    """Run one cell with a fresh tracer attached; returns (cell, tracer)."""
    tracer = EventTracer(capacity=args.events)
    cell = run_cell(
        benchmark,
        scheme,
        machine=machine,
        references=args.refs,
        seed=args.seed,
        tracer=tracer,
    )
    return cell, tracer


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.job:
        from repro.telemetry.fleet import fleet_trace

        try:
            payload = fleet_trace(args.job)
        except KeyError:
            print(f"error: unknown job {args.job!r}", file=sys.stderr)
            return 1
        atomic_write_json(args.out, payload)
        print(f"fleet trace for {args.job} written to {args.out}")
        print("open it at chrome://tracing or https://ui.perfetto.dev")
        return 0
    if args.benchmark is None:
        print("error: a benchmark name (or --job) is required", file=sys.stderr)
        return 2
    if args.benchmark not in KNOWN_BENCHMARKS:
        print(f"unknown benchmark {args.benchmark!r}", file=sys.stderr)
        return 2
    schemes = list(args.diff) if args.diff else [args.scheme]
    unknown = [scheme for scheme in schemes if scheme not in SCHEMES]
    if unknown:
        print(f"unknown scheme(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    machine = _MACHINES[args.l2]
    if args.profile:
        PROFILER.enable()
        PROFILER.reset()
    metadata = {
        "benchmark": args.benchmark,
        "machine": machine.name,
        "references": args.refs or "default",
        "seed": args.seed,
    }
    if args.diff:
        # A/B overlay: each scheme replays the same miss trace into its own
        # tracer and becomes its own pid group in one Chrome file, aligned
        # at ts 0 so the lanes compare cycle-for-cycle.
        labeled = []
        cells = {}
        for scheme in schemes:
            cell, tracer = _traced_cell(args.benchmark, scheme, machine, args)
            labeled.append((scheme, tracer))
            cells[scheme] = cell
        payload = merge_chrome_traces(labeled, metadata=metadata)
        atomic_write_json(args.out, payload)
        for scheme, tracer in labeled:
            print(
                f"{args.benchmark}/{scheme}: captured {len(tracer.events())} "
                f"events ({tracer.dropped} dropped beyond --events {args.events})"
            )
        snapshot = None
        if args.emit_metrics:
            snapshot = merge_snapshots(
                cells[scheme].snapshot for scheme in schemes
            )
    else:
        cell, tracer = _traced_cell(args.benchmark, schemes[0], machine, args)
        tracer.write_chrome(
            args.out, metadata={**metadata, "scheme": schemes[0]}
        )
        print(
            f"{args.benchmark}/{schemes[0]}: captured {len(tracer.events())} "
            f"events ({tracer.dropped} dropped beyond --events {args.events})"
        )
        snapshot = cell.snapshot if args.emit_metrics else None
    print(f"trace written to {args.out}")
    print("open it at chrome://tracing or https://ui.perfetto.dev")
    if args.profile:
        print(PROFILER.render())
    if args.emit_metrics and snapshot is not None:
        snapshot.save(args.emit_metrics)
        print(f"metrics snapshot ({len(snapshot.values)} metrics) "
              f"written to {args.emit_metrics}")
    return 0


def _cmd_series(args: argparse.Namespace) -> int:
    if args.benchmark not in KNOWN_BENCHMARKS:
        print(f"unknown benchmark {args.benchmark!r}", file=sys.stderr)
        return 2
    if args.scheme not in SCHEMES:
        print(f"unknown scheme {args.scheme!r}", file=sys.stderr)
        return 2
    if args.interval <= 0:
        print(f"--interval must be positive, got {args.interval}",
              file=sys.stderr)
        return 2
    machine = _MACHINES[args.l2]
    cell = run_cell(
        args.benchmark,
        args.scheme,
        machine=machine,
        references=args.refs,
        seed=args.seed,
        series_interval=args.interval,
    )
    series = cell.series
    series.save(args.out)
    accesses = series.accesses()
    print(
        f"{args.benchmark}/{args.scheme}: {len(series)} snapshots every "
        f"{args.interval} fetches (final at {accesses[-1] if accesses else 0})"
    )
    print(f"series written to {args.out}")
    if args.rate:
        try:
            numerator, denominator = args.rate.split("/", 1)
        except ValueError:
            print(f"--rate must be NUMERATOR/DENOMINATOR, got {args.rate!r}",
                  file=sys.stderr)
            return 2
        rates = series.window_rates(numerator.strip(), denominator.strip())
        for index, rate in enumerate(rates):
            left, right = accesses[index], accesses[index + 1]
            print(f"  window {left:>8} .. {right:>8}: {rate:.4f}")
    if args.emit_metrics:
        cell.snapshot.save(args.emit_metrics)
        print(f"metrics snapshot ({len(cell.snapshot.values)} metrics) "
              f"written to {args.emit_metrics}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    if args.layer == "fabric":
        # Distributed-fabric chaos: worker kills mid-lease, heartbeat
        # stalls, clock skew, duplicate claims, torn lease files — the
        # soak requires serial == multi-worker-under-chaos, byte-identical.
        import os

        from repro.faults.orchestration import (
            render_fabric_soak_report,
            run_fabric_soak,
        )

        report = run_fabric_soak(
            references=args.refs, seed=args.seed,
            cache_dir=os.environ.get(result_cache.CACHE_DIR_ENV),
        )
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(render_fabric_soak_report(report))
        return 0 if report["ok"] else 1
    if args.layer == "sweep":
        # Orchestration chaos: sabotage the sweep *executor* (worker kills,
        # hangs, cache corruption) and require bit-identical recovery.
        import os

        from repro.faults.orchestration import render_soak_report, run_sweep_soak

        # An explicit REPRO_CACHE_DIR keeps the soak's cache (quarantine
        # tier, manifests) around as post-mortem evidence; otherwise the
        # soak runs against a deleted private temp directory.
        report = run_sweep_soak(
            references=args.refs, seed=args.seed, jobs=args.jobs or 2,
            cache_dir=os.environ.get(result_cache.CACHE_DIR_ENV),
        )
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(render_soak_report(report))
        return 0 if report["ok"] else 1
    known = {fault_type.value: fault_type for fault_type in FaultType}
    if args.types:
        names = [name.strip() for name in args.types.split(",") if name.strip()]
        unknown = [name for name in names if name not in known]
        if unknown:
            print(
                f"unknown fault type(s): {', '.join(unknown)}; choose from "
                f"{', '.join(known)}", file=sys.stderr,
            )
            return 2
        fault_types = tuple(known[name] for name in names)
    else:
        fault_types = tuple(FaultType)
    try:
        rates = tuple(float(rate) for rate in args.rates.split(","))
        campaign = FaultCampaign(
            fault_types=fault_types,
            rates=rates,
            operations=args.ops,
            seed=args.seed,
        )
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    report = campaign.run(jobs=args.jobs)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    ok = report.all_detected and report.pad_reuse_free
    return 0 if ok else 1


def _cmd_swarm(args: argparse.Namespace) -> int:
    from repro.fabric import (
        SwarmSpec,
        drain_swarm,
        render_status,
        start_swarm,
        swarm_status,
    )
    from repro.fabric.coordinator import load_spec
    from repro.fabric.worker import FabricPolicy

    try:
        if args.key:
            if args.action != "status":
                print("error: --key is only valid with status", file=sys.stderr)
                return 2
            spec = load_spec(args.key)
            benchmarks, schemes = spec.benchmarks, spec.schemes
        else:
            benchmarks = tuple(
                name.strip() for name in args.benchmarks.split(",") if name.strip()
            )
            schemes = tuple(
                name.strip() for name in args.schemes.split(",") if name.strip()
            )
            spec = SwarmSpec(
                benchmarks=benchmarks,
                schemes=schemes,
                machine=_MACHINES[args.l2].name,
                references=args.refs,
                seed=args.seed,
            )
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    if args.action == "start":
        key = start_swarm(spec)
        print(f"swarm {key} seeded ({len(benchmarks) * len(schemes)} cells)")
        print("join from any terminal or host sharing this cache dir with:")
        print(
            f"  repro swarm drain --benchmarks {args.benchmarks} "
            f"--schemes {args.schemes} --l2 {args.l2} --seed {args.seed}"
            + (f" --refs {args.refs}" if args.refs else "")
        )
        return 0

    if args.action == "status":
        status = swarm_status(spec, ttl_seconds=args.ttl)
        if args.json:
            print(json.dumps(status, indent=2))
        else:
            print(render_status(status))
        return 0

    # drain
    sweep = drain_swarm(
        spec,
        workers=args.workers,
        policy=FabricPolicy(ttl_seconds=args.ttl),
        strict=False,
    )
    fabric = sweep.fabric or {}
    if args.json:
        print(json.dumps(fabric, indent=2, default=str))
    else:
        if fabric.get("degraded"):
            print("lease directory unavailable; drained in single-host "
                  "supervised mode")
        else:
            local = fabric.get("local", {})
            print(
                f"drained {len(sweep.results)}/"
                f"{len(benchmarks) * len(schemes)} cells with "
                f"{fabric.get('workers')} worker(s): "
                f"local ran {local.get('cells_executed', 0)}, "
                f"stored {local.get('stores', 0)}, "
                f"fenced out {local.get('cells_fenced_out', 0)}"
            )
    complete = len(sweep.results) == len(benchmarks) * len(schemes)
    return 0 if complete else 1


_SERVICE_URL_ENV = "REPRO_SERVICE_URL"
_SERVICE_DEFAULT_URL = "http://127.0.0.1:8642"


def _service_url(args: argparse.Namespace) -> str:
    return args.url or os.environ.get(_SERVICE_URL_ENV) or _SERVICE_DEFAULT_URL


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.queue import JobStore
    from repro.service.scheduler import (
        SchedulerPolicy,
        ServiceScheduler,
        TenantQuota,
    )
    from repro.service.server import ServiceServer

    scheduler = ServiceScheduler(
        store=JobStore(),
        quota=TenantQuota(
            max_inflight_jobs=args.tenant_inflight,
            max_concurrent_jobs=args.tenant_concurrent,
            max_cells_per_job=args.tenant_max_cells,
        ),
        policy=SchedulerPolicy(
            max_concurrent_jobs=args.max_jobs,
            sample_interval_seconds=args.sample_interval,
            cell_jobs=args.jobs if args.jobs else 1,
            executor=args.executor,
            fabric_workers=args.fabric_workers,
        ),
    )
    server = ServiceServer(scheduler, host=args.host, port=args.port)

    async def _serve() -> None:
        await server.start()
        print(f"repro service listening on http://{server.host}:{server.port}")
        print(f"job store: {scheduler.store.root}")
        assert server._server is not None
        async with server._server:
            await server._server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("service stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(_service_url(args))
    benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    try:
        receipt = client.submit(
            args.tenant,
            benchmarks,
            schemes,
            machine=_MACHINES[args.l2].name,
            references=args.refs,
            seed=args.seed,
        )
    except ServiceError as err:
        if args.json:
            print(json.dumps(err.payload, indent=2, sort_keys=True))
        else:
            print(f"error: {err}", file=sys.stderr)
        return 1
    except (ConnectionRefusedError, OSError) as err:
        print(
            f"error: cannot reach service at {_service_url(args)}: {err}",
            file=sys.stderr,
        )
        return 1
    if args.json and not args.watch:
        print(json.dumps(receipt, indent=2, sort_keys=True))
    else:
        cached = len(receipt["cached_keys"])
        print(
            f"job {receipt['job_id']} queued: {receipt['cells_total']} cells, "
            f"{cached} already cached"
        )
    if args.watch:
        return _watch_job(client, receipt["job_id"], as_json=args.json)
    return 0


def _watch_job(client, job_id: str, as_json: bool = False) -> int:
    from repro.service.client import ServiceError

    try:
        for event in client.events(job_id):
            if as_json:
                print(json.dumps(event, sort_keys=True))
                continue
            kind = event.get("event")
            if kind == "state":
                print(f"[{event.get('source')}] state -> {event.get('state')}")
            elif kind == "sample":
                snapshot = event.get("snapshot", {})
                metrics = snapshot.get("metrics", {})
                print(
                    f"[sample] cells done "
                    f"{metrics.get('service.job.cells_done', 0)}/"
                    f"{metrics.get('service.job.cells_total', '?')}"
                )
            elif kind in ("start", "done", "failed"):
                print(f"[manifest] {kind} {event.get('cell', event.get('key'))}")
        record = client.job(job_id)
    except ServiceError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    if not as_json:
        print(f"job {job_id}: {record['state']}")
    return 0 if record["state"] == "done" else 1


def _render_jobs(snapshot: dict) -> str:
    """The ``repro jobs --watch`` screen: jobs only, from the disk fold."""
    import time

    from repro.telemetry.top import _fmt_age

    stamp = time.strftime("%H:%M:%S", time.localtime(snapshot["now"]))
    lines = [
        f"repro jobs  {stamp}  queued: {snapshot['queue_depth']}",
        "",
        f"{'job':<18}{'tenant':<14}{'state':<11}{'age':>6}{'last ev':>9}"
        f"{'cells':>12}",
    ]
    for job in snapshot["jobs"]:
        cells = f"{job['cells_done']}/{job['cells_total']}"
        if job["cells_failed"]:
            cells += f" !{job['cells_failed']}"
        lines.append(
            f"{job['job_id']:<18}{job['tenant']:<14}{job['state']:<11}"
            f"{_fmt_age(job['age']):>6}{_fmt_age(job['last_event_age']):>9}"
            f"{cells:>12}"
        )
    if not snapshot["jobs"]:
        lines.append("(no jobs)")
    return "\n".join(lines)


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    if args.watch:
        from repro.telemetry.top import watch

        # The watch loop folds the local job store directly (like ``repro
        # top``), so it keeps working when the service itself is down.
        watch(interval=args.interval, render=_render_jobs)
        return 0
    client = ServiceClient(_service_url(args))
    try:
        if args.job:
            payload = client.job(args.job)
            rows = [payload]
        else:
            rows = client.jobs(args.tenant)
    except ServiceError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except (ConnectionRefusedError, OSError) as err:
        print(
            f"error: cannot reach service at {_service_url(args)}: {err}",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if not rows:
        print("no jobs")
        return 0
    import time

    from repro.telemetry.top import _fmt_age

    now = time.time()
    for record in rows:
        spec = record["spec"]
        grid = f"{len(spec['benchmarks'])}x{len(spec['schemes'])}"
        detail = record.get("detail", {})
        extra = ""
        if record["state"] == "done":
            extra = (
                f"  hits {detail.get('cache_hits', 0)}"
                f"/{detail.get('cells_total', 0)}"
            )
        submitted = record.get("submitted") or 0
        last_event = record.get("last_event") or submitted
        age = _fmt_age(max(0.0, now - submitted) if submitted else None)
        last = _fmt_age(max(0.0, now - last_event) if last_event else None)
        print(
            f"{record['job_id']}  {record['state']:<9} "
            f"{spec['tenant']:<12} {grid:<6} age {age:<5} ev {last:<5} "
            f"{spec['machine']}{extra}"
        )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.telemetry.top import watch

    watch(interval=args.interval, once=args.once)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    return _watch_job(
        ServiceClient(_service_url(args)), args.job_id, as_json=args.json
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (
        check_regression,
        render_report,
        run_bench,
        temper_baseline,
    )

    baseline = None
    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
    if args.update_baseline:
        # Baseline refresh: N fresh measurement runs, min-across-runs x
        # safety per guarded ratio (see temper_baseline).  The first run
        # still writes the normal report to --output.
        reports = []
        for run_index in range(max(1, args.runs)):
            reports.append(
                run_bench(
                    output=args.output if run_index == 0 else None,
                    references=args.refs,
                    operations=args.ops,
                    jobs=args.jobs,
                    seed=args.seed,
                )
            )
            print(f"measurement run {run_index + 1}/{max(1, args.runs)} done")
        tempered = temper_baseline(reports, safety=args.safety)
        atomic_write_json(args.baseline, tempered, indent=2)
        print(f"baseline re-tempered from {len(reports)} run(s) "
              f"(safety {args.safety:.0%}) -> {args.baseline}")
        for name, value in tempered["tempering"]["values"].items():
            rendered = "n/a" if value is None else f"{value:.2f}"
            print(f"  {name}: {rendered}")
        return 0
    report = run_bench(
        output=args.output,
        references=args.refs,
        operations=args.ops,
        jobs=args.jobs,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report))
        print(f"report written to {args.output}")
    if baseline is not None:
        violations = check_regression(report, baseline, tolerance=args.tolerance)
        if violations:
            print(f"REGRESSION against {args.check}:", file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return 1
        print(f"regression check against {args.check} passed "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = result_cache.ResultCache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
        return 0
    if args.action == "verify":
        outcome = cache.verify(repair=args.repair)
        print(f"cache root: {cache.root}")
        print(f"checked {outcome['checked']} entries: {outcome['ok']} ok, "
              f"{len(outcome['corrupt'])} corrupt")
        for entry in outcome["corrupt"]:
            name = entry.path.rsplit("/", 1)[-1]
            print(f"  {entry.tier}/{name}: {entry.reason}", file=sys.stderr)
        if args.repair:
            print(f"quarantined {outcome['repaired']} corrupt entr"
                  f"{'y' if outcome['repaired'] == 1 else 'ies'} under "
                  f"{cache.root / 'quarantine'}")
            return 0
        return 1 if outcome["corrupt"] else 0
    stats = cache.disk_stats()
    print(f"cache root:  {stats['root']}")
    print(f"fingerprint: {stats['fingerprint']}")
    for tier in ("results", "traces", "quarantine"):
        tier_stats = stats.get(tier)
        if tier_stats is None:
            continue
        print(f"{tier:<10}  {tier_stats['entries']:>6} entries  "
              f"{tier_stats['bytes']:>10} bytes")
    log_stats = stats["quarantine_log"]
    print(f"quarantine log: {log_stats['entries']} entr"
          f"{'y' if log_stats['entries'] == 1 else 'ies'} "
          f"(rotation keeps last {log_stats['cap']}; "
          f"override with {result_cache.QUARANTINE_LOG_MAX_ENV})")
    return 0


def _jobs_arg(value: str) -> int | None:
    """``--jobs N``; 0 means auto (``$REPRO_JOBS`` or the CPU count)."""
    jobs = int(value)
    return None if jobs == 0 else jobs


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every command that runs grid cells."""
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N",
        help="worker processes (default 1 = serial; 0 = auto from "
             "REPRO_JOBS or the CPU count)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache (.repro-cache)",
    )
    parser.add_argument(
        "--supervise", action="store_true",
        help="run cells under the crash-safe supervisor (per-cell "
             "timeouts, retry with backoff, checkpoint manifest)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted run from its checkpoint manifest, "
             "recomputing only unfinished cells (implies --supervise)",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=120.0, metavar="SECONDS",
        help="supervised per-cell wall-clock timeout (default 120)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Counter-mode security architecture reproduction (ISCA 2005)",
    )
    parser.add_argument(
        "--emit-metrics", default=None, metavar="PATH",
        help="write the command's telemetry snapshot as JSON "
             "(honored by run and trace)",
    )
    parser.add_argument(
        "--backend", default=None, choices=available_backends(),
        help="replay backend for every simulation in this command "
             f"(default: ${BACKEND_ENV} or 'batched'; all backends "
             "produce bit-identical results)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured logs as JSONL on stderr "
             "(level via $REPRO_LOG: debug/info/warning/error/off)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, schemes and figures").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("table1", help="print Table 1").set_defaults(func=_cmd_table1)

    figure = sub.add_parser("figure", help="reproduce one figure")
    figure.add_argument("name", help="e.g. figure7 .. figure16")
    figure.add_argument("--refs", type=int, default=None, help="trace length")
    figure.add_argument("--seed", type=int, default=1)
    _add_engine_flags(figure)
    figure.set_defaults(func=_cmd_figure)

    run = sub.add_parser("run", help="run schemes on one benchmark")
    run.add_argument("benchmark", help="benchmark name (label only with --trace)")
    run.add_argument("schemes", nargs="+")
    run.add_argument("--refs", type=int, default=None)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--l2", choices=sorted(_MACHINES), default="256K")
    run.add_argument(
        "--trace", default=None, metavar="FILE",
        help="replay a saved trace file instead of a synthetic benchmark",
    )
    strictness = run.add_mutually_exclusive_group()
    strictness.add_argument(
        "--fail-fast", dest="keep_going", action="store_false",
        help="abort on the first scheme failure (default)",
    )
    strictness.add_argument(
        "--keep-going", dest="keep_going", action="store_true",
        help="report failed schemes on stderr and keep partial results",
    )
    _add_engine_flags(run)
    run.set_defaults(func=_cmd_run, keep_going=False)

    trace = sub.add_parser(
        "trace",
        help="capture a cycle-stamped event trace (Chrome trace_event JSON)",
    )
    trace.add_argument(
        "benchmark", nargs="?", default=None,
        help="benchmark name (omit with --job)",
    )
    trace.add_argument(
        "--scheme", default="pred_regular",
        help="scheme to trace (default pred_regular)",
    )
    trace.add_argument(
        "--job", default=None, metavar="JOB_ID",
        help="write the fleet-merged trace of one sweep-service job "
             "(job journal + manifests + worker beacons, read from the "
             "local job store) instead of capturing a new replay",
    )
    trace.add_argument(
        "--diff", nargs=2, default=None, metavar=("A", "B"),
        help="overlay two schemes as aligned process groups in one trace "
             "(overrides --scheme)",
    )
    trace.add_argument("--refs", type=int, default=None, help="trace length")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--l2", choices=sorted(_MACHINES), default="256K")
    trace.add_argument(
        "--out", default="trace.json", metavar="FILE",
        help="output path for the Chrome trace (default trace.json)",
    )
    trace.add_argument(
        "--events", type=int, default=65536, metavar="N",
        help="ring-buffer capacity; oldest events drop beyond this",
    )
    trace.add_argument(
        "--profile", action="store_true",
        help="also print wall-time profiler scopes for the run",
    )
    trace.set_defaults(func=_cmd_trace)

    series = sub.add_parser(
        "series",
        help="spill periodic telemetry snapshots during a replay (JSONL)",
    )
    series.add_argument("benchmark", help="benchmark name")
    series.add_argument(
        "--scheme", default="pred_regular",
        help="scheme to sample (default pred_regular)",
    )
    series.add_argument(
        "--interval", type=int, default=1000, metavar="N",
        help="snapshot every N fetches (default 1000)",
    )
    series.add_argument("--refs", type=int, default=None, help="trace length")
    series.add_argument("--seed", type=int, default=1)
    series.add_argument("--l2", choices=sorted(_MACHINES), default="256K")
    series.add_argument(
        "--out", default="series.jsonl", metavar="FILE",
        help="output path for the snapshot series (default series.jsonl)",
    )
    series.add_argument(
        "--rate", default=None, metavar="NUM/DEN",
        help="also print the per-window rate of two counters, e.g. "
             "secure.predictor.prediction_hits/secure.predictor.lookups",
    )
    series.set_defaults(func=_cmd_series)

    faults = sub.add_parser(
        "faults", help="run a seeded fault-injection campaign"
    )
    faults.add_argument(
        "--layer", choices=["machine", "sweep", "fabric"], default="machine",
        help="what to attack: the simulated machine (default), the sweep "
             "executor (worker kills, hangs, cache corruption), or the "
             "distributed lease fabric (kills mid-lease, heartbeat stalls, "
             "clock skew, duplicate claims, torn lease files)",
    )
    faults.add_argument("--ops", type=int, default=120, help="operations per cell")
    faults.add_argument(
        "--refs", type=int, default=3000,
        help="trace length per soak cell (--layer sweep only)",
    )
    faults.add_argument("--seed", type=int, default=1)
    faults.add_argument(
        "--types", default=None,
        help="comma-separated fault types (default: all)",
    )
    faults.add_argument(
        "--rates", default=",".join(str(rate) for rate in DEFAULT_RATES),
        help="comma-separated injection rates in (0, 1]",
    )
    faults.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    faults.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N",
        help="worker processes for campaign cells (0 = auto)",
    )
    faults.set_defaults(func=_cmd_faults)

    cache = sub.add_parser(
        "cache", help="inspect, verify or clear the on-disk result cache"
    )
    cache.add_argument("action", choices=["stats", "verify", "clear"])
    cache.add_argument(
        "--repair", action="store_true",
        help="with verify: quarantine corrupt entries so the next run "
             "recomputes them (report-only without this flag)",
    )
    cache.set_defaults(func=_cmd_cache)

    swarm = sub.add_parser(
        "swarm",
        help="drain a sweep with multiple workers over the shared "
             "lease fabric (multi-terminal / multi-host)",
    )
    swarm.add_argument("action", choices=["start", "status", "drain"])
    swarm.add_argument(
        "--benchmarks", default="gzip,art", metavar="A,B,...",
        help="comma-separated benchmark names (default gzip,art)",
    )
    swarm.add_argument(
        "--schemes", default="oracle,pred_regular", metavar="A,B,...",
        help="comma-separated scheme names (default oracle,pred_regular)",
    )
    swarm.add_argument("--l2", choices=sorted(_MACHINES), default="256K")
    swarm.add_argument("--refs", type=int, default=None, help="trace length")
    swarm.add_argument("--seed", type=int, default=1)
    swarm.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="local worker processes for drain (default 2)",
    )
    swarm.add_argument(
        "--ttl", type=float, default=10.0, metavar="SECONDS",
        help="lease TTL; a dead worker's cells are taken over after "
             "this long without a heartbeat (default 10)",
    )
    swarm.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    swarm.add_argument(
        "--key", default=None, metavar="SWEEP_KEY",
        help="status only: look the swarm up by sweep key instead of "
             "respecifying its grid",
    )
    swarm.set_defaults(func=_cmd_swarm)

    serve = sub.add_parser(
        "serve",
        help="run the sweep service front door (submit/stream/fetch "
             "jobs over HTTP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642,
        help="listen port (default 8642; 0 picks a free port)",
    )
    serve.add_argument(
        "--max-jobs", type=int, default=2, metavar="N",
        help="jobs executing at once across all tenants (default 2)",
    )
    serve.add_argument(
        "--sample-interval", type=float, default=0.25, metavar="SECONDS",
        help="progress-sample cadence in the event stream (default 0.25)",
    )
    serve.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N",
        help="worker processes per grid (default 1)",
    )
    serve.add_argument(
        "--executor", choices=["supervised", "fabric"], default="supervised",
        help="run grids under the supervisor (default) or drain them "
             "through the lease fabric",
    )
    serve.add_argument(
        "--fabric-workers", type=int, default=2, metavar="N",
        help="drain width when --executor fabric (default 2)",
    )
    serve.add_argument(
        "--tenant-inflight", type=int, default=4, metavar="N",
        help="per-tenant queued+running job ceiling (default 4)",
    )
    serve.add_argument(
        "--tenant-concurrent", type=int, default=1, metavar="N",
        help="per-tenant running job ceiling (default 1)",
    )
    serve.add_argument(
        "--tenant-max-cells", type=int, default=256, metavar="N",
        help="per-tenant grid-size ceiling per job (default 256)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a grid to a running sweep service"
    )
    submit.add_argument(
        "--url", default=None,
        help=f"service URL (default ${_SERVICE_URL_ENV} or "
             f"{_SERVICE_DEFAULT_URL})",
    )
    submit.add_argument("--tenant", default="default")
    submit.add_argument(
        "--benchmarks", default="gzip,art", metavar="A,B,...",
        help="comma-separated benchmark names (default gzip,art)",
    )
    submit.add_argument(
        "--schemes", default="oracle,pred_regular", metavar="A,B,...",
        help="comma-separated scheme names (default oracle,pred_regular)",
    )
    submit.add_argument("--l2", choices=sorted(_MACHINES), default="256K")
    submit.add_argument("--refs", type=int, default=None, help="trace length")
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument(
        "--watch", action="store_true",
        help="stream the job's events until it completes",
    )
    submit.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    submit.set_defaults(func=_cmd_submit)

    jobs_cmd = sub.add_parser("jobs", help="list sweep-service jobs")
    jobs_cmd.add_argument("--url", default=None)
    jobs_cmd.add_argument("--tenant", default=None, help="filter by tenant")
    jobs_cmd.add_argument("--job", default=None, help="show one job by id")
    jobs_cmd.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    jobs_cmd.add_argument(
        "--watch", action="store_true",
        help="refreshing jobs table read from the local job store",
    )
    jobs_cmd.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh interval for --watch (default 1.0)",
    )
    jobs_cmd.set_defaults(func=_cmd_jobs)

    top = sub.add_parser(
        "top",
        help="live fleet dashboard: jobs, workers, leases, tenants "
             "(reads the shared cache root, no service required)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh interval (default 1.0)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single snapshot and exit (scripts, CI)",
    )
    top.set_defaults(func=_cmd_top)

    watch = sub.add_parser(
        "watch", help="stream one sweep-service job's live events"
    )
    watch.add_argument("job_id")
    watch.add_argument("--url", default=None)
    watch.add_argument(
        "--json", action="store_true", help="emit raw NDJSON events"
    )
    watch.set_defaults(func=_cmd_watch)

    bench = sub.add_parser(
        "bench", help="measure crypto/pipeline/grid performance"
    )
    bench.add_argument(
        "--refs", type=int, default=6000, help="trace length per grid cell"
    )
    bench.add_argument(
        "--ops", type=int, default=2000, help="functional pipeline operations"
    )
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument(
        "--jobs", type=_jobs_arg, default=None, metavar="N",
        help="workers for the parallel grid pass (default: auto)",
    )
    bench.add_argument(
        "--output", default="BENCH_perf.json", metavar="FILE",
        help="where to write the JSON report",
    )
    bench.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    bench.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a baseline BENCH_perf.json; exit 1 on regression",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.2, metavar="FRAC",
        help="allowed fractional speedup drop vs the baseline (default 0.2)",
    )
    bench.add_argument(
        "--update-baseline", action="store_true",
        help="re-temper the committed baseline from --runs fresh "
             "measurements (min across runs x --safety)",
    )
    bench.add_argument(
        "--runs", type=int, default=3, metavar="N",
        help="measurement runs for --update-baseline (default 3)",
    )
    bench.add_argument(
        "--safety", type=float, default=0.8, metavar="FRAC",
        help="safety factor applied to the minimum speedup (default 0.8)",
    )
    bench.add_argument(
        "--baseline", default="BENCH_baseline.json", metavar="FILE",
        help="baseline file --update-baseline writes (default "
             "BENCH_baseline.json)",
    )
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Expected operational errors become a single stderr line and a nonzero
    exit instead of a traceback.
    """
    args = build_parser().parse_args(argv)
    if args.log_json:
        from repro.telemetry import log

        log.configure(json_mode=True)
    if args.backend:
        # Environment, not plumbing: the selection must reach every replay
        # call site, including parallel sweep workers (which inherit the
        # parent's environment at pool startup).
        os.environ[BACKEND_ENV] = args.backend
    try:
        return args.func(args)
    except FileNotFoundError as err:
        print(f"error: file not found: {err.filename or err}", file=sys.stderr)
        return 1
    except TraceFormatError as err:
        print(f"error: corrupt trace file: {err}", file=sys.stderr)
        return 1
    except SecureMemoryError as err:
        print(f"error: {type(err).__name__}: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
