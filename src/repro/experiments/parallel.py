"""Deterministic parallel execution engine for experiment grids.

Every cell of a (benchmark x scheme) grid is an independent, seeded, pure
computation, so a sweep parallelizes trivially — the only things worth
being careful about are the ones this module is careful about:

* **Determinism.**  Work is partitioned in input order and results are
  collected in submission order (``ProcessPoolExecutor.map``), so a
  parallel sweep returns cell-for-cell identical metrics to the serial
  loop regardless of worker scheduling.
* **Trace sharing.**  Grids are partitioned per *benchmark*, not per cell:
  each worker generates (or loads from the on-disk cache) its benchmark's
  miss trace once and replays every scheme against it, preserving the
  serial engine's trace memoization.
* **Failure isolation.**  With ``keep_going`` the resilient runner captures
  scheme failures *inside* the worker as
  :class:`~repro.experiments.runner.RunFailure` records, so one faulting
  scheme cannot take down the pool; without it the first worker exception
  propagates to the caller exactly like the serial fail-fast path.

``jobs=1`` (the default everywhere) bypasses the pool entirely and runs the
same code serially in-process.  ``jobs=None`` asks :func:`default_jobs`,
which honors ``$REPRO_JOBS`` before falling back to the CPU count.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass

from repro.cpu.core import RunMetrics
from repro.experiments.config import MachineConfig, TABLE1_256K
from repro.experiments.runner import (
    CellResult,
    RunFailure,
    run_benchmark_cells,
    run_cell,
    run_cell_isolated,
    run_scheme,
)

__all__ = [
    "JOBS_ENV",
    "default_jobs",
    "resolve_jobs",
    "warm_pool",
    "shutdown_pool",
    "shared_pool",
    "parallel_map",
    "run_grid_cells",
    "run_benchmark_cells_parallel",
    "run_benchmark_parallel",
    "run_seeds",
]

JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count when the caller asks for ``jobs=None``."""
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` argument to a concrete worker count (>= 1)."""
    if jobs is None:
        return default_jobs()
    return max(1, jobs)


# -- shared worker pool --------------------------------------------------------
#
# Forking (or spawning) a process pool costs tens to hundreds of
# milliseconds — comparable to simulating an entire grid cell through the
# batched replay core.  A sweep that opens a fresh pool per batch therefore
# pays the startup tax over and over and can end up *slower* than the
# serial loop.  The pool below is created once, reused by every
# ``parallel_map`` call that fits inside it, and torn down at process exit
# (or explicitly via :func:`shutdown_pool` / the :func:`shared_pool`
# context manager).

_POOL: ProcessPoolExecutor | None = None
_POOL_JOBS = 0


def warm_pool(jobs: int | None = None) -> ProcessPoolExecutor:
    """Start (or grow) the shared worker pool before it is first needed.

    Returns the live pool.  Growing an existing pool replaces it; callers
    holding a reference from an earlier call should re-fetch.
    """
    global _POOL, _POOL_JOBS
    jobs = resolve_jobs(jobs)
    if _POOL is None or _POOL_JOBS < jobs:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = ProcessPoolExecutor(max_workers=jobs)
        _POOL_JOBS = jobs
    return _POOL


def shutdown_pool() -> None:
    """Tear down the shared pool (no-op when none is running)."""
    global _POOL, _POOL_JOBS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_JOBS = 0


atexit.register(shutdown_pool)


@contextmanager
def shared_pool(jobs: int | None = None):
    """Scope a warm shared pool over several ``parallel_map`` calls.

    ``with shared_pool(jobs):`` warms the pool once; every
    ``parallel_map`` inside the block reuses it, so multi-batch sweeps pay
    worker startup a single time.  The pool persists after the block (it
    is the process-wide shared pool) — use :func:`shutdown_pool` to drop
    it eagerly.
    """
    yield warm_pool(jobs)


def parallel_map(fn, items, jobs: int | None = 1) -> list:
    """Order-preserving map over ``items`` with up to ``jobs`` processes.

    ``fn`` must be a module-level (picklable) callable.  With one job — or
    one item — this is a plain list comprehension, so serial and parallel
    callers share a single code path.  Worker exceptions propagate to the
    caller in input order.

    Multi-job calls run on the shared pool (warming it on first use), and
    items are chunked several-per-worker-round so small cells do not pay
    one IPC round-trip each.
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))
    if jobs <= 1:
        return [fn(item) for item in items]
    pool = warm_pool(jobs)
    chunksize = max(1, len(items) // (jobs * 4))
    return list(pool.map(fn, items, chunksize=chunksize))


# -- grid partitioning ---------------------------------------------------------


@dataclass(frozen=True)
class _BenchmarkTask:
    """One worker unit: every requested scheme of one benchmark."""

    benchmark: str
    schemes: tuple
    machine: MachineConfig
    references: int | None
    seed: int
    keep_going: bool
    retries: int
    use_cache: bool
    series_interval: int = 0


def _run_benchmark_task(task: _BenchmarkTask):
    """Worker body: run one benchmark's schemes over its shared trace."""
    cells, failures = run_benchmark_cells(
        task.benchmark,
        list(task.schemes),
        machine=task.machine,
        references=task.references,
        seed=task.seed,
        keep_going=task.keep_going,
        retries=task.retries,
        use_cache=task.use_cache,
        series_interval=task.series_interval,
    )
    return task.benchmark, cells, failures


def run_grid_cells(
    benchmarks,
    schemes,
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    keep_going: bool = False,
    retries: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
    series_interval: int = 0,
):
    """Run a whole grid, one benchmark per worker unit.

    Returns ``[(benchmark, {scheme: CellResult}, [failures])]`` in
    benchmark input order — metrics plus telemetry snapshot per cell, the
    exact material :func:`repro.experiments.sweep.run_grid` assembles into
    a :class:`~repro.experiments.sweep.SweepResult`.  Snapshots (and, with
    a ``series_interval``, snapshot series) ride back through the worker
    pickle boundary just like metrics, so a parallel grid merges to the
    same totals as the serial loop.
    """
    tasks = [
        _BenchmarkTask(
            benchmark=benchmark,
            schemes=tuple(schemes),
            machine=machine,
            references=references,
            seed=seed,
            keep_going=keep_going,
            retries=retries,
            use_cache=use_cache,
            series_interval=series_interval,
        )
        for benchmark in benchmarks
    ]
    return parallel_map(_run_benchmark_task, tasks, jobs=jobs)


# -- per-scheme partitioning (single-benchmark runs) ---------------------------


@dataclass(frozen=True)
class _SchemeTask:
    """One worker unit: a single (benchmark, scheme) cell."""

    benchmark: str
    scheme: object  # str or SchemeSpec
    machine: MachineConfig
    references: int | None
    seed: int
    keep_going: bool
    retries: int
    use_cache: bool
    series_interval: int = 0


def _run_scheme_task(task: _SchemeTask):
    if task.keep_going:
        return run_cell_isolated(
            task.benchmark,
            task.scheme,
            machine=task.machine,
            references=task.references,
            seed=task.seed,
            retries=task.retries,
            use_cache=task.use_cache,
            series_interval=task.series_interval,
        )
    return run_cell(
        task.benchmark,
        task.scheme,
        machine=task.machine,
        references=task.references,
        seed=task.seed,
        use_cache=task.use_cache,
        series_interval=task.series_interval,
    )


def run_benchmark_cells_parallel(
    benchmark: str,
    schemes,
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    keep_going: bool = False,
    retries: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
    series_interval: int = 0,
) -> tuple[dict[str, CellResult], list[RunFailure]]:
    """One benchmark, schemes fanned out across workers, snapshots included.

    Mirrors :func:`~repro.experiments.runner.run_benchmark_cells` semantics
    (including ``keep_going`` failure capture), with scheme-level
    parallelism for the CLI's single-benchmark ``run`` command.
    """
    tasks = [
        _SchemeTask(
            benchmark=benchmark,
            scheme=scheme,
            machine=machine,
            references=references,
            seed=seed,
            keep_going=keep_going,
            retries=retries,
            use_cache=use_cache,
            series_interval=series_interval,
        )
        for scheme in schemes
    ]
    outcomes = parallel_map(_run_scheme_task, tasks, jobs=jobs)
    cells: dict[str, CellResult] = {}
    failures: list[RunFailure] = []
    for scheme, outcome in zip(schemes, outcomes):
        if isinstance(outcome, RunFailure):
            failures.append(outcome)
        else:
            name = scheme if isinstance(scheme, str) else scheme.name
            cells[name] = outcome
    return cells, failures


def run_benchmark_parallel(
    benchmark: str,
    schemes,
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    keep_going: bool = False,
    retries: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> tuple[dict[str, RunMetrics], list[RunFailure]]:
    """Metrics-only view of :func:`run_benchmark_cells_parallel`."""
    cells, failures = run_benchmark_cells_parallel(
        benchmark,
        schemes,
        machine=machine,
        references=references,
        seed=seed,
        keep_going=keep_going,
        retries=retries,
        jobs=jobs,
        use_cache=use_cache,
    )
    return {name: cell.metrics for name, cell in cells.items()}, failures


# -- per-seed partitioning (multi-seed statistics) -----------------------------


@dataclass(frozen=True)
class _SeedTask:
    benchmark: str
    scheme: object
    machine: MachineConfig
    references: int | None
    seed: int
    use_cache: bool


def _run_seed_task(task: _SeedTask) -> RunMetrics:
    return run_scheme(
        task.benchmark,
        task.scheme,
        machine=task.machine,
        references=task.references,
        seed=task.seed,
        use_cache=task.use_cache,
    )


def run_seeds(
    benchmark: str,
    scheme,
    seeds,
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> list[RunMetrics]:
    """One (benchmark, scheme) point replicated across seeds, in order."""
    tasks = [
        _SeedTask(
            benchmark=benchmark,
            scheme=scheme,
            machine=machine,
            references=references,
            seed=seed,
            use_cache=use_cache,
        )
        for seed in seeds
    ]
    return parallel_map(_run_seed_task, tasks, jobs=jobs)
