"""Machine configurations — Table 1 of the paper.

Two evaluated machines differ only in the unified L2 (256KB @ 4 cycles vs
1MB @ 8 cycles).  Everything else is shared: 8-wide core, direct-mapped 8KB
L1s with 32-byte lines, 4-way 256-entry TLBs, 200MHz x 8B memory bus, and a
fully pipelined AES-256 engine with 96ns latency (16 rounds x 6 stages x
1ns).  Prediction parameters: depth 5, swing 3, 16-bit PHV with threshold 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import CoreConfig
from repro.crypto.engine import CryptoEngineConfig
from repro.memory.bus import BusConfig
from repro.memory.dram import DramConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.memory.tlb import TlbConfig

__all__ = [
    "PredictionConfig",
    "MachineConfig",
    "TABLE1_256K",
    "TABLE1_1M",
    "table1_rows",
]


@dataclass(frozen=True)
class PredictionConfig:
    """Prediction-mechanism parameters from Table 1."""

    depth: int = 5
    swing: int = 3
    phv_bits: int = 16
    phv_threshold: int = 12
    range_entries: int = 64
    range_bits: int = 4
    root_history_depth: int = 0


@dataclass(frozen=True)
class MachineConfig:
    """One column of Table 1, fully wired."""

    name: str
    hierarchy: HierarchyConfig
    core: CoreConfig
    engine: CryptoEngineConfig
    dram: DramConfig
    tlb: TlbConfig
    prediction: PredictionConfig
    flush_interval_instructions: int = 400_000

    @property
    def l2_kb(self) -> int:
        return self.hierarchy.l2_size // 1024


_BUS = BusConfig(width_bytes=8, bus_mhz=200.0, cpu_ghz=1.0)
_DRAM = DramConfig(bus=_BUS)
_ENGINE = CryptoEngineConfig(
    rounds=16, stages_per_round=6, stage_latency_ns=1.0, cpu_ghz=1.0
)
_TLB = TlbConfig(entries=256, associativity=4)
_PREDICTION = PredictionConfig()

TABLE1_256K = MachineConfig(
    name="table1-256K",
    hierarchy=HierarchyConfig(l2_size=256 * 1024, l2_latency=4),
    core=CoreConfig(issue_width=8, l2_hit_penalty=4),
    engine=_ENGINE,
    dram=_DRAM,
    tlb=_TLB,
    prediction=_PREDICTION,
)

TABLE1_1M = MachineConfig(
    name="table1-1M",
    hierarchy=HierarchyConfig(l2_size=1024 * 1024, l2_latency=8),
    core=CoreConfig(issue_width=8, l2_hit_penalty=8),
    engine=_ENGINE,
    dram=_DRAM,
    tlb=_TLB,
    prediction=_PREDICTION,
)


def table1_rows() -> list[tuple[str, str]]:
    """The printable parameter table (validated by the Table-1 benchmark)."""
    machine = TABLE1_256K
    return [
        ("Fetch/Decode width", str(machine.core.issue_width)),
        ("Issue/Commit width", str(machine.core.issue_width)),
        ("L1 I-Cache", "DM, 8KB, 32B line"),
        ("L1 D-Cache", "DM, 8KB, 32B line"),
        ("L2 Cache", "4way, Unified, 32B line, Writeback, 256KB and 1MB"),
        ("L1 Latency", "1 cycle"),
        ("L2 Latency", "4 cycles (256KB), 8 cycles (1MB)"),
        ("I-TLB", "4-way, 256 entries"),
        ("D-TLB", "4-way, 256 entries"),
        ("Memory Bus", "200MHz, 8B wide"),
        ("AES latency", "16 rounds, 6 stages of 1ns each: 96ns"),
        ("Sequence number cache", "4KB, 128KB, 512KB (32B line)"),
        ("Prediction History Vector", "16 bit"),
        ("PHV threshold", "12"),
        ("Prediction depth", "5"),
        ("Prediction swing (context-based only)", "3"),
    ]
