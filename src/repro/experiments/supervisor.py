"""Supervised, crash-safe sweep execution.

:mod:`repro.experiments.parallel` fans a grid out with a bare
``ProcessPoolExecutor.map`` — fast, deterministic, and fragile: a killed
worker tears down the whole pool, a hung cell stalls the sweep forever,
and an interrupted run forgets which cells already finished.  This module
supervises the same pure, content-addressed cells (the cache key *is* the
unit of work) with the orchestration-level analogue of the controller's
:class:`~repro.secure.controller.RecoveryPolicy`:

* **Per-cell timeouts.**  Every cell runs in its own worker process with a
  wall-clock deadline; a hung worker is terminated, not waited on.
* **Crash detection and bounded retry.**  A worker that dies (nonzero
  exit, lost pipe) or times out is retried with exponential backoff — and
  after ``max_retries`` the cell **degrades to in-process serial
  execution**, trading isolation for certainty, exactly like the
  controller falling back to the demand path.
* **Journaled checkpoints.**  Progress is appended (atomically, one JSON
  line per event) to ``.repro-cache/manifest-<sweep_key>.jsonl``.  With
  ``resume=True`` a restarted sweep replays the manifest, serves finished
  cells straight from the result cache, and recomputes only what is
  missing — idempotent because cell identity is the content-addressed
  cache key.

Because a supervised cell runs the *same* :func:`~repro.experiments.
runner.run_cell` as the serial loop, a sweep that survived any amount of
supervision drama produces a :class:`~repro.experiments.sweep.SweepResult`
identical to an undisturbed serial run — the property the chaos soak in
:mod:`repro.faults.orchestration` locks.

Chaos hooks: a ``chaos`` object with an ``action_for(cell_key, attempt)``
method (see :class:`repro.faults.orchestration.SweepChaos`) can sabotage
attempts — the resolved ``(action, seconds)`` pair rides into the worker,
which kills itself, sleeps, or corrupts its own cache entry on command.
The supervisor itself stays chaos-agnostic.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.experiments import cache as result_cache
from repro.experiments.config import MachineConfig, TABLE1_256K
from repro.experiments.parallel import resolve_jobs
from repro.experiments.runner import (
    CellResult,
    RunFailure,
    SCHEMES,
    default_references,
    run_cell,
    run_cell_isolated,
)
from repro.telemetry.fleet import current_trace_context
from repro.telemetry.log import get_logger

__all__ = [
    "MANIFEST_SCHEMA",
    "SupervisorPolicy",
    "SupervisorStats",
    "SweepManifest",
    "ManifestTail",
    "parse_manifest_line",
    "follow_manifest",
    "sweep_key",
    "manifest_path",
    "grid_cells",
    "verified_done_cell",
    "run_grid_supervised",
]

MANIFEST_SCHEMA = "repro.sweep.manifest/v1"

#: Worker exit code for a chaos-commanded kill (recognizable in manifests).
CHAOS_KILL_EXIT = 43

_MP = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)

_LOG = get_logger("supervisor")


@dataclass(frozen=True)
class SupervisorPolicy:
    """How the supervisor responds when a worker misbehaves.

    The orchestration twin of the controller's ``RecoveryPolicy``: bounded
    retries under exponential (capped) backoff, then graceful degradation —
    here, re-running the cell in-process where no worker can die.
    """

    cell_timeout_seconds: float = 120.0
    max_retries: int = 2
    backoff_base_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap_seconds: float = 2.0
    degrade_to_serial: bool = True
    poll_interval_seconds: float = 0.02

    def __post_init__(self) -> None:
        if self.cell_timeout_seconds <= 0:
            raise ValueError(
                f"cell_timeout_seconds must be > 0, got {self.cell_timeout_seconds}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_seconds < 0:
            raise ValueError(
                f"backoff_base_seconds must be >= 0, got {self.backoff_base_seconds}"
            )
        if self.backoff_multiplier < 1:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.backoff_cap_seconds < 0:
            raise ValueError(
                f"backoff_cap_seconds must be >= 0, got {self.backoff_cap_seconds}"
            )

    def backoff_seconds(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), capped.

        Computed without ever materializing a huge power, so the value is
        stable (and cheap) at arbitrarily large attempt numbers.
        """
        delay = self.backoff_base_seconds
        for _ in range(max(0, attempt - 1)):
            delay *= self.backoff_multiplier
            if delay >= self.backoff_cap_seconds:
                return self.backoff_cap_seconds
        return min(delay, self.backoff_cap_seconds)


@dataclass
class SupervisorStats:
    """What supervision actually did during one sweep."""

    cells_total: int = 0
    cells_completed: int = 0          # computed by a worker this run
    cells_resumed: int = 0            # served from cache via the manifest
    retries: int = 0                  # worker attempts beyond the first
    timeouts: int = 0                 # workers terminated at the deadline
    worker_deaths: int = 0            # workers that died without reporting
    worker_errors: int = 0            # workers that reported an exception
    degraded_cells: int = 0           # cells that fell back to in-process
    failures: int = 0                 # cells that produced no result at all
    chaos_events: int = 0             # sabotage actions handed to workers

    def as_dict(self) -> dict[str, int]:
        return {
            "cells_total": self.cells_total,
            "cells_completed": self.cells_completed,
            "cells_resumed": self.cells_resumed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "worker_errors": self.worker_errors,
            "degraded_cells": self.degraded_cells,
            "failures": self.failures,
            "chaos_events": self.chaos_events,
        }

    def publish(self, registry, prefix: str = "sweep.supervisor") -> None:
        """Export supervision counters into a telemetry registry."""
        for name, value in self.as_dict().items():
            registry.counter(f"{prefix}.{name}").inc(value)


# -- sweep identity ------------------------------------------------------------


def sweep_key(
    benchmarks, schemes, machine: MachineConfig, references, seed: int
) -> str:
    """Content key naming one sweep's manifest (config + code fingerprint)."""
    return result_cache._digest(
        {
            "kind": "sweep-manifest",
            "benchmarks": list(benchmarks),
            "schemes": [
                scheme if isinstance(scheme, str) else scheme.name
                for scheme in schemes
            ],
            "machine": machine,
            "references": references,
            "seed": seed,
            "code": result_cache.code_fingerprint(),
        }
    )


def manifest_path(cache_root: Path | str, key: str) -> Path:
    return Path(cache_root) / f"manifest-{key}.jsonl"


def parse_manifest_line(line: str):
    """Parse one journal line, salvaging a complete record glued onto a
    torn fragment (writer A crashed mid-append, writer B's O_APPEND write
    landed on the same line).  Returns ``None`` for an unsalvageable line.

    The single parsing rule for every JSONL journal in the system — sweep
    manifests, the service layer's per-job journals — so each consumer
    tolerates torn writes identically.
    """
    try:
        return json.loads(line)
    except ValueError:
        start = line.find('{"', 1)
        while start != -1:
            try:
                return json.loads(line[start:])
            except ValueError:
                start = line.find('{"', start + 1)
        return None


class ManifestTail:
    """Incremental, torn-line-tolerant reader of one append-only journal.

    Tracks a byte offset into the file and, on each :meth:`drain`, parses
    only the *complete* lines appended since the previous call.  A trailing
    fragment without its newline yet — an append caught mid-write — is
    buffered and retried on the next drain, so a consumer polling a live
    manifest never sees a torn event and never misses the completed form.
    A file that does not exist yet simply drains to nothing (the journal's
    writer may not have started).

    This is the non-blocking core shared by :func:`follow_manifest` (the
    blocking generator) and the service layer's asyncio event streams,
    which interleave ``drain()`` with their own sleep primitive.
    """

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._offset = 0
        self._partial = ""

    def drain(self) -> list[dict]:
        """Every complete event appended since the last drain, in order."""
        try:
            with self.path.open("rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
        except (FileNotFoundError, OSError):
            return []
        if not data:
            return []
        self._offset += len(data)
        text = self._partial + data.decode("utf-8", "replace")
        lines = text.split("\n")
        # The final element is everything after the last newline: a torn
        # trailing line still being appended.  Keep it for the next drain.
        self._partial = lines.pop()
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            record = parse_manifest_line(line)
            if record is not None:
                records.append(record)
        return records


def follow_manifest(path, poll_interval: float = 0.2, stop=None):
    """Yield a journal's events as they are appended (a blocking tail).

    Factored out of the manifest replay so every consumer — the service's
    ``GET /v1/jobs/{id}/events`` stream, ``repro watch``, external
    monitors — follows one live JSONL journal the same way: events arrive
    incrementally, torn trailing lines are buffered until complete, and
    unsalvageable lines are skipped exactly as replay skips them.

    ``stop`` is an optional zero-argument callable; once it returns true
    *and* the journal has drained dry, the generator performs one final
    drain (catching events appended between the last drain and the stop
    signal — e.g. the terminal ``done`` line a writer appends just before
    flipping its finished flag) and returns.  Without ``stop`` the
    generator follows forever.
    """
    tail = ManifestTail(path)
    while True:
        records = tail.drain()
        if records:
            yield from records
            continue
        if stop is not None and stop():
            yield from tail.drain()
            return
        time.sleep(poll_interval)


def grid_cells(benchmarks, schemes, machine, references, seed):
    """Enumerate a grid's cells as ``(benchmark, spec, cell_key)`` triples.

    The single source of truth for cell identity and order: the supervisor
    and the distributed fabric both iterate exactly this sequence, so a
    manifest written by one is drainable by the other.
    """
    cells = []
    for benchmark in benchmarks:
        for scheme in schemes:
            spec = SCHEMES[scheme] if isinstance(scheme, str) else scheme
            cell_key = result_cache.result_key(
                benchmark, spec, machine,
                references or default_references(), seed,
            )
            cells.append((benchmark, spec, cell_key))
    return cells


def verified_done_cell(disk, cell_key: str, series_interval: int = 0):
    """A manifest-``done`` cell's cached result — verified, or ``None``.

    A ``done`` event is a *claim*, not proof: the entry behind it may have
    been quarantined, deleted, or truncated since it was journaled (a
    stale manifest over a poisoned cache).  Serve the cell only if the
    cache entry still exists *and* passes its digest check (``lookup_cell``
    quarantines and reports a miss otherwise), so a bad entry is
    recomputed instead of silently dropping the cell from the sweep.

    Cached entries carry no :class:`~repro.telemetry.snapshot.
    SnapshotSeries`, so when the caller asked for one (``series_interval``
    > 0) the cell must be recomputed regardless — a resumed series sweep
    would otherwise silently lose the series of every resumed cell.
    """
    if series_interval:
        return None
    cached = disk.lookup_cell(cell_key)
    if cached is None:
        return None
    metrics, snapshot = cached
    return CellResult(metrics=metrics, snapshot=snapshot)


class SweepManifest:
    """Append-only journal of one sweep's per-cell progress.

    One JSON object per line; the header line records the sweep's shape,
    every later line is an event (``start`` / ``done`` / ``failed`` /
    ``degrade``) keyed by the cell's cache key.  Appends are single
    ``write`` calls of one line, so a crash can at worst lose the final
    line — never corrupt an earlier one — and replay simply ignores a torn
    trailing line.

    Several writers (the fabric's workers, possibly on different hosts over
    a shared filesystem) may append to one manifest concurrently: the file
    is opened in append mode, each event is one short write, and replay is
    order-insensitive up to the done/failed precedence rule, so interleaved
    appends replay to the union of every writer's events.  If a writer
    crashes mid-append and another writer's complete line lands glued onto
    the torn fragment, :meth:`_parse_line` salvages the intact suffix, so
    only the torn event itself is lost.
    """

    def __init__(self, path: Path, meta: dict | None = None):
        self.path = Path(path)
        self.done: dict[str, dict] = {}
        self.failed: dict[str, dict] = {}
        self._meta = dict(meta or {})

    @classmethod
    def open(cls, path: Path, meta: dict) -> "SweepManifest":
        """Load an existing manifest or start a fresh one with a header."""
        manifest = cls(path, meta)
        if manifest.path.exists():
            manifest._replay()
        else:
            manifest.path.parent.mkdir(parents=True, exist_ok=True)
            manifest._append({"schema": MANIFEST_SCHEMA, "sweep": manifest._meta})
        return manifest

    _parse_line = staticmethod(parse_manifest_line)

    def _replay(self) -> None:
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            record = self._parse_line(line)
            if record is None:
                continue  # torn line from a crash mid-append
            event = record.get("event")
            key = record.get("key")
            if event == "done" and key:
                self.failed.pop(key, None)
                self.done[key] = record
            elif event == "failed" and key:
                self.done.pop(key, None)
                self.failed[key] = record

    def refresh(self) -> None:
        """Re-read the journal, folding in other writers' appends.

        Fabric workers draining one manifest from several processes (or
        hosts) call this between claims so cells finished elsewhere are
        skipped instead of re-claimed.
        """
        self.done.clear()
        self.failed.clear()
        self._replay()

    def _append(self, record: dict) -> None:
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    def record(self, event: str, key: str, cell: str, **extra) -> None:
        # Every line carries its wall clock, its writer's pid, and — when a
        # service job is executing — the job's trace context, so the fleet
        # trace can place the event on the right process lane and tell
        # overlapping jobs sharing one manifest apart.  Replay only reads
        # event/key, so the extra fields cost nothing to older consumers.
        record = {
            "event": event, "key": key, "cell": cell,
            "ts": time.time(), "pid": os.getpid(), **extra,
        }
        trace = current_trace_context()
        if trace is not None:
            record["trace"] = trace.to_dict()
        if event == "done":
            self.failed.pop(key, None)
            self.done[key] = record
        elif event == "failed":
            self.done.pop(key, None)
            self.failed[key] = record
        self._append(record)


# -- the worker side -----------------------------------------------------------


@dataclass(frozen=True)
class _CellTask:
    """Everything one supervised worker needs (picklable)."""

    index: int
    benchmark: str
    scheme: object                    # str or SchemeSpec
    machine: MachineConfig
    references: int | None
    seed: int
    use_cache: bool
    series_interval: int
    cell_key: str
    chaos: tuple | None = None        # resolved (action, seconds) or None

    @property
    def scheme_name(self) -> str:
        return self.scheme if isinstance(self.scheme, str) else self.scheme.name

    @property
    def cell(self) -> str:
        return f"{self.benchmark}/{self.scheme_name}"


def _corrupt_own_entry(task: _CellTask) -> None:
    """Chaos: truncate the cache entry this worker just stored."""
    path = result_cache.default_cache()._result_path(task.cell_key)
    if path.exists():
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])


def _cell_worker(conn, task: _CellTask) -> None:
    """Worker body: obey chaos, run the cell, report through the pipe."""
    try:
        action, seconds = task.chaos if task.chaos else (None, 0.0)
        if action == "kill":
            os._exit(CHAOS_KILL_EXIT)
        if action in ("hang", "slow"):
            time.sleep(seconds)
        cell = run_cell(
            task.benchmark,
            task.scheme,
            machine=task.machine,
            references=task.references,
            seed=task.seed,
            use_cache=task.use_cache,
            series_interval=task.series_interval,
        )
        if action == "corrupt":
            _corrupt_own_entry(task)
        conn.send(("ok", cell))
    except KeyboardInterrupt:
        raise
    except BaseException as err:  # report, let the supervisor decide
        try:
            conn.send(("error", (type(err).__name__, str(err))))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _RunningCell:
    task: _CellTask
    process: object
    conn: object
    deadline: float
    attempt: int                      # 0-based attempt currently running


# -- the supervisor ------------------------------------------------------------


class _Supervisor:
    """One sweep's supervision state machine (see run_grid_supervised)."""

    def __init__(
        self,
        policy: SupervisorPolicy,
        manifest: SweepManifest,
        jobs: int,
        keep_going: bool,
        chaos=None,
        tracer=None,
    ):
        self.policy = policy
        self.manifest = manifest
        self.jobs = max(1, jobs)
        self.keep_going = keep_going
        self.chaos = chaos
        self.tracer = tracer
        self.stats = SupervisorStats()
        self._epoch = time.monotonic()
        self.results: dict[int, CellResult] = {}
        self.failures: list[RunFailure] = []

    # -- telemetry -------------------------------------------------------------

    def _mark_inflight(self, count: int) -> None:
        if self.tracer is not None:
            at = int((time.monotonic() - self._epoch) * 1_000_000)
            self.tracer.counter(
                "sweep.inflight", at=at, track="sweep", inflight=count
            )

    # -- lifecycle -------------------------------------------------------------

    def _spawn(self, task: _CellTask, attempt: int) -> _RunningCell:
        chaos_action = None
        if self.chaos is not None:
            chaos_action = self.chaos.action_for(task.cell_key, attempt)
            if chaos_action is not None:
                self.stats.chaos_events += 1
        armed = dataclasses.replace(task, chaos=chaos_action)
        parent_conn, child_conn = _MP.Pipe(duplex=False)
        process = _MP.Process(
            target=_cell_worker, args=(child_conn, armed), daemon=True
        )
        process.start()
        child_conn.close()
        self.manifest.record(
            "start", task.cell_key, task.cell, attempt=attempt,
            chaos=chaos_action[0] if chaos_action else None,
        )
        return _RunningCell(
            task=task,
            process=process,
            conn=parent_conn,
            deadline=time.monotonic() + self.policy.cell_timeout_seconds,
            attempt=attempt,
        )

    def _reap(self, running: _RunningCell) -> None:
        try:
            running.conn.close()
        except Exception:
            pass
        process = running.process
        process.join(timeout=1.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=1.0)

    def _degrade(self, task: _CellTask) -> None:
        """Retries exhausted: run the cell in-process, where nothing dies."""
        self.stats.degraded_cells += 1
        _LOG.warning(
            "cell degraded to in-process execution after retries",
            cell=task.cell, key=task.cell_key,
            attempts=self.policy.max_retries + 1,
        )
        self.manifest.record("degrade", task.cell_key, task.cell)
        if self.keep_going:
            outcome = run_cell_isolated(
                task.benchmark, task.scheme, task.machine, task.references,
                task.seed, retries=0, use_cache=task.use_cache,
                series_interval=task.series_interval,
            )
            if isinstance(outcome, RunFailure):
                self._record_failure(task, outcome)
            else:
                self._record_success(task, outcome, source="degraded")
            return
        try:
            cell = run_cell(
                task.benchmark, task.scheme, machine=task.machine,
                references=task.references, seed=task.seed,
                use_cache=task.use_cache,
                series_interval=task.series_interval,
            )
        except Exception as err:
            self.manifest.record(
                "failed", task.cell_key, task.cell,
                error=f"{type(err).__name__}: {err}",
            )
            raise
        self._record_success(task, cell, source="degraded")

    def _record_success(
        self, task: _CellTask, cell: CellResult, source: str
    ) -> None:
        self.results[task.index] = cell
        self.stats.cells_completed += 1
        self.manifest.record("done", task.cell_key, task.cell, source=source)

    def _record_failure(self, task: _CellTask, failure: RunFailure) -> None:
        self.failures.append(failure)
        self.stats.failures += 1
        _LOG.error(
            "cell failed with no result",
            cell=task.cell, key=task.cell_key,
            error_type=failure.error_type, error=failure.message,
        )
        self.manifest.record(
            "failed", task.cell_key, task.cell,
            error=f"{failure.error_type}: {failure.message}",
        )

    def _handle_exhausted(self, task: _CellTask, reason: str) -> None:
        """All worker attempts burned; degrade or record the failure."""
        if self.policy.degrade_to_serial:
            self._degrade(task)
            return
        failure = RunFailure(
            benchmark=task.benchmark,
            scheme=task.scheme_name,
            error_type="SupervisionExhausted",
            message=reason,
            attempts=self.policy.max_retries + 1,
            cell_key=task.cell_key,
        )
        if not self.keep_going:
            self.manifest.record(
                "failed", task.cell_key, task.cell,
                error=f"{failure.error_type}: {failure.message}",
            )
            raise RuntimeError(f"supervised cell failed: {failure}")
        self._record_failure(task, failure)

    # -- main loop -------------------------------------------------------------

    def run(self, tasks: list[_CellTask]) -> None:
        self.stats.cells_total += len(tasks)
        # (task, attempt, not_before) triples awaiting a worker slot.
        pending: list[tuple[_CellTask, int, float]] = [
            (task, 0, 0.0) for task in tasks
        ]
        running: list[_RunningCell] = []
        try:
            while pending or running:
                now = time.monotonic()
                # Fill free slots with whatever is ready to (re)start.
                deferred: list[tuple[_CellTask, int, float]] = []
                while pending and len(running) < self.jobs:
                    task, attempt, not_before = pending.pop(0)
                    if now < not_before:
                        deferred.append((task, attempt, not_before))
                        continue
                    running.append(self._spawn(task, attempt))
                    self._mark_inflight(len(running))
                pending[:0] = deferred

                progressed = False
                for cell in list(running):
                    verdict = self._poll(cell)
                    if verdict is None:
                        continue
                    progressed = True
                    running.remove(cell)
                    self._mark_inflight(len(running))
                    kind, detail = verdict
                    if kind == "ok":
                        self._record_success(cell.task, detail, source="worker")
                        continue
                    # Crash / timeout / worker-reported error: retry or
                    # hand over to the degradation path.
                    next_attempt = cell.attempt + 1
                    if next_attempt <= self.policy.max_retries:
                        self.stats.retries += 1
                        pending.append(
                            (
                                cell.task,
                                next_attempt,
                                time.monotonic()
                                + self.policy.backoff_seconds(next_attempt),
                            )
                        )
                    else:
                        self._handle_exhausted(cell.task, detail)
                if not progressed and (running or pending):
                    time.sleep(self.policy.poll_interval_seconds)
        except BaseException:
            for cell in running:
                try:
                    cell.process.terminate()
                except Exception:
                    pass
                self._reap(cell)
            raise

    def _poll(self, cell: _RunningCell):
        """One running worker's state: None (still going) or a verdict."""
        if cell.conn.poll(0):
            try:
                message = cell.conn.recv()
            except (EOFError, OSError):
                message = None  # pipe closed without a report: a death
            self._reap(cell)
            if message is None:
                self.stats.worker_deaths += 1
                _LOG.warning(
                    "worker died before reporting",
                    cell=cell.task.cell, key=cell.task.cell_key,
                    exitcode=cell.process.exitcode, attempt=cell.attempt,
                )
                return (
                    "died",
                    f"worker exited with code {cell.process.exitcode} "
                    f"before reporting",
                )
            if message[0] == "ok":
                return ("ok", message[1])
            self.stats.worker_errors += 1
            _LOG.warning(
                "worker reported an exception",
                cell=cell.task.cell, key=cell.task.cell_key,
                error_type=message[1][0], error=message[1][1],
                attempt=cell.attempt,
            )
            return ("error", f"worker raised {message[1][0]}: {message[1][1]}")
        if not cell.process.is_alive():
            self._reap(cell)
            self.stats.worker_deaths += 1
            _LOG.warning(
                "worker died before reporting",
                cell=cell.task.cell, key=cell.task.cell_key,
                exitcode=cell.process.exitcode, attempt=cell.attempt,
            )
            return (
                "died",
                f"worker exited with code {cell.process.exitcode} "
                f"before reporting",
            )
        if time.monotonic() > cell.deadline:
            cell.process.terminate()
            self._reap(cell)
            self.stats.timeouts += 1
            _LOG.warning(
                "worker terminated at the cell timeout",
                cell=cell.task.cell, key=cell.task.cell_key,
                timeout_seconds=self.policy.cell_timeout_seconds,
                attempt=cell.attempt,
            )
            return (
                "timeout",
                f"cell exceeded {self.policy.cell_timeout_seconds:.1f}s timeout",
            )
        return None


# -- public entry point --------------------------------------------------------


def run_grid_supervised(
    benchmarks,
    schemes,
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    keep_going: bool = False,
    jobs: int | None = 1,
    use_cache: bool = True,
    series_interval: int = 0,
    policy: SupervisorPolicy | None = None,
    chaos=None,
    resume: bool = False,
    tracer=None,
    registry=None,
):
    """Run a grid under supervision; returns a ``SweepResult``.

    Same inputs-to-results contract as :func:`repro.experiments.sweep.
    run_grid` — cell-for-cell identical metrics and snapshots — plus:

    * per-cell worker processes with timeouts, crash retry (exponential
      backoff, capped) and in-process degradation per ``policy``;
    * a journaled manifest under the cache root; with ``resume=True``,
      cells the manifest marks done are served straight from the result
      cache (counted in ``stats.cells_resumed``) and only the remainder
      runs;
    * optional ``chaos`` (``action_for(cell_key, attempt)``), ``tracer``
      (counter track ``sweep.inflight``) and ``registry`` (supervision
      counters under ``sweep.supervisor.*``).

    ``use_cache`` defaults to *True* here (unlike the bare engine):
    checkpoint/resume is only idempotent because finished cells are
    content-addressed on disk.  The returned sweep's ``supervision``
    attribute carries :meth:`SupervisorStats.as_dict`.
    """
    from repro.experiments.sweep import SweepResult

    policy = policy or SupervisorPolicy()
    jobs = resolve_jobs(jobs)
    benchmarks = list(benchmarks)
    schemes = list(schemes)
    disk = result_cache.default_cache()
    key = sweep_key(benchmarks, schemes, machine, references, seed)
    manifest = SweepManifest.open(
        manifest_path(disk.root, key),
        meta={
            "key": key,
            "benchmarks": benchmarks,
            "schemes": [
                s if isinstance(s, str) else s.name for s in schemes
            ],
            "machine": machine.name,
            "references": references,
            "seed": seed,
        },
    )

    tasks: list[_CellTask] = []
    order: list[tuple[str, str]] = []
    resumed: dict[int, CellResult] = {}
    supervisor = _Supervisor(
        policy, manifest, jobs, keep_going, chaos=chaos, tracer=tracer
    )
    for index, (benchmark, spec, cell_key) in enumerate(
        grid_cells(benchmarks, schemes, machine, references, seed)
    ):
        order.append((benchmark, spec.name))
        if resume and cell_key in manifest.done and use_cache:
            cell = verified_done_cell(disk, cell_key, series_interval)
            if cell is not None:
                resumed[index] = cell
                supervisor.stats.cells_resumed += 1
                supervisor.stats.cells_total += 1
                continue
            # Manifest says done but the entry is gone, quarantined, or
            # cannot satisfy the request (series): recompute the cell.
        tasks.append(
            _CellTask(
                index=index,
                benchmark=benchmark,
                scheme=spec,
                machine=machine,
                references=references,
                seed=seed,
                use_cache=use_cache,
                series_interval=series_interval,
                cell_key=cell_key,
            )
        )

    supervisor.run(tasks)

    sweep = SweepResult(machine=machine.name, references=references)
    sweep.failures.extend(supervisor.failures)
    merged = {**resumed, **supervisor.results}
    for cell_index, (benchmark, scheme_name) in enumerate(order):
        cell = merged.get(cell_index)
        if cell is None:
            continue
        sweep.results[(benchmark, scheme_name)] = cell.metrics
        sweep.snapshots[(benchmark, scheme_name)] = cell.snapshot
        if cell.series is not None:
            sweep.series[(benchmark, scheme_name)] = cell.series
    sweep.supervision = supervisor.stats.as_dict()
    if registry is not None:
        supervisor.stats.publish(registry)
        registry.counter("sweep.cache.corrupt_entries").inc(
            disk.stats.corrupt_entries
        )
        registry.counter("sweep.cache.quarantined_entries").inc(
            disk.stats.quarantined_entries
        )
    return sweep
