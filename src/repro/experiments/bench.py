"""Performance benchmark: measure what the fast paths actually buy.

Four layers, mirroring where this codebase spends its time:

* **crypto** — raw AES-CTR throughput (blocks/sec) of the scalar T-table
  loop vs the numpy-vectorized :meth:`~repro.crypto.aes.AES.encrypt_blocks`
  batch path, on the same inputs.
* **otp** — the functional secure-memory pipeline (real pads, integrity
  tree, speculative candidate batches) run twice over an identical seeded
  fetch/write-back workload: once with vectorization and the pad memo
  disabled, once with both enabled.
* **replay** — the trace-replay hot path itself: every cell of a
  benchmark x scheme grid replayed through both the ``reference`` and the
  ``batched`` backend of :mod:`repro.cpu.engine` on identical fresh
  controllers.  Reports references/sec per backend, the cold per-cell and
  aggregate speedups (trace compilation included on the batched side, once
  per benchmark — exactly how a grid pays it), and a bit-identity verdict
  over the full metrics + telemetry snapshot of every cell.
* **grid** — a smoke experiment grid through the public engine: a cold
  serial pass that populates the on-disk result cache, a warm pass served
  from it, and a cold parallel pass with ``--jobs`` workers (pool warmed
  first, so the measured ratio is steady-state throughput rather than
  worker-fork latency).  The warm metrics are compared field-for-field
  against the cold ones — a cache hit must be indistinguishable from a
  fresh run.

``run_bench`` writes the whole report to ``BENCH_perf.json`` (CI uploads it
as an artifact) and returns it as a dict.  All workloads are seeded; wall
clocks are the only nondeterministic values in the report.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.cpu import engine as replay_engine
from repro.cpu.system import replay_miss_trace
from repro.crypto.aes import AES, set_vectorized, vectorized_enabled
from repro.crypto.rng import HardwareRng
from repro.experiments import cache as result_cache
from repro.experiments import runner
from repro.experiments.parallel import warm_pool
from repro.experiments.sweep import SweepResult, run_grid
from repro.ioutil import atomic_write_json
from repro.secure.controller import SecureMemoryController
from repro.secure.predictors import RegularOtpPredictor
from repro.secure.seqnum import PageSecurityTable

__all__ = [
    "BENCH_BENCHMARKS",
    "BENCH_SCHEMES",
    "REPLAY_SCHEMES",
    "available_cpus",
    "crypto_bench",
    "otp_bench",
    "replay_bench",
    "grid_bench",
    "run_bench",
    "render_report",
    "check_regression",
    "temper_baseline",
]

#: Trace-heavy smoke grid: hierarchy simulation dominates these cells, so
#: the trace tier of the cache matters as much as the result tier.
BENCH_BENCHMARKS = ("gzip", "art", "gcc")
BENCH_SCHEMES = ("oracle", "pred_regular", "pred_plus_cache_32k")

#: Replay-layer grid: the paper's scheme ladder (decryption-oracle upper
#: bound, static and adaptive regular prediction, prediction + sequence
#: number cache), i.e. one cell per distinct replay fast path.
REPLAY_SCHEMES = (
    "oracle",
    "pred_regular_static",
    "pred_regular",
    "pred_plus_cache_32k",
)

_MASK64 = (1 << 64) - 1


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine; a cgroup- or affinity-limited
    CI runner may be pinned to a subset, and gating ``parallel_speedup >
    1.0`` on the machine count would then demand a speedup the runner
    physically cannot produce.  ``sched_getaffinity`` reports the real
    budget where the platform has it (Linux); elsewhere fall back.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


def _now() -> float:
    return time.perf_counter()


# -- crypto layer --------------------------------------------------------------


def crypto_bench(blocks: int = 4096, repeats: int = 3) -> dict:
    """Blocks/sec of one AES-128 key over ``blocks``-block batches."""
    cipher = AES(bytes(range(16)))
    rng = HardwareRng(0xAE5)
    data = b"".join(
        rng.next_u64().to_bytes(8, "big") for _ in range(2 * blocks)
    )

    def throughput() -> float:
        best = float("inf")
        for _ in range(repeats):
            start = _now()
            cipher.encrypt_blocks(data)
            best = min(best, _now() - start)
        return blocks / best

    previous = set_vectorized(False)
    try:
        scalar = throughput()
    finally:
        set_vectorized(previous)
    vector = None
    if vectorized_enabled():
        vector = throughput()
    return {
        "blocks": blocks,
        "scalar_blocks_per_sec": round(scalar, 1),
        "vector_blocks_per_sec": round(vector, 1) if vector else None,
        "vector_speedup": round(vector / scalar, 2) if vector else None,
    }


# -- otp pipeline layer --------------------------------------------------------


def _pattern(line: int, version: int, line_bytes: int) -> bytes:
    seed = (line * 0x9E3779B97F4A7C15 + version * 0xBF58476D1CE4E5B9) & _MASK64
    return seed.to_bytes(8, "big") * (line_bytes // 8)


def _functional_workload(operations: int, seed: int, lines_count: int = 32) -> float:
    """Seconds to run one seeded fetch/write-back workload functionally.

    Integrity is off: the MAC tree's SHA-256 work would otherwise dwarf the
    pad path this layer is measuring (the grid layer covers end-to-end).
    """
    table = PageSecurityTable(rng=HardwareRng(seed))
    controller = SecureMemoryController(
        page_table=table,
        predictor=RegularOtpPredictor(table, depth=5),
        key=bytes(range(32)),
        integrity=False,
    )
    line_bytes = controller.address_map.line_bytes
    page_bytes = controller.address_map.page_bytes
    per_page = max(1, lines_count // 4)
    lines = [
        0x20000
        + (index // per_page) * page_bytes
        + (index % per_page) * line_bytes
        for index in range(lines_count)
    ]
    rng = HardwareRng(seed ^ 0xBEAC4)
    start = _now()
    clock = 0
    for version, line in enumerate(lines):
        clock = controller.writeback_line(
            clock, line, _pattern(line, version, line_bytes)
        ).completion_time
    for op in range(operations):
        line = lines[rng.next_below(len(lines))]
        result = controller.fetch_line(clock, line)
        clock = result.data_ready
        if op % 6 == 5:
            target = lines[rng.next_below(len(lines))]
            clock = controller.writeback_line(
                clock, target, _pattern(target, 2 + op, line_bytes)
            ).completion_time
    return _now() - start


def otp_bench(operations: int = 2000, seed: int = 7) -> dict:
    """Functional pipeline ops/sec, baseline vs vectorized + pad memo.

    The baseline turns *off* the numpy batch path and shrinks the pad memo
    to capacity 0 (every pad recomputed), i.e. the pre-optimization
    pipeline; the optimized run is the code's defaults.
    """
    import repro.secure.otp as otp_module

    previous = set_vectorized(False)
    saved_entries = otp_module.DEFAULT_PAD_CACHE_ENTRIES
    otp_module.DEFAULT_PAD_CACHE_ENTRIES = 0
    try:
        baseline_seconds = _functional_workload(operations, seed)
    finally:
        otp_module.DEFAULT_PAD_CACHE_ENTRIES = saved_entries
        set_vectorized(previous)
    optimized_seconds = _functional_workload(operations, seed)
    return {
        "operations": operations,
        "baseline_ops_per_sec": round(operations / baseline_seconds, 1),
        "optimized_ops_per_sec": round(operations / optimized_seconds, 1),
        "speedup": round(baseline_seconds / optimized_seconds, 2),
        "vectorized": vectorized_enabled(),
    }


# -- replay-backend layer ------------------------------------------------------


def replay_bench(
    references: int = 6000,
    seed: int = 1,
    trials: int = 3,
    benchmarks: tuple[str, ...] = BENCH_BENCHMARKS,
    schemes: tuple[str, ...] = REPLAY_SCHEMES,
) -> dict:
    """Reference vs batched replay backend over a benchmark x scheme grid.

    Every cell runs on a fresh controller (counter state fast-forwarded by
    the same preseed) through both backends, interleaved ``trials`` times
    with the best time kept per backend — the interleaving defends the
    ratio against machine-load drift.  Trace compilation is timed cold
    once per benchmark and charged to the batched side of the aggregate,
    matching how a real grid pays it (one compile, all schemes reuse it).

    ``metrics_identical`` is the replay identity contract checked end to
    end: per cell, the full :class:`~repro.cpu.core.RunMetrics` *and* the
    complete telemetry snapshot must match bit-for-bit across backends.
    """
    machine = runner.TABLE1_256K
    cells = []
    identical = True
    ref_total = bat_total = compile_total = 0.0
    for benchmark in benchmarks:
        miss_trace, preseed = runner.get_miss_trace(
            benchmark, machine, references, seed
        )
        probe = runner.make_controller(runner.SCHEMES[schemes[0]], machine, seed)
        replay_engine._COMPILED.clear()
        compile_start = _now()
        replay_engine.compile_trace(
            miss_trace, probe.address_map, probe.dram.config, machine.core
        )
        compile_total += _now() - compile_start
        for scheme in schemes:
            spec = runner.SCHEMES[scheme]
            best = {"reference": float("inf"), "batched": float("inf")}
            outcome = {}
            for _ in range(max(1, trials)):
                for backend in ("reference", "batched"):
                    controller = runner.make_controller(spec, machine, seed)
                    runner.apply_preseed(controller, preseed)
                    start = _now()
                    metrics = replay_miss_trace(
                        miss_trace,
                        controller,
                        core=machine.core,
                        scheme=scheme,
                        backend=backend,
                    )
                    best[backend] = min(best[backend], _now() - start)
                    outcome[backend] = (
                        dataclasses.asdict(metrics),
                        runner.collect_cell_snapshot(controller, miss_trace),
                    )
            cell_identical = outcome["reference"] == outcome["batched"]
            identical = identical and cell_identical
            ref_total += best["reference"]
            bat_total += best["batched"]
            cells.append(
                {
                    "benchmark": benchmark,
                    "scheme": scheme,
                    "reference_seconds": round(best["reference"], 4),
                    "batched_seconds": round(best["batched"], 4),
                    "reference_refs_per_sec": round(
                        references / best["reference"], 1
                    ),
                    "batched_refs_per_sec": round(
                        references / best["batched"], 1
                    ),
                    "speedup": round(best["reference"] / best["batched"], 2),
                    "identical": cell_identical,
                }
            )
    return {
        "references": references,
        "seed": seed,
        "trials": trials,
        "benchmarks": list(benchmarks),
        "schemes": list(schemes),
        "backends": replay_engine.available_backends(),
        "cells": cells,
        "reference_seconds": round(ref_total, 4),
        "batched_seconds": round(bat_total, 4),
        "compile_seconds": round(compile_total, 4),
        "reference_refs_per_sec": round(
            len(cells) * references / ref_total, 1
        ) if ref_total else None,
        "batched_refs_per_sec": round(
            len(cells) * references / (bat_total + compile_total), 1
        ) if bat_total + compile_total else None,
        "speedup": round(ref_total / (bat_total + compile_total), 2)
        if bat_total + compile_total else None,
        "metrics_identical": identical,
    }


# -- experiment grid layer -----------------------------------------------------


def _metrics_dicts(sweep) -> dict:
    import dataclasses

    return {
        f"{benchmark}/{scheme}": dataclasses.asdict(metrics)
        for (benchmark, scheme), metrics in sweep.results.items()
    }


def grid_bench(
    references: int = 6000,
    seed: int = 1,
    jobs: int | None = None,
    benchmarks: tuple[str, ...] = BENCH_BENCHMARKS,
    schemes: tuple[str, ...] = BENCH_SCHEMES,
) -> dict:
    """Cold / warm / parallel timings of the smoke grid, plus equality.

    Runs against a private temporary cache directory so benchmarking never
    touches (or is helped by) the user's ``.repro-cache``.
    """
    jobs = jobs or available_cpus()
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    saved_env = os.environ.get(result_cache.CACHE_DIR_ENV)
    os.environ[result_cache.CACHE_DIR_ENV] = cache_dir
    result_cache.reset_default_cache()
    runner._MISS_TRACE_CACHE.clear()
    try:
        # Cold serial pass, timed per cell, populating the cache.
        cells = []
        cold_start = _now()
        cold = SweepResult(machine="table1-256K", references=references)
        for benchmark in benchmarks:
            for scheme in schemes:
                cell_start = _now()
                metrics = runner.run_scheme(
                    benchmark, scheme, references=references, seed=seed,
                    use_cache=True,
                )
                cells.append(
                    {
                        "benchmark": benchmark,
                        "scheme": scheme,
                        "cold_seconds": round(_now() - cell_start, 4),
                    }
                )
                cold.results[(benchmark, scheme)] = metrics
        cold_seconds = _now() - cold_start

        # Warm pass: same grid, everything should come from the cache.
        warm_cache = result_cache.default_cache()
        warm_cache.stats = result_cache.CacheStats()
        runner._MISS_TRACE_CACHE.clear()
        warm_start = _now()
        warm = run_grid(
            list(benchmarks),
            list(schemes),
            references=references,
            seed=seed,
            use_cache=True,
        )
        warm_seconds = _now() - warm_start
        hit_rate = warm_cache.stats.hit_rate

        # Cold parallel pass: cache and in-process memo wiped first.  The
        # worker pool is warmed *outside* the timed region — the pool is
        # process-wide and amortized over every batch of a real sweep, so
        # charging its one-time fork cost to this single grid would
        # benchmark process startup, not parallel throughput.
        warm_cache.clear()
        result_cache.reset_default_cache()
        runner._MISS_TRACE_CACHE.clear()
        if jobs > 1:
            warm_pool(min(jobs, len(benchmarks)))
        parallel_start = _now()
        parallel = run_grid(
            list(benchmarks),
            list(schemes),
            references=references,
            seed=seed,
            jobs=jobs,
            use_cache=True,
        )
        parallel_seconds = _now() - parallel_start

        cold_metrics = _metrics_dicts(cold)
        return {
            "benchmarks": list(benchmarks),
            "schemes": list(schemes),
            "references": references,
            "seed": seed,
            "jobs": jobs,
            "cells": cells,
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "warm_speedup": round(cold_seconds / warm_seconds, 2),
            "parallel_seconds": round(parallel_seconds, 4),
            "parallel_speedup": round(cold_seconds / parallel_seconds, 2),
            "warm_cache_hit_rate": round(hit_rate, 4),
            "metrics_identical": (
                cold_metrics == _metrics_dicts(warm)
                and cold_metrics == _metrics_dicts(parallel)
            ),
        }
    finally:
        if saved_env is None:
            os.environ.pop(result_cache.CACHE_DIR_ENV, None)
        else:
            os.environ[result_cache.CACHE_DIR_ENV] = saved_env
        result_cache.reset_default_cache()
        runner._MISS_TRACE_CACHE.clear()
        shutil.rmtree(cache_dir, ignore_errors=True)


# -- service layer -------------------------------------------------------------


def service_bench(references: int = 1500, seed: int = 1, trials: int = 3) -> dict:
    """Warm-cache job round-trip latency through the full service stack.

    Measures what a tenant pays for the front door itself: with every
    cell already cached, a ``submit → wait → fetch result`` round trip is
    pure service overhead (HTTP parse, admission, journal replay, resume
    from cache, canonical serialization).  A cold job primes the private
    cache first; the reported latency is the best of ``trials`` warm
    round trips (minimum discards scheduler flukes, matching the other
    sections' best-of-repeats convention).
    """
    from repro.service.client import ServiceClient
    from repro.service.queue import JobStore
    from repro.service.scheduler import SchedulerPolicy, ServiceScheduler
    from repro.service.server import serve_in_thread

    benchmarks = ["stream"]
    schemes = ["baseline", "pred_regular"]
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-service-")
    saved_env = os.environ.get(result_cache.CACHE_DIR_ENV)
    os.environ[result_cache.CACHE_DIR_ENV] = cache_dir
    result_cache.reset_default_cache()
    try:
        handle = serve_in_thread(
            ServiceScheduler(
                store=JobStore(),
                policy=SchedulerPolicy(
                    sample_interval_seconds=0.05, poll_interval_seconds=0.01
                ),
            )
        )
        try:
            client = ServiceClient(handle.url)

            def round_trip(tenant: str) -> tuple[float, bytes]:
                start = _now()
                receipt = client.submit(
                    tenant, benchmarks, schemes, references=references, seed=seed
                )
                # The client's default 0.1s poll quantizes a ~10ms warm
                # round trip into a coin flip between 0.01s and 0.11s;
                # poll fast enough that the measurement is the service,
                # not the poller.
                client.wait(receipt["job_id"], timeout=300.0, poll=0.005)
                data = client.result_bytes(receipt["job_id"])
                return _now() - start, data

            cold_seconds, cold_bytes = round_trip("bench-cold")
            warm = [round_trip(f"bench-warm-{index}") for index in range(trials)]
            warm_seconds = min(seconds for seconds, _ in warm)
            identical = all(data == cold_bytes for _, data in warm)
        finally:
            handle.stop()
        return {
            "benchmarks": benchmarks,
            "schemes": schemes,
            "references": references,
            "trials": trials,
            "cold_submit_to_result_sec": round(cold_seconds, 4),
            "submit_to_result_sec": round(warm_seconds, 4),
            "results_identical": identical,
        }
    finally:
        if saved_env is None:
            os.environ.pop(result_cache.CACHE_DIR_ENV, None)
        else:
            os.environ[result_cache.CACHE_DIR_ENV] = saved_env
        result_cache.reset_default_cache()
        shutil.rmtree(cache_dir, ignore_errors=True)


# -- entry point ---------------------------------------------------------------


def run_bench(
    output: str | Path | None = "BENCH_perf.json",
    references: int = 6000,
    operations: int = 2000,
    jobs: int | None = None,
    seed: int = 1,
) -> dict:
    """Run all three layers and (optionally) write the JSON report."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    report = {
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy_version,
            "cpus": available_cpus(),
            "platform": platform.system().lower(),
        },
        "crypto": crypto_bench(),
        "otp": otp_bench(operations=operations, seed=seed + 6),
        "replay": replay_bench(references=references, seed=seed),
        "grid": grid_bench(references=references, seed=seed, jobs=jobs),
        "service": service_bench(references=min(references, 1500), seed=seed),
    }
    if output is not None:
        atomic_write_json(Path(output), report, indent=2)
    return report


#: Speedup ratios compared against the baseline report by
#: :func:`check_regression`; every path is optional on either side (a
#: missing value — e.g. no numpy, so no vector speedup — is skipped, not
#: failed, so the guard works across heterogeneous CI runners).
_GUARDED_SPEEDUPS = (
    ("crypto", "vector_speedup"),
    ("otp", "speedup"),
    ("replay", "speedup"),
    ("grid", "warm_speedup"),
    ("grid", "parallel_speedup"),
)

#: Latency ceilings guarded by :func:`check_regression` — unlike the
#: ratios above these are absolute wall clocks, so the allowed band is
#: doubled (``1 + 2 x tolerance``) to survive slow CI runners on top of a
#: baseline that should itself carry generous headroom.
_GUARDED_LATENCIES = (
    ("service", "submit_to_result_sec"),
)

#: Additive slack on latency ceilings.  Sub-second baselines sit inside
#: the scheduler/poller quantization noise (admission poll, sampler
#: interval, thread wakeup), which is *additive* jitter — a 0.01s
#: baseline can honestly measure 0.1s on the next run without any code
#: regression.  A multiplicative band alone cannot absorb that, so the
#: ceiling also gets this flat allowance; real regressions (an
#: accidental sleep or lock on the service path) still blow through it.
_LATENCY_SLACK_SEC = 0.25


def check_regression(current: dict, baseline: dict, tolerance: float = 0.2) -> list[str]:
    """Compare a fresh bench report against a committed baseline.

    Two classes of check:

    * **Hard invariants** of the current report alone — a warm grid pass
      must be pure cache hits and every pass must produce identical
      metrics.  These are correctness properties, not timings, so no
      tolerance applies.
    * **Speedup ratios** (:data:`_GUARDED_SPEEDUPS`) must stay within
      ``tolerance`` of the baseline's value.  Ratios are compared rather
      than absolute wall clocks so the guard survives slower CI hardware;
      the tolerance absorbs scheduler noise on top of that.

    Returns a list of human-readable violations (empty = pass).
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    violations: list[str] = []
    grid = current.get("grid", {})
    if grid.get("metrics_identical") is not True:
        violations.append(
            "grid.metrics_identical: warm/parallel metrics differ from the "
            "cold serial pass"
        )
    hit_rate = grid.get("warm_cache_hit_rate")
    if hit_rate != 1.0:
        violations.append(
            f"grid.warm_cache_hit_rate: expected 1.0, got {hit_rate}"
        )
    replay = current.get("replay")
    if replay is not None and replay.get("metrics_identical") is not True:
        violations.append(
            "replay.metrics_identical: batched backend diverged from the "
            "reference replay"
        )
    # Parallel execution must beat the serial loop wherever it can — i.e.
    # on any multi-CPU box (a 1-CPU runner degrades to the serial path,
    # where the ratio is meaningless).  This is an invariant of the
    # current report, independent of the baseline.
    cpus = (current.get("environment") or {}).get("cpus")
    parallel_speedup = grid.get("parallel_speedup")
    if cpus and cpus > 1 and parallel_speedup is not None:
        if parallel_speedup <= 1.0:
            violations.append(
                f"grid.parallel_speedup: {parallel_speedup:.2f} <= 1.00 on a "
                f"{cpus}-CPU machine — the pool is slower than the serial loop"
            )
    service = current.get("service")
    if service is not None and service.get("results_identical") is not True:
        violations.append(
            "service.results_identical: warm service results diverged from "
            "the cold job's bytes"
        )
    for section, field in _GUARDED_SPEEDUPS:
        expected = (baseline.get(section) or {}).get(field)
        actual = (current.get(section) or {}).get(field)
        if expected is None or actual is None:
            continue
        floor = expected * (1.0 - tolerance)
        if actual < floor:
            violations.append(
                f"{section}.{field}: {actual:.2f} < {floor:.2f} "
                f"(baseline {expected:.2f}, tolerance {tolerance:.0%})"
            )
    for section, field in _GUARDED_LATENCIES:
        expected = (baseline.get(section) or {}).get(field)
        actual = (current.get(section) or {}).get(field)
        if expected is None or actual is None:
            continue
        ceiling = expected * (1.0 + 2.0 * tolerance) + _LATENCY_SLACK_SEC
        if actual > ceiling:
            violations.append(
                f"{section}.{field}: {actual:.2f}s > {ceiling:.2f}s "
                f"(baseline {expected:.2f}s, tolerance 2x{tolerance:.0%} "
                f"+ {_LATENCY_SLACK_SEC:.2f}s slack)"
            )
    return violations


def temper_baseline(reports: list[dict], safety: float = 0.8) -> dict:
    """Re-temper a regression baseline from several fresh bench reports.

    The committed baseline's only load-bearing values are the guarded
    speedup ratios; everything else (wall clocks, cell timings) is
    documentation.  To refresh it without hand-editing, run the bench N
    times and take, per guarded ratio, the **minimum** across runs scaled
    by ``safety`` — the minimum discards upward scheduler flukes, and the
    safety factor headrooms the floor so a baseline refreshed on a fast
    idle machine does not instantly trip on a loaded CI runner.

    Returns a baseline dict shaped like a bench report (the first run,
    with guarded ratios replaced) plus ``tempering`` metadata recording
    how the values were derived.
    """
    if not reports:
        raise ValueError("temper_baseline needs at least one bench report")
    if not 0 < safety <= 1:
        raise ValueError(f"safety must be in (0, 1], got {safety}")
    baseline = json.loads(json.dumps(reports[0]))  # deep copy, JSON-clean
    tempered: dict[str, float | None] = {}
    for section, field in _GUARDED_SPEEDUPS:
        observed = [
            value
            for report in reports
            if (value := (report.get(section) or {}).get(field)) is not None
        ]
        name = f"{section}.{field}"
        if not observed:
            tempered[name] = None
            continue
        value = round(min(observed) * safety, 2)
        tempered[name] = value
        baseline.setdefault(section, {})[field] = value
    for section, field in _GUARDED_LATENCIES:
        observed = [
            value
            for report in reports
            if (value := (report.get(section) or {}).get(field)) is not None
        ]
        name = f"{section}.{field}"
        if not observed:
            tempered[name] = None
            continue
        # Latencies headroom the other way: the *maximum* across runs,
        # divided by the safety factor so the ceiling sits above it.
        value = round(max(observed) / safety, 2)
        tempered[name] = value
        baseline.setdefault(section, {})[field] = value
    baseline["tempering"] = {
        "runs": len(reports),
        "safety": safety,
        "rule": "speedups: min across runs x safety; "
                "latencies: max across runs / safety",
        "values": tempered,
    }
    return baseline


def render_report(report: dict) -> str:
    """Human-readable summary of a :func:`run_bench` report."""
    crypto = report["crypto"]
    otp = report["otp"]
    grid = report["grid"]
    lines = [
        "Performance benchmark",
        f"crypto: scalar {crypto['scalar_blocks_per_sec']:.0f} blocks/s, "
        f"vector {crypto['vector_blocks_per_sec'] or 0:.0f} blocks/s "
        f"(x{crypto['vector_speedup'] or 0:.1f})",
        f"otp:    baseline {otp['baseline_ops_per_sec']:.0f} ops/s, "
        f"optimized {otp['optimized_ops_per_sec']:.0f} ops/s "
        f"(x{otp['speedup']:.1f})",
    ]
    replay = report.get("replay")
    if replay is not None:
        lines.append(
            f"replay: reference {replay['reference_refs_per_sec'] or 0:.0f} "
            f"refs/s, batched {replay['batched_refs_per_sec'] or 0:.0f} refs/s "
            f"(x{replay['speedup'] or 0:.1f} over "
            f"{len(replay['cells'])} cells, compile "
            f"{replay['compile_seconds']:.3f}s), "
            f"identical: {replay['metrics_identical']}"
        )
    lines.extend(
        [
            f"grid:   cold {grid['cold_seconds']:.2f}s, "
            f"warm {grid['warm_seconds']:.2f}s (x{grid['warm_speedup']:.1f}), "
            f"parallel[{grid['jobs']}] {grid['parallel_seconds']:.2f}s "
            f"(x{grid['parallel_speedup']:.1f})",
            f"        warm cache hit rate {grid['warm_cache_hit_rate']:.0%}, "
            f"metrics identical: {grid['metrics_identical']}",
        ]
    )
    service = report.get("service")
    if service is not None:
        lines.append(
            f"service: cold job {service['cold_submit_to_result_sec']:.2f}s, "
            f"warm submit->result {service['submit_to_result_sec']:.2f}s "
            f"(best of {service['trials']}), "
            f"identical: {service['results_identical']}"
        )
    return "\n".join(lines)
