"""Multi-seed statistics for experiment results.

Single-seed runs are deterministic, but workload models are stochastic by
seed; this module quantifies how much a reported number moves across seeds
(the reproduction analogue of the paper's SimPoint-region choice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.config import MachineConfig, TABLE1_256K
from repro.experiments.parallel import run_seeds

__all__ = ["SeedSummary", "summarize", "metric_across_seeds", "METRICS"]

#: Named metric extractors usable with :func:`metric_across_seeds`.
METRICS = {
    "ipc": lambda m: m.ipc,
    "prediction_rate": lambda m: m.prediction_rate,
    "seqcache_hit_rate": lambda m: m.seqcache_hit_rate,
    "mean_exposed_latency": lambda m: m.mean_exposed_latency,
    "l2_misses": lambda m: float(m.l2_misses),
}


@dataclass(frozen=True)
class SeedSummary:
    """Aggregate of one metric over several seeds."""

    values: tuple[float, ...]

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    @property
    def stdev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        variance = sum((v - mean) ** 2 for v in self.values) / (len(self.values) - 1)
        return math.sqrt(variance)

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def stderr(self) -> float:
        if len(self.values) < 2:
            return 0.0
        return self.stdev / math.sqrt(len(self.values))

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI around the mean."""
        margin = z * self.stderr
        return self.mean - margin, self.mean + margin


def summarize(values: list[float]) -> SeedSummary:
    """Wrap raw values in a :class:`SeedSummary`."""
    return SeedSummary(values=tuple(float(v) for v in values))


def metric_across_seeds(
    benchmark: str,
    scheme: str,
    metric: str,
    seeds: list[int],
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> SeedSummary:
    """Run one (benchmark, scheme) point under several seeds.

    Seeds are independent simulations, so ``jobs`` fans them out across
    worker processes; values come back in seed order either way.
    """
    extractor = METRICS.get(metric)
    if extractor is None:
        raise ValueError(
            f"unknown metric {metric!r}; choose from {', '.join(sorted(METRICS))}"
        )
    runs = run_seeds(
        benchmark,
        scheme,
        seeds,
        machine=machine,
        references=references,
        jobs=jobs,
        use_cache=use_cache,
    )
    return summarize([extractor(metrics) for metrics in runs])
