"""Experiment runner: (benchmark x scheme x machine) -> metrics.

The heavy step — simulating a workload through the cache hierarchy — is
scheme-independent (OTP prediction adds no memory traffic), so miss traces
are collected once per (benchmark, machine, length, seed) and memoized;
every security scheme then replays the same stream through a fresh
controller.  This is the exact-decomposition argument of
:mod:`repro.cpu.system` and is what makes the paper's multi-scheme sweeps
tractable in Python.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.cpu.core import RunMetrics
from repro.cpu.system import MissTrace, collect_miss_trace, replay_miss_trace
from repro.crypto.engine import CryptoEngine
from repro.crypto.rng import HardwareRng
from repro.experiments import cache as result_cache
from repro.experiments.config import MachineConfig, TABLE1_256K
from repro.memory.dram import Dram
from repro.memory.hierarchy import MemoryHierarchy
from repro.secure.controller import SecureMemoryController
from repro.secure.direct import DirectEncryptionController
from repro.secure.predecrypt import PredecryptingController
from repro.secure.predictors import (
    ContextOtpPredictor,
    NullPredictor,
    OtpPredictor,
    RangePredictionTable,
    RegularOtpPredictor,
    TwoLevelOtpPredictor,
)
from repro.secure.seqcache import SequenceNumberCache
from repro.secure.seqnum import PageSecurityTable
from repro.telemetry.profile import profile_scope
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.snapshot import MetricsSnapshot, SnapshotSeries
from repro.workloads.spec import build_workload

__all__ = [
    "SchemeSpec",
    "SCHEMES",
    "CellResult",
    "RunFailure",
    "default_references",
    "get_miss_trace",
    "make_controller",
    "apply_preseed",
    "collect_cell_snapshot",
    "run_cell",
    "run_cell_isolated",
    "run_scheme",
    "run_scheme_isolated",
    "run_benchmark",
    "run_benchmark_cells",
    "run_benchmark_resilient",
]

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class SchemeSpec:
    """One point in the paper's scheme space."""

    name: str
    predictor: str | None = None      # None | regular | two_level | context
    seqcache_kb: int | None = None
    oracle: bool = False
    adaptive: bool = True
    root_history: bool = False
    predecrypt: bool = False          # Section 9.2 comparison / hybrid
    direct: bool = False              # pre-CTR direct-encryption baseline


SCHEMES: dict[str, SchemeSpec] = {
    spec.name: spec
    for spec in (
        SchemeSpec("oracle", oracle=True),
        SchemeSpec("baseline"),
        SchemeSpec("seqcache_4k", seqcache_kb=4),
        SchemeSpec("seqcache_32k", seqcache_kb=32),
        SchemeSpec("seqcache_128k", seqcache_kb=128),
        SchemeSpec("seqcache_512k", seqcache_kb=512),
        SchemeSpec("pred_regular", predictor="regular"),
        SchemeSpec("pred_regular_static", predictor="regular", adaptive=False),
        SchemeSpec("pred_regular_history", predictor="regular", root_history=True),
        SchemeSpec("pred_two_level", predictor="two_level"),
        SchemeSpec("pred_context", predictor="context"),
        SchemeSpec("pred_plus_cache_32k", predictor="regular", seqcache_kb=32),
        SchemeSpec("predecrypt", predecrypt=True),
        SchemeSpec("hybrid_predecrypt", predictor="regular", predecrypt=True),
        SchemeSpec("direct_encryption", direct=True),
    )
}


def default_references() -> int:
    """Trace length for figure runs (override with ``REPRO_REFS``)."""
    return int(os.environ.get("REPRO_REFS", "60000"))


# -- miss-trace memoization ----------------------------------------------------

_MISS_TRACE_CACHE: dict[tuple, tuple[MissTrace, dict[int, int]]] = {}


def get_miss_trace(
    benchmark: str,
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    use_cache: bool = False,
) -> tuple[MissTrace, dict[int, int]]:
    """Miss trace + fast-forward preseed for one (benchmark, machine).

    Memoized in-process always (all schemes of a grid share one generated
    trace); with ``use_cache`` the trace is additionally persisted through
    :mod:`repro.experiments.cache`, so later processes — parallel sweep
    workers, or a grid extended with new schemes — skip the hierarchy
    simulation entirely.
    """
    references = references or default_references()
    key = (benchmark, machine.name, references, seed)
    cached = _MISS_TRACE_CACHE.get(key)
    if cached is not None:
        return cached
    disk = result_cache.default_cache() if use_cache else None
    disk_key = (
        result_cache.trace_key(benchmark, machine, references, seed)
        if disk is not None
        else None
    )
    if disk is not None:
        pair = disk.lookup_trace(disk_key)
        if pair is not None:
            _MISS_TRACE_CACHE[key] = pair
            return pair
    workload = build_workload(benchmark, references=references, seed=seed)
    hierarchy = MemoryHierarchy(machine.hierarchy)
    with profile_scope("sim.hierarchy_step"):
        miss_trace = collect_miss_trace(
            workload.trace,
            hierarchy=hierarchy,
            flush_interval_instructions=machine.flush_interval_instructions,
        )
    _MISS_TRACE_CACHE[key] = (miss_trace, workload.preseed)
    if disk is not None:
        disk.store_trace(disk_key, miss_trace, workload.preseed)
    return miss_trace, workload.preseed


# -- controller construction -----------------------------------------------------


def _make_predictor(
    spec: SchemeSpec, machine: MachineConfig, table: PageSecurityTable
) -> OtpPredictor:
    prediction = machine.prediction
    if spec.predictor is None:
        return NullPredictor(table)
    if spec.predictor == "regular":
        return RegularOtpPredictor(
            table,
            depth=prediction.depth,
            adaptive=spec.adaptive,
            use_root_history=spec.root_history,
        )
    if spec.predictor == "two_level":
        return TwoLevelOtpPredictor(
            table,
            depth=prediction.depth,
            adaptive=spec.adaptive,
            use_root_history=spec.root_history,
            range_table=RangePredictionTable(
                entries=prediction.range_entries,
                range_bits=prediction.range_bits,
            ),
        )
    if spec.predictor == "context":
        return ContextOtpPredictor(
            table,
            depth=prediction.depth,
            swing=prediction.swing,
            adaptive=spec.adaptive,
            use_root_history=spec.root_history,
        )
    raise ValueError(f"unknown predictor kind {spec.predictor!r}")


def make_controller(
    spec: SchemeSpec, machine: MachineConfig = TABLE1_256K, seed: int = 1
) -> SecureMemoryController:
    """Fresh controller implementing one scheme on one machine."""
    history_depth = machine.prediction.root_history_depth
    if spec.root_history and not history_depth:
        history_depth = 1
    table = PageSecurityTable(
        rng=HardwareRng(seed),
        phv_bits=machine.prediction.phv_bits,
        phv_threshold=machine.prediction.phv_threshold,
        history_depth=history_depth,
    )
    seqcache = (
        SequenceNumberCache(spec.seqcache_kb * 1024) if spec.seqcache_kb else None
    )
    if spec.direct and spec.predecrypt:
        raise ValueError("direct encryption cannot be combined with predecryption")
    if spec.direct:
        controller_class = DirectEncryptionController
    elif spec.predecrypt:
        controller_class = PredecryptingController
    else:
        controller_class = SecureMemoryController
    return controller_class(
        engine=CryptoEngine(machine.engine),
        dram=Dram(machine.dram),
        page_table=table,
        predictor=_make_predictor(spec, machine, table),
        seqcache=seqcache,
        oracle=spec.oracle,
    )


def apply_preseed(
    controller: SecureMemoryController, preseed: dict[int, int]
) -> None:
    """Install fast-forward counter state (line distances) into RAM."""
    table = controller.page_table
    address_map = controller.address_map
    backing = controller.backing
    for line, distance in preseed.items():
        page = address_map.page_number(line)
        root = table.state(page).mapping_root
        backing.write_seqnum(line, (root + distance) & _MASK64)


@dataclass(frozen=True)
class CellResult:
    """Metrics plus telemetry snapshot of one (benchmark, scheme) cell.

    ``series`` is only populated for runs requested with a
    ``series_interval`` — the periodic cumulative snapshots spilled during
    the replay (telemetry retention; its last sample equals ``snapshot``).
    """

    metrics: RunMetrics
    snapshot: MetricsSnapshot
    series: SnapshotSeries | None = None


def collect_cell_snapshot(
    controller, miss_trace, meta: dict | None = None
) -> MetricsSnapshot:
    """Harvest one finished cell's stat islands into a mergeable snapshot.

    Covers the whole pipeline: controller (classes, resilience, latency
    histogram), crypto engine, predictor, DRAM, sequence-number cache and
    pad memo when present, plus the hierarchy-level summary of the miss
    trace.  Harvesting happens once per cell, after the replay, so the
    simulation hot path carries no per-event registry cost.
    """
    registry = MetricRegistry()
    controller.publish_telemetry(registry)
    miss_trace.publish(registry)
    return registry.snapshot(meta=meta)


def run_cell(
    benchmark: str,
    scheme: str | SchemeSpec,
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    use_cache: bool = False,
    tracer=None,
    series_interval: int = 0,
    backend: str | None = None,
) -> CellResult:
    """Run one (benchmark, scheme, machine) point, returning metrics + snapshot.

    With ``use_cache`` the cell is served from / stored into the on-disk
    result cache (content-keyed, including a source-code fingerprint, so a
    hit is always byte-identical to a fresh run of the same code).  A
    ``tracer`` (:class:`~repro.telemetry.events.EventTracer`) attaches to
    the controller for cycle-stamped span capture; a positive
    ``series_interval`` spills a cumulative :class:`SnapshotSeries` sample
    every that many fetches during the replay.  Traced and series runs
    bypass the cache — a cached cell has no events or mid-run state to
    replay.  ``backend`` picks a replay backend from
    :mod:`repro.cpu.engine` (default: environment / batched); every
    backend yields bit-identical cells.
    """
    spec = SCHEMES[scheme] if isinstance(scheme, str) else scheme
    references = references or default_references()
    disk = (
        result_cache.default_cache()
        if use_cache and tracer is None and not series_interval
        else None
    )
    cache_key = None
    if disk is not None:
        cache_key = result_cache.result_key(
            benchmark, spec, machine, references, seed
        )
        cached = disk.lookup_cell(cache_key)
        if cached is not None:
            metrics, snapshot = cached
            return CellResult(metrics=metrics, snapshot=snapshot)
    miss_trace, preseed = get_miss_trace(
        benchmark, machine, references, seed, use_cache=use_cache
    )
    controller = make_controller(spec, machine, seed)
    if tracer is not None:
        controller.tracer = tracer
    apply_preseed(controller, preseed)
    meta = {
        "benchmark": benchmark,
        "scheme": spec.name,
        "machine": machine.name,
        "references": references,
        "seed": seed,
    }
    series: SnapshotSeries | None = None
    on_fetch = None
    if series_interval:
        if series_interval < 0:
            raise ValueError(
                f"series_interval must be >= 0, got {series_interval}"
            )
        series = SnapshotSeries(interval=series_interval, meta=dict(meta))

        def on_fetch(fetches: int) -> None:
            if fetches % series_interval == 0:
                series.append(
                    collect_cell_snapshot(
                        controller, miss_trace, meta={**meta, "accesses": fetches}
                    )
                )

    with profile_scope("sim.replay"):
        metrics = replay_miss_trace(
            miss_trace,
            controller,
            core=machine.core,
            scheme=spec.name,
            on_fetch=on_fetch,
            backend=backend,
            # The series only acts on interval multiples, so batched
            # backends may call the hook exactly there (identical samples,
            # thousands fewer Python calls).
            hook_interval=series_interval,
        )
    snapshot = collect_cell_snapshot(controller, miss_trace, meta=meta)
    if series is not None:
        # The retention contract: the last sample is the run's final state,
        # so a series stands in for (and is checked against) the plain
        # snapshot.  A mid-run sample taken *at* the last fetch still
        # precedes trailing write-backs, so it is replaced rather than kept.
        total = controller.stats.fetches
        if series.samples and series.accesses()[-1] == total:
            series.samples.pop()
        series.append(
            MetricsSnapshot(
                values=snapshot.values,
                kinds=snapshot.kinds,
                meta={**meta, "accesses": total},
            )
        )
    if disk is not None:
        disk.store_result(cache_key, metrics, snapshot)
    return CellResult(metrics=metrics, snapshot=snapshot, series=series)


def run_scheme(
    benchmark: str,
    scheme: str | SchemeSpec,
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    use_cache: bool = False,
) -> RunMetrics:
    """Run one (benchmark, scheme, machine) point (metrics only)."""
    return run_cell(benchmark, scheme, machine, references, seed, use_cache).metrics


def run_benchmark_cells(
    benchmark: str,
    schemes: list[str],
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    keep_going: bool = False,
    retries: int = 1,
    use_cache: bool = False,
    series_interval: int = 0,
) -> tuple[dict[str, "CellResult"], list["RunFailure"]]:
    """Run several schemes on one benchmark's shared miss trace.

    Returns ``(cells, failures)``; ``failures`` can only be non-empty with
    ``keep_going`` (otherwise the first error propagates, the historical
    fail-fast behavior).
    """
    cells: dict[str, CellResult] = {}
    failures: list[RunFailure] = []
    for scheme in schemes:
        name = scheme if isinstance(scheme, str) else scheme.name
        if keep_going:
            outcome = run_cell_isolated(
                benchmark, scheme, machine, references, seed, retries,
                use_cache, series_interval,
            )
            if isinstance(outcome, RunFailure):
                failures.append(outcome)
            else:
                cells[name] = outcome
        else:
            cells[name] = run_cell(
                benchmark, scheme, machine, references, seed, use_cache,
                series_interval=series_interval,
            )
    return cells, failures


def run_benchmark(
    benchmark: str,
    schemes: list[str],
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    use_cache: bool = False,
) -> dict[str, RunMetrics]:
    """Run several schemes on one benchmark's shared miss trace."""
    cells, _ = run_benchmark_cells(
        benchmark, schemes, machine, references, seed, use_cache=use_cache
    )
    return {scheme: cell.metrics for scheme, cell in cells.items()}


# -- failure isolation ---------------------------------------------------------


@dataclass(frozen=True)
class RunFailure:
    """Record of one (benchmark, scheme) point that could not be run.

    ``cell_key`` is the point's content-addressed cache key — the stable
    identity a resumed or supervised sweep uses to retry exactly this
    cell.  Empty only for failures recorded before the key could be
    computed (e.g. an unknown scheme name).
    """

    benchmark: str
    scheme: str
    error_type: str
    message: str
    attempts: int
    cell_key: str = ""

    def __str__(self) -> str:
        key = f" [{self.cell_key[:12]}]" if self.cell_key else ""
        return (
            f"{self.benchmark}/{self.scheme}: {self.error_type}: "
            f"{self.message} ({self.attempts} attempt(s)){key}"
        )


def run_cell_isolated(
    benchmark: str,
    scheme: str | SchemeSpec,
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    retries: int = 1,
    use_cache: bool = False,
    series_interval: int = 0,
) -> CellResult | RunFailure:
    """Run one point behind an isolation boundary.

    A failing scheme is retried up to ``retries`` more times (the
    simulator is deterministic, but schemes can run against faulting
    memory models where a retry genuinely differs); if every attempt
    raises, the error is captured as a :class:`RunFailure` instead of
    propagating, so one bad scheme cannot sink a whole sweep.
    """
    name = scheme if isinstance(scheme, str) else scheme.name
    last: Exception | None = None
    attempts = 0
    for _ in range(max(0, retries) + 1):
        attempts += 1
        try:
            return run_cell(
                benchmark, scheme, machine, references, seed, use_cache,
                series_interval=series_interval,
            )
        except KeyboardInterrupt:
            raise
        except Exception as err:
            last = err
    spec = SCHEMES.get(scheme) if isinstance(scheme, str) else scheme
    cell_key = (
        result_cache.result_key(
            benchmark, spec, machine, references or default_references(), seed
        )
        if spec is not None
        else ""
    )
    return RunFailure(
        benchmark=benchmark,
        scheme=name,
        error_type=type(last).__name__,
        message=str(last),
        attempts=attempts,
        cell_key=cell_key,
    )


def run_scheme_isolated(
    benchmark: str,
    scheme: str | SchemeSpec,
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    retries: int = 1,
    use_cache: bool = False,
) -> RunMetrics | RunFailure:
    """Metrics-only view of :func:`run_cell_isolated`."""
    outcome = run_cell_isolated(
        benchmark, scheme, machine, references, seed, retries, use_cache
    )
    if isinstance(outcome, RunFailure):
        return outcome
    return outcome.metrics


def run_benchmark_resilient(
    benchmark: str,
    schemes: list[str],
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    retries: int = 1,
    use_cache: bool = False,
) -> tuple[dict[str, RunMetrics], list[RunFailure]]:
    """Like :func:`run_benchmark`, but failures yield partial results.

    Returns ``(results, failures)``: every scheme that completed (possibly
    after a retry) lands in ``results``; the rest are described in
    ``failures`` in submission order.
    """
    cells, failures = run_benchmark_cells(
        benchmark,
        schemes,
        machine,
        references,
        seed,
        keep_going=True,
        retries=retries,
        use_cache=use_cache,
    )
    return {scheme: cell.metrics for scheme, cell in cells.items()}, failures
