"""The paper's reported numbers, as data.

Everything the evaluation text states quantitatively, keyed so the
benchmark harness can print paper-vs-measured deltas mechanically (the
per-benchmark bar heights are not recoverable from the text, so this
module carries the averages and the qualitative claims the text commits
to).  Sections refer to the ISCA 2005 paper.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PAPER_AVERAGES", "PaperClaim", "PAPER_CLAIMS", "check_claims"]

#: figure id -> series -> paper's average value (fractions).
PAPER_AVERAGES: dict[str, dict[str, float]] = {
    # Section 6.1: "The average prediction rate is 82%" (256KB L2, 8B instr)
    "Figure 7": {"Pred": 0.82},
    # "The average prediction rate is 80% compared to 57% for a 128KB
    # sequence number cache" (1MB L2)
    "Figure 8": {"Pred": 0.80, "128K_cache": 0.57},
    # Section 8: "The average prediction rate of two-level prediction is
    # almost 96% with a 256KB L2 and 95% with 1MB"; context approaches 99%.
    "Figure 12": {"Regular": 0.82, "Two_Level": 0.96, "Context": 0.99},
    "Figure 13": {"Regular": 0.80, "Two_Level": 0.95, "Context": 0.99},
}


@dataclass(frozen=True)
class PaperClaim:
    """A qualitative, checkable statement from the evaluation text."""

    section: str
    text: str
    check: str  # name of the checker in _CHECKERS


PAPER_CLAIMS = (
    PaperClaim(
        "6.1",
        "prediction rate higher than that of a 128KB or a 512KB sequence "
        "number cache (256KB L2)",
        "pred_beats_caches_fig7",
    ),
    PaperClaim(
        "6.2",
        "for every benchmark, OTP prediction outperforms a 128KB sequence "
        "number cache (normalized IPC)",
        "pred_beats_128k_everywhere_fig10",
    ),
    PaperClaim(
        "6.2",
        "for average IPC, OTP prediction even performs better than a very "
        "large 512KB sequence number cache",
        "pred_beats_512k_average_fig10",
    ),
    PaperClaim(
        "8",
        "for most benchmarks, context-based prediction outperforms "
        "two-level prediction",
        "context_beats_two_level_mostly_fig12",
    ),
    PaperClaim(
        "8",
        "the prediction rate using a large L2 is often smaller than with a "
        "small L2, but the absolute number of predictions is lower",
        "fewer_predictions_at_1m_fig14",
    ),
)


def _avg(series: dict[str, float]) -> float:
    return sum(series.values()) / len(series) if series else 0.0


def _pred_beats_caches_fig7(figures) -> bool:
    series = figures["Figure 7"].series
    pred = _avg(series["Pred"])
    return pred > _avg(series["128K_cache"]) and pred > _avg(series["512K_cache"])


def _pred_beats_128k_everywhere_fig10(figures) -> bool:
    series = figures["Figure 10"].series
    return all(
        series["Pred"][b] > series["Seq_Cache_128K"][b] for b in series["Pred"]
    )


def _pred_beats_512k_average_fig10(figures) -> bool:
    series = figures["Figure 10"].series
    return _avg(series["Pred"]) > _avg(series["Seq_Cache_512K"])


def _context_beats_two_level_mostly_fig12(figures) -> bool:
    series = figures["Figure 12"].series
    wins = sum(
        series["Context"][b] >= series["Two_Level"][b] for b in series["Context"]
    )
    return wins > len(series["Context"]) / 2


def _fewer_predictions_at_1m_fig14(figures) -> bool:
    series = figures["Figure 14"].series
    return _avg(series["L2_1M"]) < _avg(series["L2_256K"])


_CHECKERS = {
    "pred_beats_caches_fig7": _pred_beats_caches_fig7,
    "pred_beats_128k_everywhere_fig10": _pred_beats_128k_everywhere_fig10,
    "pred_beats_512k_average_fig10": _pred_beats_512k_average_fig10,
    "context_beats_two_level_mostly_fig12": _context_beats_two_level_mostly_fig12,
    "fewer_predictions_at_1m_fig14": _fewer_predictions_at_1m_fig14,
}


def check_claims(figures: dict) -> list[tuple[PaperClaim, bool]]:
    """Evaluate every claim against measured figure results.

    ``figures`` maps figure ids ("Figure 7", ...) to
    :class:`~repro.experiments.report.FigureResult` objects; claims whose
    figures are missing are skipped.
    """
    outcomes = []
    for claim in PAPER_CLAIMS:
        checker = _CHECKERS[claim.check]
        try:
            outcomes.append((claim, bool(checker(figures))))
        except KeyError:
            continue
    return outcomes
