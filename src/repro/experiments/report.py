"""Rendering and comparison helpers for experiment results.

Every figure function in :mod:`repro.experiments.figures` returns a
:class:`FigureResult`: named series over the 14 benchmarks plus an average
column, mirroring the bar charts in the paper.  :func:`render_figure`
prints the same rows the paper plots; :func:`compare_to_paper` computes the
deltas EXPERIMENTS.md records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "FigureResult",
    "render_figure",
    "render_bars",
    "series_average",
    "geometric_mean",
    "compare_to_paper",
]


@dataclass
class FigureResult:
    """One reproduced table/figure: series-name -> benchmark -> value."""

    figure_id: str
    title: str
    series: dict[str, dict[str, float]]
    unit: str = "rate"
    notes: str = ""
    metadata: dict = field(default_factory=dict)

    def benchmarks(self) -> list[str]:
        names: list[str] = []
        for values in self.series.values():
            for name in values:
                if name not in names:
                    names.append(name)
        return names

    def average(self, series_name: str) -> float:
        return series_average(self.series[series_name])


def series_average(values: dict[str, float]) -> float:
    """Arithmetic mean over benchmarks (what the paper's Average bar shows)."""
    if not values:
        return 0.0
    return sum(values.values()) / len(values)


def geometric_mean(values: dict[str, float]) -> float:
    """Geometric mean (robust for normalized-IPC style ratios)."""
    if not values:
        return 0.0
    positives = [v for v in values.values() if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def render_figure(result: FigureResult, width: int = 9) -> str:
    """ASCII rendering: benchmarks as rows, series as columns."""
    series_names = list(result.series)
    header = f"{result.figure_id}: {result.title}"
    lines = [header, "=" * len(header)]
    name_width = max([len(b) for b in result.benchmarks()] + [len("Average"), 9])
    column_headers = "".join(f"{name[:width]:>{width + 1}}" for name in series_names)
    lines.append(f"{'benchmark':<{name_width}}{column_headers}")
    for benchmark in result.benchmarks():
        row = f"{benchmark:<{name_width}}"
        for name in series_names:
            value = result.series[name].get(benchmark)
            row += f"{value:>{width + 1}.3f}" if value is not None else " " * (width + 1)
        lines.append(row)
    average_row = f"{'Average':<{name_width}}"
    for name in series_names:
        average_row += f"{result.average(name):>{width + 1}.3f}"
    lines.append(average_row)
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def render_bars(result: FigureResult, width: int = 40) -> str:
    """ASCII bar chart: one row per (benchmark, series) pair.

    Mirrors the grouped-bar presentation of the paper's figures in a
    terminal, scaled to the largest value in the result.
    """
    peak = max(
        (value for values in result.series.values() for value in values.values()),
        default=0.0,
    )
    if peak <= 0:
        peak = 1.0
    name_width = max(
        [len(b) for b in result.benchmarks()] + [1]
    )
    series_width = max([len(s) for s in result.series] + [1])
    lines = [f"{result.figure_id}: {result.title}"]
    for benchmark in result.benchmarks():
        for index, (series_name, values) in enumerate(result.series.items()):
            value = values.get(benchmark)
            if value is None:
                continue
            bar = "#" * max(0, round(value / peak * width))
            label = benchmark if index == 0 else ""
            lines.append(
                f"{label:<{name_width}} {series_name:<{series_width}} "
                f"|{bar:<{width}}| {value:.3f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def compare_to_paper(
    measured: dict[str, float], paper: dict[str, float]
) -> list[tuple[str, float, float, float]]:
    """Rows of (label, paper value, measured value, delta) for EXPERIMENTS.md."""
    rows = []
    for label, expected in paper.items():
        actual = measured.get(label)
        if actual is None:
            continue
        rows.append((label, expected, actual, actual - expected))
    return rows
