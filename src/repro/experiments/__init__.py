"""Experiment harness: machine configs, scheme runner, figures, reporting."""

from repro.experiments.cache import (
    ResultCache,
    code_fingerprint,
    default_cache,
    reset_default_cache,
)
from repro.experiments.config import (
    MachineConfig,
    PredictionConfig,
    TABLE1_1M,
    TABLE1_256K,
    table1_rows,
)
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.parallel import (
    default_jobs,
    parallel_map,
    run_benchmark_cells_parallel,
    run_benchmark_parallel,
    run_grid_cells,
    run_seeds,
)
from repro.experiments.paper_data import PAPER_AVERAGES, PAPER_CLAIMS, check_claims
from repro.experiments.report import (
    FigureResult,
    compare_to_paper,
    geometric_mean,
    render_bars,
    render_figure,
    series_average,
)
from repro.experiments.stats import (
    METRICS,
    SeedSummary,
    metric_across_seeds,
    summarize,
)
from repro.experiments.sweep import SweepResult, run_grid
from repro.experiments.runner import (
    CellResult,
    SCHEMES,
    SchemeSpec,
    apply_preseed,
    collect_cell_snapshot,
    default_references,
    get_miss_trace,
    make_controller,
    run_benchmark,
    run_benchmark_cells,
    run_cell,
    run_scheme,
)

__all__ = [
    "ResultCache",
    "code_fingerprint",
    "default_cache",
    "reset_default_cache",
    "default_jobs",
    "parallel_map",
    "run_benchmark_cells_parallel",
    "run_benchmark_parallel",
    "run_grid_cells",
    "run_seeds",
    "MachineConfig",
    "PredictionConfig",
    "TABLE1_1M",
    "TABLE1_256K",
    "table1_rows",
    "ALL_FIGURES",
    "PAPER_AVERAGES",
    "PAPER_CLAIMS",
    "check_claims",
    "FigureResult",
    "compare_to_paper",
    "geometric_mean",
    "render_bars",
    "render_figure",
    "series_average",
    "METRICS",
    "SeedSummary",
    "metric_across_seeds",
    "summarize",
    "SweepResult",
    "run_grid",
    "CellResult",
    "SCHEMES",
    "SchemeSpec",
    "apply_preseed",
    "collect_cell_snapshot",
    "default_references",
    "get_miss_trace",
    "make_controller",
    "run_benchmark",
    "run_benchmark_cells",
    "run_cell",
    "run_scheme",
]
