"""On-disk experiment cache: content-addressed RunMetrics and miss traces.

Every grid cell the runner executes is a pure function of
``(machine config, scheme spec, workload spec, references, seed)`` *and* of
the simulator's source code.  This module hashes exactly that tuple — the
code enters through :func:`code_fingerprint`, a digest of every ``.py``
file in the ``repro`` package — into a content key, and stores the
resulting :class:`~repro.cpu.core.RunMetrics` as JSON under
``.repro-cache/results/``.  Re-rendering a figure after an edit that does
not touch package sources is then pure cache hits; any simulator change
rotates the fingerprint and silently invalidates everything it could have
affected.

A second tier under ``.repro-cache/traces/`` memoizes the scheme-
independent L2 miss traces (pickled), so a grid extended with new schemes —
or a different process in a parallel sweep — reuses each benchmark's
one-off hierarchy simulation instead of regenerating it.

Layout and controls::

    .repro-cache/
      results/<2-char shard>/<sha256>.json
      traces/<2-char shard>/<sha256>.pkl
      quarantine/<tier>/<original name>    corrupt entries moved aside
      quarantine/log.jsonl                 one line per quarantined entry
      manifest-<sweep key>.jsonl           supervised-sweep checkpoints

    REPRO_CACHE_DIR   override the cache root (default ./.repro-cache)
    REPRO_NO_CACHE    any non-empty value disables reads and writes

**Self-healing.**  Every entry carries a content digest written at store
time (a ``digest`` field in result JSON, a leading digest line in trace
pickles).  Loads verify the digest; a truncated, tampered or unparsable
entry is *quarantined* — moved to ``quarantine/`` with the reason appended
to ``quarantine/log.jsonl`` (size-capped: only the newest
``$REPRO_QUARANTINE_LOG_MAX`` lines are retained) — counted, logged, and
treated as a miss, so the caller transparently recomputes and the next
store writes a clean entry.  ``repro cache verify [--repair]`` runs the
same check over the whole cache offline.

The CLI exposes ``repro cache stats`` / ``repro cache clear`` /
``repro cache verify`` and a ``--no-cache`` flag on the commands that
consult the cache.  Library entry points default to *not* caching
(`use_cache=False`) so tests and embedders stay hermetic unless they opt
in.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
from pathlib import Path

from repro.cpu.core import RunMetrics

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_DISABLE_ENV",
    "QUARANTINE_LOG_MAX_ENV",
    "quarantine_log_max",
    "code_fingerprint",
    "result_key",
    "trace_key",
    "CorruptEntry",
    "ResultCache",
    "default_cache",
    "reset_default_cache",
]

_LOG = logging.getLogger("repro.cache")

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_DISABLE_ENV = "REPRO_NO_CACHE"
QUARANTINE_LOG_MAX_ENV = "REPRO_QUARANTINE_LOG_MAX"
_DEFAULT_DIRNAME = ".repro-cache"
_DEFAULT_QUARANTINE_LOG_MAX = 512


def quarantine_log_max() -> int:
    """Retained ``quarantine/log.jsonl`` entries (size-capped rotation).

    The log grows by one line per quarantined entry and — unrotated —
    without bound across campaigns.  ``$REPRO_QUARANTINE_LOG_MAX``
    overrides the default cap; values < 1 are clamped to 1.
    """
    raw = os.environ.get(QUARANTINE_LOG_MAX_ENV)
    try:
        value = int(raw) if raw else _DEFAULT_QUARANTINE_LOG_MAX
    except ValueError:
        value = _DEFAULT_QUARANTINE_LOG_MAX
    return max(1, value)

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Digest of every Python source file in the ``repro`` package.

    Computed once per process (the sources cannot change under a running
    simulation that already imported them).  File order is path-sorted so
    the digest is stable across filesystems.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def _canonical(value) -> object:
    """Reduce config objects to JSON-stable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def _digest(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(_canonical(payload), sort_keys=True).encode()
    ).hexdigest()


def result_key(benchmark: str, spec, machine, references: int, seed: int) -> str:
    """Content key for one (benchmark, scheme, machine, refs, seed) cell."""
    return _digest(
        {
            "kind": "run-metrics",
            "benchmark": benchmark,
            "scheme": spec,
            "machine": machine,
            "references": references,
            "seed": seed,
            "code": code_fingerprint(),
        }
    )


def trace_key(benchmark: str, machine, references: int, seed: int) -> str:
    """Content key for one scheme-independent miss trace."""
    return _digest(
        {
            "kind": "miss-trace",
            "benchmark": benchmark,
            "machine": machine,
            "references": references,
            "seed": seed,
            "code": code_fingerprint(),
        }
    )


@dataclasses.dataclass
class CacheStats:
    """Per-process hit/miss counters for one :class:`ResultCache`."""

    result_hits: int = 0
    result_misses: int = 0
    result_stores: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    trace_stores: int = 0
    corrupt_entries: int = 0          # digest/parse failures seen on load
    quarantined_entries: int = 0      # corrupt entries moved aside
    fenced_rejects: int = 0           # stores refused by a fencing check

    @property
    def hit_rate(self) -> float:
        lookups = self.result_hits + self.result_misses
        return self.result_hits / lookups if lookups else 0.0


@dataclasses.dataclass(frozen=True)
class CorruptEntry:
    """One cache entry that failed verification (and why)."""

    tier: str
    path: str
    reason: str


class ResultCache:
    """Content-addressed store for run metrics and miss traces.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``$REPRO_CACHE_DIR`` or
        ``./.repro-cache``.
    enabled:
        Force-enable/disable; defaults to enabled unless
        ``$REPRO_NO_CACHE`` is set.  A disabled cache never touches disk.
    """

    def __init__(self, root: str | Path | None = None, enabled: bool | None = None):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or _DEFAULT_DIRNAME
        self.root = Path(root)
        if enabled is None:
            enabled = not os.environ.get(CACHE_DISABLE_ENV)
        self.enabled = enabled
        self.stats = CacheStats()

    # -- paths -----------------------------------------------------------------

    def _result_path(self, key: str) -> Path:
        return self.root / "results" / key[:2] / f"{key}.json"

    def _trace_path(self, key: str) -> Path:
        return self.root / "traces" / key[:2] / f"{key}.pkl"

    # -- integrity -------------------------------------------------------------

    @staticmethod
    def _payload_digest(payload: dict) -> str:
        """Digest of a result payload *without* its ``digest`` field."""
        body = {k: v for k, v in payload.items() if k != "digest"}
        return hashlib.sha256(
            json.dumps(body, sort_keys=True).encode()
        ).hexdigest()

    def _load_result_payload(self, path: Path) -> dict:
        """Parse + digest-verify one result entry; raises ValueError."""
        raw = path.read_text()
        if not raw.strip():
            raise ValueError("empty entry")
        payload = json.loads(raw)
        if not isinstance(payload, dict) or "metrics" not in payload:
            raise ValueError("not a result entry (no metrics)")
        digest = payload.get("digest")
        if digest is None:
            raise ValueError("entry predates digests (no digest field)")
        if digest != self._payload_digest(payload):
            raise ValueError("digest mismatch (truncated or tampered)")
        return payload

    def _load_trace_blob(self, path: Path) -> bytes:
        """Read + digest-verify one trace entry's pickle bytes."""
        raw = path.read_bytes()
        header, sep, blob = raw.partition(b"\n")
        if not sep or len(header) != 64:
            raise ValueError("entry predates digests (no digest header)")
        if header.decode("ascii", "replace") != hashlib.sha256(blob).hexdigest():
            raise ValueError("digest mismatch (truncated or tampered)")
        return blob

    @property
    def _quarantine_log(self) -> Path:
        return self.root / "quarantine" / "log.jsonl"

    def quarantine_log_entries(self) -> int:
        """Lines currently retained in ``quarantine/log.jsonl``."""
        try:
            with self._quarantine_log.open() as handle:
                return sum(1 for line in handle if line.strip())
        except OSError:
            return 0

    def _rotate_quarantine_log(self, cap: int) -> None:
        """Keep only the newest ``cap`` log lines (atomic rewrite)."""
        log = self._quarantine_log
        lines = [line for line in log.read_text().splitlines() if line.strip()]
        if len(lines) <= cap:
            return
        tmp = log.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text("\n".join(lines[-cap:]) + "\n")
        os.replace(tmp, log)

    def _quarantine(self, tier: str, path: Path, reason: str) -> None:
        """Move a corrupt entry aside and record why, never raising."""
        self.stats.corrupt_entries += 1
        _LOG.warning("corrupt cache entry %s: %s", path, reason)
        try:
            destination = self.root / "quarantine" / tier / path.name
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
            with self._quarantine_log.open("a") as handle:
                handle.write(
                    json.dumps(
                        {"tier": tier, "entry": path.name, "reason": reason},
                        sort_keys=True,
                    )
                    + "\n"
                )
            self._rotate_quarantine_log(quarantine_log_max())
            self.stats.quarantined_entries += 1
        except OSError:
            # Quarantine is best-effort: a vanished file or read-only cache
            # must not turn a recoverable miss into a crash.
            pass

    # -- results ---------------------------------------------------------------

    def lookup_result(self, key: str) -> RunMetrics | None:
        """The cached metrics for ``key``, or None."""
        if not self.enabled:
            return None
        path = self._result_path(key)
        try:
            payload = self._load_result_payload(path)
            metrics = RunMetrics(**payload["metrics"])
        except FileNotFoundError:
            self.stats.result_misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as err:
            # Corrupt entry: quarantine it and treat as a miss so the
            # caller recomputes and the next store writes a clean entry.
            self._quarantine("results", path, str(err))
            self.stats.result_misses += 1
            return None
        self.stats.result_hits += 1
        return metrics

    def lookup_cell(self, key: str):
        """The cached ``(metrics, snapshot)`` pair for ``key``, or None.

        Entries written before snapshots existed (or by
        :meth:`store_result` without one) count as misses here — the code
        fingerprint in the key already rotates them out in practice, but a
        hand-planted metrics-only entry must not surface as a snapshotless
        cell.  Corrupt or truncated entries are quarantined and count as
        misses, never as crashes.
        """
        if not self.enabled:
            return None
        from repro.telemetry.snapshot import MetricsSnapshot

        path = self._result_path(key)
        try:
            payload = self._load_result_payload(path)
        except FileNotFoundError:
            self.stats.result_misses += 1
            return None
        except (OSError, ValueError, TypeError) as err:
            self._quarantine("results", path, str(err))
            self.stats.result_misses += 1
            return None
        try:
            metrics = RunMetrics(**payload["metrics"])
            snapshot = MetricsSnapshot.from_dict(payload["snapshot"])
        except (ValueError, KeyError, TypeError):
            # Digest-clean but snapshotless (metrics-only store): a plain
            # miss, not corruption.
            self.stats.result_misses += 1
            return None
        self.stats.result_hits += 1
        return metrics, snapshot

    def store_result(
        self, key: str, metrics: RunMetrics, snapshot=None, fence=None
    ) -> bool:
        """Persist one cell's metrics (and telemetry snapshot) under its key.

        ``fence`` is an optional zero-argument callable consulted
        immediately before the write (the fabric passes a fencing-token
        check here): when it returns falsy the store is *refused* —
        counted in ``stats.fenced_rejects`` — so a resurrected zombie
        worker whose lease was taken over can never clobber the current
        owner's entry.  Returns whether the entry was written.
        """
        if not self.enabled:
            return False
        path = self._result_path(key)
        payload = {"metrics": dataclasses.asdict(metrics)}
        if snapshot is not None:
            payload["snapshot"] = snapshot.to_dict()
        payload["digest"] = self._payload_digest(payload)
        data = json.dumps(payload, sort_keys=True).encode()
        if fence is not None and not fence():
            self.stats.fenced_rejects += 1
            return False
        self._write_atomic(path, data)
        self.stats.result_stores += 1
        return True

    # -- traces ----------------------------------------------------------------

    def lookup_trace(self, key: str):
        """The cached ``(miss_trace, preseed)`` pair for ``key``, or None."""
        if not self.enabled:
            return None
        path = self._trace_path(key)
        try:
            blob = self._load_trace_blob(path)
            pair = pickle.loads(blob)
        except FileNotFoundError:
            self.stats.trace_misses += 1
            return None
        except (OSError, ValueError, pickle.UnpicklingError, EOFError,
                AttributeError) as err:
            self._quarantine("traces", path, str(err))
            self.stats.trace_misses += 1
            return None
        self.stats.trace_hits += 1
        return pair

    def store_trace(self, key: str, miss_trace, preseed) -> None:
        """Persist one benchmark's miss trace + preseed (digest-prefixed)."""
        if not self.enabled:
            return
        blob = pickle.dumps((miss_trace, preseed))
        header = hashlib.sha256(blob).hexdigest().encode("ascii") + b"\n"
        self._write_atomic(self._trace_path(key), header + blob)
        self.stats.trace_stores += 1

    # -- verification ----------------------------------------------------------

    def verify(self, repair: bool = False) -> dict:
        """Digest-check every entry; optionally quarantine the corrupt ones.

        Returns ``{"checked": n, "ok": n, "corrupt": [CorruptEntry, ...],
        "repaired": n}``.  Without ``repair`` the corrupt entries are left
        in place (report-only); with it they move to ``quarantine/`` just
        as a failed load would move them.
        """
        corrupt: list[CorruptEntry] = []
        checked = 0
        for tier, loader in (
            ("results", self._load_result_payload),
            ("traces", self._load_trace_blob),
        ):
            base = self.root / tier
            if not base.is_dir():
                continue
            for path in sorted(p for p in base.rglob("*") if p.is_file()):
                checked += 1
                try:
                    loader(path)
                except (OSError, ValueError, KeyError, TypeError) as err:
                    corrupt.append(CorruptEntry(tier, str(path), str(err)))
                    if repair:
                        self._quarantine(tier, path, str(err))
        return {
            "checked": checked,
            "ok": checked - len(corrupt),
            "corrupt": corrupt,
            "repaired": len(corrupt) if repair else 0,
        }

    # -- maintenance -----------------------------------------------------------

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        """Write via rename so concurrent workers never see torn entries."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def _entry_paths(self):
        for tier in ("results", "traces", "quarantine"):
            base = self.root / tier
            if base.is_dir():
                yield from (p for p in base.rglob("*") if p.is_file())
        if self.root.is_dir():
            yield from sorted(self.root.glob("manifest-*.jsonl"))

    def clear(self) -> int:
        """Delete every cache entry (including quarantine and manifests)."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def disk_stats(self) -> dict:
        """Entry counts and byte totals per tier (for ``repro cache stats``).

        Robust against concurrent mutation: a file deleted between listing
        and ``stat`` is simply skipped.
        """
        stats = {"root": str(self.root), "fingerprint": code_fingerprint()[:16]}
        for tier in ("results", "traces", "quarantine"):
            base = self.root / tier
            files = (
                [p for p in base.rglob("*") if p.is_file()] if base.is_dir() else []
            )
            total = 0
            counted = 0
            for path in files:
                try:
                    total += path.stat().st_size
                    counted += 1
                except OSError:
                    continue
            stats[tier] = {"entries": counted, "bytes": total}
        stats["quarantine_log"] = {
            "entries": self.quarantine_log_entries(),
            "cap": quarantine_log_max(),
        }
        return stats


_DEFAULT_CACHE: ResultCache | None = None


def default_cache() -> ResultCache:
    """The process-wide cache honoring the environment controls."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = ResultCache()
    return _DEFAULT_CACHE


def reset_default_cache() -> None:
    """Forget the process-wide cache (tests use this to re-read the env)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = None
