"""One entry point per table/figure of the paper's evaluation.

Each ``figure*`` function sweeps the 14 SPEC2000-like workloads through the
schemes that figure compares and returns a
:class:`~repro.experiments.report.FigureResult` whose series mirror the
paper's bars:

========  ===========================================================
Fig 7/8   Sequence-number hit rates: 128K/512K caches vs prediction
Fig 9     Hit breakdown with a 32KB cache + prediction combined
Fig 10/11 Normalized IPC: 4K/128K/512K caches vs prediction
Fig 12/13 Hit rates: two-level vs context vs regular prediction
Fig 14    Absolute number of predictions, 256KB vs 1MB L2
Fig 15/16 Normalized IPC: two-level vs context vs regular
========  ===========================================================

Figures ending in an even number (8/11/13/16 companions) use the 1MB-L2
machine of Table 1; the others the 256KB machine.  ``references`` scales
the trace length (the paper's 8-billion-instruction windows are scaled to
trace-driven windows; see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments.config import MachineConfig, TABLE1_1M, TABLE1_256K, table1_rows
from repro.experiments.report import FigureResult
from repro.experiments.sweep import run_grid
from repro.workloads.spec import SPEC_BENCHMARKS

__all__ = [
    "table1",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "ALL_FIGURES",
]


def table1() -> FigureResult:
    """Table 1 — machine parameters (configuration, not an experiment)."""
    rows = table1_rows()
    return FigureResult(
        figure_id="Table 1",
        title="Processor model parameters",
        series={},
        unit="text",
        metadata={"rows": rows},
    )


def _hit_rate_figure(
    figure_id: str,
    machine: MachineConfig,
    references: int | None,
    seed: int,
    jobs: int | None,
    use_cache: bool,
) -> FigureResult:
    grid = run_grid(
        list(SPEC_BENCHMARKS),
        ["seqcache_128k", "seqcache_512k", "pred_regular"],
        machine=machine,
        references=references,
        seed=seed,
        jobs=jobs,
        use_cache=use_cache,
    )
    series: dict[str, dict[str, float]] = {
        "128K_cache": {},
        "512K_cache": {},
        "Pred": {},
    }
    for benchmark in SPEC_BENCHMARKS:
        series["128K_cache"][benchmark] = grid.metrics(
            benchmark, "seqcache_128k"
        ).seqcache_hit_rate
        series["512K_cache"][benchmark] = grid.metrics(
            benchmark, "seqcache_512k"
        ).seqcache_hit_rate
        series["Pred"][benchmark] = grid.metrics(
            benchmark, "pred_regular"
        ).prediction_rate
    return FigureResult(
        figure_id=figure_id,
        title=f"Sequence number hit rates, {machine.l2_kb}KB L2",
        series=series,
        notes="Pred = adaptive regular OTP prediction rate",
    )


def figure7(
    references: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> FigureResult:
    """Fig. 7 — sequence-number hit rates, 256KB L2, long window."""
    return _hit_rate_figure("Figure 7", TABLE1_256K, references, seed, jobs, use_cache)


def figure8(
    references: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> FigureResult:
    """Fig. 8 — sequence-number hit rates, 1MB L2, long window."""
    return _hit_rate_figure("Figure 8", TABLE1_1M, references, seed, jobs, use_cache)


def figure9(
    references: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> FigureResult:
    """Fig. 9 — breakdown of hits: 32KB sequence-number cache + prediction.

    Stacks, per benchmark, the fraction of fetches covered by prediction
    only, by the cache only, and by both (as fractions of all fetches).
    """
    grid = run_grid(
        list(SPEC_BENCHMARKS),
        ["pred_plus_cache_32k"],
        machine=TABLE1_256K,
        references=references,
        seed=seed,
        jobs=jobs,
        use_cache=use_cache,
    )
    series: dict[str, dict[str, float]] = {
        "Pred_Hit": {},
        "Seq_Only": {},
        "Both_Hit": {},
    }
    for benchmark in SPEC_BENCHMARKS:
        metrics = grid.metrics(benchmark, "pred_plus_cache_32k")
        fetches = max(1, metrics.fetches)
        series["Pred_Hit"][benchmark] = metrics.class_pred_only / fetches
        series["Seq_Only"][benchmark] = metrics.class_cache_only / fetches
        series["Both_Hit"][benchmark] = metrics.class_both / fetches
    return FigureResult(
        figure_id="Figure 9",
        title="Breakdown of sequence-number coverage, 32KB cache + prediction",
        series=series,
        notes="fractions of all L2-miss fetches",
    )


_IPC_CACHE_SCHEMES = [
    "oracle",
    "seqcache_4k",
    "seqcache_128k",
    "seqcache_512k",
    "pred_regular",
]


def _ipc_cache_figure(
    figure_id: str,
    machine: MachineConfig,
    references: int | None,
    seed: int,
    jobs: int | None,
    use_cache: bool,
) -> FigureResult:
    grid = run_grid(
        list(SPEC_BENCHMARKS),
        _IPC_CACHE_SCHEMES,
        machine=machine,
        references=references,
        seed=seed,
        jobs=jobs,
        use_cache=use_cache,
    )
    series: dict[str, dict[str, float]] = {
        "Seq_Cache_4K": {},
        "Seq_Cache_128K": {},
        "Seq_Cache_512K": {},
        "Pred": {},
    }
    labels = {
        "Seq_Cache_4K": "seqcache_4k",
        "Seq_Cache_128K": "seqcache_128k",
        "Seq_Cache_512K": "seqcache_512k",
        "Pred": "pred_regular",
    }
    for benchmark in SPEC_BENCHMARKS:
        oracle = grid.metrics(benchmark, "oracle")
        for label, scheme in labels.items():
            series[label][benchmark] = grid.metrics(
                benchmark, scheme
            ).normalized_ipc(oracle)
    return FigureResult(
        figure_id=figure_id,
        title=f"Normalized IPC: sequence-number caches vs OTP prediction, {machine.l2_kb}KB L2",
        series=series,
        unit="normalized IPC (oracle = 1.0)",
    )


def figure10(
    references: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> FigureResult:
    """Fig. 10 — normalized IPC, caches vs prediction, 256KB L2."""
    return _ipc_cache_figure("Figure 10", TABLE1_256K, references, seed, jobs, use_cache)


def figure11(
    references: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> FigureResult:
    """Fig. 11 — normalized IPC, caches vs prediction, 1MB L2."""
    return _ipc_cache_figure("Figure 11", TABLE1_1M, references, seed, jobs, use_cache)


_OPT_SCHEMES = ["pred_regular", "pred_two_level", "pred_context"]


def _opt_hit_figure(
    figure_id: str,
    machine: MachineConfig,
    references: int | None,
    seed: int,
    jobs: int | None,
    use_cache: bool,
) -> FigureResult:
    grid = run_grid(
        list(SPEC_BENCHMARKS),
        _OPT_SCHEMES,
        machine=machine,
        references=references,
        seed=seed,
        jobs=jobs,
        use_cache=use_cache,
    )
    series: dict[str, dict[str, float]] = {
        "Regular": {},
        "Two_Level": {},
        "Context": {},
    }
    for benchmark in SPEC_BENCHMARKS:
        series["Regular"][benchmark] = grid.metrics(
            benchmark, "pred_regular"
        ).prediction_rate
        series["Two_Level"][benchmark] = grid.metrics(
            benchmark, "pred_two_level"
        ).prediction_rate
        series["Context"][benchmark] = grid.metrics(
            benchmark, "pred_context"
        ).prediction_rate
    return FigureResult(
        figure_id=figure_id,
        title=f"Hit rate: two-level vs context-based vs regular, {machine.l2_kb}KB L2",
        series=series,
    )


def figure12(
    references: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> FigureResult:
    """Fig. 12 — optimized prediction hit rates, 256KB L2."""
    return _opt_hit_figure("Figure 12", TABLE1_256K, references, seed, jobs, use_cache)


def figure13(
    references: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> FigureResult:
    """Fig. 13 — optimized prediction hit rates, 1MB L2."""
    return _opt_hit_figure("Figure 13", TABLE1_1M, references, seed, jobs, use_cache)


def figure14(
    references: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> FigureResult:
    """Fig. 14 — absolute number of predictions, 256KB vs 1MB L2.

    Larger L2s filter more misses, so fewer predictions are made (the
    paper's explanation for why prediction *rates* can look lower at 1MB
    while absolute mispredictions shrink).
    """
    series: dict[str, dict[str, float]] = {"L2_256K": {}, "L2_1M": {}}
    for label, machine in (("L2_256K", TABLE1_256K), ("L2_1M", TABLE1_1M)):
        grid = run_grid(
            list(SPEC_BENCHMARKS),
            ["pred_regular"],
            machine=machine,
            references=references,
            seed=seed,
            jobs=jobs,
            use_cache=use_cache,
        )
        for benchmark in SPEC_BENCHMARKS:
            metrics = grid.metrics(benchmark, "pred_regular")
            series[label][benchmark] = float(metrics.prediction_lookups)
    return FigureResult(
        figure_id="Figure 14",
        title="Number of predictions, 256KB vs 1MB L2",
        series=series,
        unit="count",
    )


def _opt_ipc_figure(
    figure_id: str,
    machine: MachineConfig,
    references: int | None,
    seed: int,
    jobs: int | None,
    use_cache: bool,
) -> FigureResult:
    grid = run_grid(
        list(SPEC_BENCHMARKS),
        ["oracle"] + _OPT_SCHEMES,
        machine=machine,
        references=references,
        seed=seed,
        jobs=jobs,
        use_cache=use_cache,
    )
    series: dict[str, dict[str, float]] = {
        "Regular": {},
        "Two_Level": {},
        "Context": {},
    }
    for benchmark in SPEC_BENCHMARKS:
        oracle = grid.metrics(benchmark, "oracle")
        series["Regular"][benchmark] = grid.metrics(
            benchmark, "pred_regular"
        ).normalized_ipc(oracle)
        series["Two_Level"][benchmark] = grid.metrics(
            benchmark, "pred_two_level"
        ).normalized_ipc(oracle)
        series["Context"][benchmark] = grid.metrics(
            benchmark, "pred_context"
        ).normalized_ipc(oracle)
    return FigureResult(
        figure_id=figure_id,
        title=f"Normalized IPC: two-level vs context vs regular, {machine.l2_kb}KB L2",
        series=series,
        unit="normalized IPC (oracle = 1.0)",
    )


def figure15(
    references: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> FigureResult:
    """Fig. 15 — normalized IPC of the optimizations, 256KB L2."""
    return _opt_ipc_figure("Figure 15", TABLE1_256K, references, seed, jobs, use_cache)


def figure16(
    references: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
) -> FigureResult:
    """Fig. 16 — normalized IPC of the optimizations, 1MB L2."""
    return _opt_ipc_figure("Figure 16", TABLE1_1M, references, seed, jobs, use_cache)


ALL_FIGURES = {
    "table1": table1,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "figure15": figure15,
    "figure16": figure16,
}
