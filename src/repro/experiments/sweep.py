"""Grid sweeps over (benchmark x scheme) with tabular extraction.

The figure functions in :mod:`repro.experiments.figures` hard-wire the
paper's comparisons; this module is the general tool behind custom studies
(used by the ablation benches and the CLI): run a full grid once, then
slice any metric out of it as a :class:`~repro.experiments.report.FigureResult`
ready for rendering.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from repro.cpu.core import RunMetrics
from repro.experiments.config import MachineConfig, TABLE1_256K
from repro.experiments.parallel import run_grid_cells
from repro.experiments.report import FigureResult
from repro.experiments.runner import RunFailure
from repro.telemetry.snapshot import (
    MetricsSnapshot,
    SnapshotSeries,
    merge_snapshots,
)

__all__ = [
    "SWEEP_RESULT_SCHEMA",
    "SweepResult",
    "run_grid",
    "set_default_supervision",
    "reset_default_supervision",
]

SWEEP_RESULT_SCHEMA = "repro.sweep.result/v1"


@dataclass
class SweepResult:
    """All metrics of a (benchmark x scheme) grid.

    ``failures`` is non-empty only for grids run with ``keep_going=True``:
    each entry names a (benchmark, scheme) point that raised after
    retries — including its content-addressed cache key, so a follow-up
    run can retry exactly those cells — and the corresponding key is
    simply absent from ``results``.  ``supervision`` carries the
    supervisor's recovery counters when the grid ran under
    :func:`repro.experiments.supervisor.run_grid_supervised`.  ``fabric``
    carries the drain summary when the grid was executed by the
    distributed fabric (:func:`repro.fabric.drain_swarm`).
    """

    machine: str
    references: int | None
    results: dict[tuple[str, str], RunMetrics] = field(repr=False, default_factory=dict)
    failures: list[RunFailure] = field(default_factory=list)
    snapshots: dict[tuple[str, str], MetricsSnapshot] = field(
        repr=False, default_factory=dict
    )
    series: dict[tuple[str, str], SnapshotSeries] = field(
        repr=False, default_factory=dict
    )
    supervision: dict | None = None
    fabric: dict | None = None

    @property
    def complete(self) -> bool:
        """True when every requested grid point produced metrics."""
        return not self.failures

    def failed_cells(self) -> list[tuple[str, str, str]]:
        """``(benchmark, scheme, cell_key)`` for every failed grid point."""
        return [
            (failure.benchmark, failure.scheme, failure.cell_key)
            for failure in self.failures
        ]

    def snapshot(self, benchmark: str, scheme: str) -> MetricsSnapshot:
        return self.snapshots[(benchmark, scheme)]

    def cell_series(self, benchmark: str, scheme: str) -> SnapshotSeries:
        """The retention series of one cell (grids run with an interval)."""
        return self.series[(benchmark, scheme)]

    def merged_snapshot(self) -> MetricsSnapshot | None:
        """All cells' telemetry merged into one grid-total snapshot.

        Cells merge in sorted ``(benchmark, scheme)`` order; since each
        per-kind merge rule is commutative and associative, a parallel grid
        produces exactly the snapshot the serial loop would.  ``None`` for
        an empty grid.
        """
        if not self.snapshots:
            return None
        ordered = [self.snapshots[key] for key in sorted(self.snapshots)]
        return merge_snapshots(ordered)

    def benchmarks(self) -> list[str]:
        return list(dict.fromkeys(benchmark for benchmark, _ in self.results))

    def schemes(self) -> list[str]:
        return list(dict.fromkeys(scheme for _, scheme in self.results))

    def metrics(self, benchmark: str, scheme: str) -> RunMetrics:
        return self.results[(benchmark, scheme)]

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self, include_execution: bool = False) -> dict:
        """Versioned JSON-able form of the whole grid.

        Cells are keyed ``"benchmark/scheme"`` in sorted order.  Execution
        metadata (``supervision``/``fabric``) is excluded by default: it
        describes *how* the grid ran, not *what* it computed, and leaving
        it out makes serial, supervised, and fabric runs of the same spec
        serialize byte-identically (the service's result contract).
        """
        payload: dict = {
            "schema": SWEEP_RESULT_SCHEMA,
            "machine": self.machine,
            "references": self.references,
            "results": {
                f"{benchmark}/{scheme}": dataclasses.asdict(self.results[key])
                for key in sorted(self.results)
                for benchmark, scheme in [key]
            },
            "snapshots": {
                f"{benchmark}/{scheme}": self.snapshots[key].to_dict()
                for key in sorted(self.snapshots)
                for benchmark, scheme in [key]
            },
            "series": {
                f"{benchmark}/{scheme}": {
                    "interval": series.interval,
                    "meta": dict(series.meta),
                    "samples": [sample.to_dict() for sample in series.samples],
                }
                for key in sorted(self.series)
                for benchmark, scheme in [key]
                for series in [self.series[key]]
            },
            "failures": [dataclasses.asdict(failure) for failure in self.failures],
        }
        if include_execution:
            payload["supervision"] = self.supervision
            payload["fabric"] = self.fabric
        return payload

    def canonical_json(self, include_execution: bool = False) -> str:
        """Deterministic JSON text of :meth:`to_dict` (sorted keys, LF)."""
        return (
            json.dumps(
                self.to_dict(include_execution=include_execution),
                sort_keys=True,
                separators=(",", ": "),
            )
            + "\n"
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepResult":
        if payload.get("schema") != SWEEP_RESULT_SCHEMA:
            raise ValueError(
                f"not a sweep result (schema {payload.get('schema')!r})"
            )
        sweep = cls(machine=payload["machine"], references=payload["references"])
        for cell, metrics in payload.get("results", {}).items():
            benchmark, _, scheme = cell.partition("/")
            sweep.results[(benchmark, scheme)] = RunMetrics(**metrics)
        for cell, snapshot in payload.get("snapshots", {}).items():
            benchmark, _, scheme = cell.partition("/")
            sweep.snapshots[(benchmark, scheme)] = MetricsSnapshot.from_dict(snapshot)
        for cell, series in payload.get("series", {}).items():
            benchmark, _, scheme = cell.partition("/")
            sweep.series[(benchmark, scheme)] = SnapshotSeries(
                interval=series["interval"],
                meta=dict(series.get("meta", {})),
                samples=[
                    MetricsSnapshot.from_dict(sample)
                    for sample in series.get("samples", [])
                ],
            )
        sweep.failures = [
            RunFailure(**failure) for failure in payload.get("failures", [])
        ]
        sweep.supervision = payload.get("supervision")
        sweep.fabric = payload.get("fabric")
        return sweep

    def table(
        self, metric, title: str = "", normalize_to: str | None = None
    ) -> FigureResult:
        """Slice one metric into a renderable table.

        ``metric`` is a callable taking :class:`RunMetrics`; with
        ``normalize_to`` set to a scheme name, values are expressed as
        normalized IPC relative to that scheme's run (the paper's usual
        presentation, with ``normalize_to="oracle"``).
        """
        series: dict[str, dict[str, float]] = {}
        for (benchmark, scheme), metrics in self.results.items():
            if normalize_to is not None:
                if scheme == normalize_to:
                    continue
                reference = self.results.get((benchmark, normalize_to))
                if reference is None:
                    # Partial grid: the normalization run failed, so this
                    # benchmark's normalized column cannot be produced.
                    continue
                value = metrics.normalized_ipc(reference)
            else:
                value = metric(metrics)
            series.setdefault(scheme, {})[benchmark] = value
        return FigureResult(
            figure_id="sweep",
            title=title or f"{self.machine} sweep",
            series=series,
        )


# When set (by the CLI's --supervise/--resume flags, before it calls
# figure functions whose signatures don't carry engine options), run_grid
# routes through the supervised executor by default.
_DEFAULT_SUPERVISION: dict | None = None


def set_default_supervision(policy=None, resume: bool = False) -> None:
    """Make every subsequent :func:`run_grid` call supervised by default."""
    global _DEFAULT_SUPERVISION
    _DEFAULT_SUPERVISION = {"policy": policy, "resume": resume}


def reset_default_supervision() -> None:
    global _DEFAULT_SUPERVISION
    _DEFAULT_SUPERVISION = None


def run_grid(
    benchmarks: list[str],
    schemes: list[str],
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
    keep_going: bool = False,
    retries: int = 1,
    jobs: int | None = 1,
    use_cache: bool = False,
    series_interval: int = 0,
    supervise: bool | None = None,
    resume: bool = False,
    policy=None,
    chaos=None,
) -> SweepResult:
    """Run every (benchmark, scheme) combination, sharing miss traces.

    With ``keep_going`` set, each scheme runs behind an isolation boundary
    (retried ``retries`` times on failure); the sweep completes with
    whatever points succeeded and records the rest in
    :attr:`SweepResult.failures`.  Without it, the first error propagates
    (the historical behavior).

    ``jobs`` fans the grid out one benchmark per worker process (each
    worker still shares its benchmark's miss trace across schemes);
    results are identical to the serial run for the same seed.
    ``use_cache`` serves cells from / stores them into the on-disk
    result cache.  A positive ``series_interval`` additionally captures a
    per-cell :class:`~repro.telemetry.snapshot.SnapshotSeries` (cumulative
    snapshots every that many fetches) into :attr:`SweepResult.series`.

    ``supervise=True`` (or a process-wide default installed with
    :func:`set_default_supervision`) routes the grid through
    :func:`repro.experiments.supervisor.run_grid_supervised` — per-cell
    timeouts, crash retry, checkpoint manifest, ``resume`` — with
    identical results.
    """
    if supervise is None and _DEFAULT_SUPERVISION is not None:
        supervise = True
        policy = policy or _DEFAULT_SUPERVISION["policy"]
        resume = resume or _DEFAULT_SUPERVISION["resume"]
    if supervise:
        from repro.experiments.supervisor import run_grid_supervised

        return run_grid_supervised(
            benchmarks,
            schemes,
            machine=machine,
            references=references,
            seed=seed,
            keep_going=keep_going,
            jobs=jobs,
            use_cache=use_cache,
            series_interval=series_interval,
            policy=policy,
            chaos=chaos,
            resume=resume,
        )
    sweep = SweepResult(machine=machine.name, references=references)
    cells = run_grid_cells(
        benchmarks,
        schemes,
        machine=machine,
        references=references,
        seed=seed,
        keep_going=keep_going,
        retries=retries,
        jobs=jobs,
        use_cache=use_cache,
        series_interval=series_interval,
    )
    for benchmark, per_scheme, failures in cells:
        sweep.failures.extend(failures)
        for scheme, cell in per_scheme.items():
            sweep.results[(benchmark, scheme)] = cell.metrics
            sweep.snapshots[(benchmark, scheme)] = cell.snapshot
            if cell.series is not None:
                sweep.series[(benchmark, scheme)] = cell.series
    return sweep
