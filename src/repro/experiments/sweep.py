"""Grid sweeps over (benchmark x scheme) with tabular extraction.

The figure functions in :mod:`repro.experiments.figures` hard-wire the
paper's comparisons; this module is the general tool behind custom studies
(used by the ablation benches and the CLI): run a full grid once, then
slice any metric out of it as a :class:`~repro.experiments.report.FigureResult`
ready for rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.core import RunMetrics
from repro.experiments.config import MachineConfig, TABLE1_256K
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_benchmark

__all__ = ["SweepResult", "run_grid"]


@dataclass
class SweepResult:
    """All metrics of a (benchmark x scheme) grid."""

    machine: str
    references: int | None
    results: dict[tuple[str, str], RunMetrics] = field(repr=False, default_factory=dict)

    def benchmarks(self) -> list[str]:
        seen: list[str] = []
        for benchmark, _ in self.results:
            if benchmark not in seen:
                seen.append(benchmark)
        return seen

    def schemes(self) -> list[str]:
        seen: list[str] = []
        for _, scheme in self.results:
            if scheme not in seen:
                seen.append(scheme)
        return seen

    def metrics(self, benchmark: str, scheme: str) -> RunMetrics:
        return self.results[(benchmark, scheme)]

    def table(
        self, metric, title: str = "", normalize_to: str | None = None
    ) -> FigureResult:
        """Slice one metric into a renderable table.

        ``metric`` is a callable taking :class:`RunMetrics`; with
        ``normalize_to`` set to a scheme name, values are expressed as
        normalized IPC relative to that scheme's run (the paper's usual
        presentation, with ``normalize_to="oracle"``).
        """
        series: dict[str, dict[str, float]] = {}
        for (benchmark, scheme), metrics in self.results.items():
            if normalize_to is not None:
                if scheme == normalize_to:
                    continue
                reference = self.results[(benchmark, normalize_to)]
                value = metrics.normalized_ipc(reference)
            else:
                value = metric(metrics)
            series.setdefault(scheme, {})[benchmark] = value
        return FigureResult(
            figure_id="sweep",
            title=title or f"{self.machine} sweep",
            series=series,
        )


def run_grid(
    benchmarks: list[str],
    schemes: list[str],
    machine: MachineConfig = TABLE1_256K,
    references: int | None = None,
    seed: int = 1,
) -> SweepResult:
    """Run every (benchmark, scheme) combination, sharing miss traces."""
    sweep = SweepResult(machine=machine.name, references=references)
    for benchmark in benchmarks:
        per_scheme = run_benchmark(
            benchmark, schemes, machine=machine, references=references, seed=seed
        )
        for scheme, metrics in per_scheme.items():
            sweep.results[(benchmark, scheme)] = metrics
    return sweep
