"""Cryptographic substrate: AES, SHA-256, MACs, CTR mode, RNG, engine model.

Everything in this package is implemented from scratch (no external crypto
libraries).  The functional primitives (:class:`~repro.crypto.aes.AES`,
:class:`~repro.crypto.ctr.CtrMode`, the MACs) encrypt real bytes; the
:class:`~repro.crypto.engine.CryptoEngine` models *when* a pipelined hardware
implementation would deliver those results.
"""

from repro.crypto.aes import AES, BLOCK_SIZE, KEY_SIZES, set_vectorized, vectorized_enabled
from repro.crypto.ctr import CtrMode, make_counter_block, xor_bytes
from repro.crypto.engine import (
    CryptoEngine,
    CryptoEngineConfig,
    CryptoEngineStats,
    PadCache,
    PadCacheStats,
)
from repro.crypto.mac import CbcMac, HmacSha256, constant_time_equal
from repro.crypto.rng import HardwareRng
from repro.crypto.sha256 import Sha256, sha256

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "KEY_SIZES",
    "set_vectorized",
    "vectorized_enabled",
    "CtrMode",
    "make_counter_block",
    "xor_bytes",
    "CryptoEngine",
    "CryptoEngineConfig",
    "CryptoEngineStats",
    "PadCache",
    "PadCacheStats",
    "CbcMac",
    "HmacSha256",
    "constant_time_equal",
    "HardwareRng",
    "Sha256",
    "sha256",
]
