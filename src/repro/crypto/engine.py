"""Timing model of the pipelined AES crypto engine.

Table 1 of the paper specifies the engine: AES-256 (14 rounds plus an
initial and a final round), each round split into 6 pipeline stages of 1ns,
for a 96ns end-to-end latency.  Because the engine is *fully pipelined*, a
new 128-bit block can enter every stage-cycle; the whole point of OTP
prediction is to fill those otherwise-idle issue slots with speculative pad
computations while the memory fetch is in flight.

This module models exactly that: an issue port with a configurable initiation
interval and a fixed pipeline depth.  It does not perform cryptography (the
functional path lives in :mod:`repro.crypto.aes`); it accounts for *when*
pads become available and how speculative work steals slots from demand work.

It also hosts :class:`PadCache`, the functional analogue of the paper's
precomputed-pad buffer (Figure 5): a bounded memo of already-computed pads
keyed by ``(key_id, address, seqnum)``.  Pads are pure functions of that
triple, so memoized entries can never go stale; the cache turns repeated
probes of the same candidate — and re-fetches of an unchanged line — into
lookups instead of AES work.

All times are in CPU cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.telemetry.events import NULL_TRACER

__all__ = [
    "CryptoEngineConfig",
    "CryptoEngineStats",
    "CryptoEngine",
    "PadCacheStats",
    "PadCache",
]


@dataclass(frozen=True)
class CryptoEngineConfig:
    """Static parameters of the crypto engine.

    Defaults reproduce Table 1: 16 rounds x 6 stages x 1ns = 96ns at a
    1 GHz core clock (96 cycles), one block issued per cycle.
    """

    rounds: int = 16          # 14 AES-256 rounds + initial + final
    stages_per_round: int = 6
    stage_latency_ns: float = 1.0
    cpu_ghz: float = 1.0
    issue_interval: int = 1   # cycles between successive block issues

    @property
    def latency_ns(self) -> float:
        """End-to-end pipeline latency in nanoseconds."""
        return self.rounds * self.stages_per_round * self.stage_latency_ns

    @property
    def latency_cycles(self) -> int:
        """End-to-end pipeline latency in CPU cycles."""
        return max(1, round(self.latency_ns * self.cpu_ghz))


@dataclass
class CryptoEngineStats:
    """Counters accumulated by the engine over a run."""

    demand_blocks: int = 0
    speculative_blocks: int = 0
    queue_delay_cycles: int = 0
    busy_cycles: int = 0
    last_issue_time: int = field(default=0, repr=False)

    @property
    def total_blocks(self) -> int:
        """All blocks issued, demand plus speculative."""
        return self.demand_blocks + self.speculative_blocks

    def absorb(
        self,
        demand_blocks: int = 0,
        speculative_blocks: int = 0,
        queue_delay_cycles: int = 0,
        busy_cycles: int = 0,
        last_issue_time: int | None = None,
    ) -> None:
        """Fold a batch of issues into the counters.

        Batch entry point for the batched replay core, which accumulates
        per-epoch deltas instead of bumping these fields per issue.
        ``last_issue_time`` replaces (not adds to) the high-water mark;
        ``None`` leaves it untouched — the batch issued nothing.
        """
        self.demand_blocks += demand_blocks
        self.speculative_blocks += speculative_blocks
        self.queue_delay_cycles += queue_delay_cycles
        self.busy_cycles += busy_cycles
        if last_issue_time is not None:
            self.last_issue_time = last_issue_time

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of issue slots used over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    def publish(self, registry, prefix: str = "crypto.engine") -> None:
        """Export these counters into a telemetry registry under ``prefix``.

        ``occupancy`` is utilization measured to the last issue — the
        fraction of issue slots the run actually filled, the quantity the
        paper's engine-occupancy argument (Section 5.2) is about.
        """
        registry.counter(f"{prefix}.demand_blocks").inc(self.demand_blocks)
        registry.counter(f"{prefix}.speculative_blocks").inc(
            self.speculative_blocks
        )
        registry.counter(f"{prefix}.queue_delay_cycles").inc(
            self.queue_delay_cycles
        )
        registry.counter(f"{prefix}.busy_cycles").inc(self.busy_cycles)
        registry.gauge(f"{prefix}.occupancy").set(
            self.utilization(self.last_issue_time)
        )


class CryptoEngine:
    """Fully pipelined block-cipher engine with a single issue port.

    The engine keeps one piece of dynamic state: the earliest cycle at which
    the issue port is free.  Issuing a batch of ``count`` blocks at time
    ``now`` occupies ``count`` consecutive issue slots starting no earlier
    than ``now``; block *i* of the batch completes ``latency`` cycles after
    its own issue slot.
    """

    def __init__(self, config: CryptoEngineConfig | None = None):
        self.config = config or CryptoEngineConfig()
        self.stats = CryptoEngineStats()
        self._port_free_at = 0
        # Timeline instrumentation (attached by the controller): when a
        # live tracer is present, every issue stamps a pipeline-occupancy
        # counter sample; the null tracer keeps this a single bool check.
        self.tracer = NULL_TRACER
        self._retire_at = 0

    def reset(self) -> None:
        """Clear dynamic state and statistics."""
        self.stats = CryptoEngineStats()
        self._port_free_at = 0
        self._retire_at = 0

    @property
    def latency(self) -> int:
        """Pipeline latency in cycles."""
        return self.config.latency_cycles

    def issue(self, now: int, count: int, speculative: bool = False) -> list[int]:
        """Issue ``count`` pad computations at cycle ``now``.

        Returns the completion cycle of each block, in issue order.  Blocks
        queue behind whatever is already occupying the issue port.
        """
        if count <= 0:
            return []
        interval = self.config.issue_interval
        start = max(now, self._port_free_at)
        self.stats.queue_delay_cycles += start - now
        completions = []
        for i in range(count):
            slot = start + i * interval
            completions.append(slot + self.latency)
        self._port_free_at = start + count * interval
        self.stats.busy_cycles += count * interval
        self.stats.last_issue_time = self._port_free_at
        if speculative:
            self.stats.speculative_blocks += count
        else:
            self.stats.demand_blocks += count
        if self.tracer.enabled:
            # Occupancy sample: blocks of earlier batches still retiring
            # (one per issue slot up to _retire_at) plus this batch.
            pending = max(0, self._retire_at - start) // interval
            self._retire_at = completions[-1]
            self.tracer.counter(
                "crypto.pipeline", start, track="crypto", blocks=pending + count,
            )
        return completions

    def next_free_slot(self, now: int) -> int:
        """Cycle at which a request issued at ``now`` would enter the pipe."""
        return max(now, self._port_free_at)

    def idle_slots_before(self, deadline: int, now: int) -> int:
        """How many speculative issues fit between ``now`` and ``deadline``.

        This is the budget the predictor has for free speculation: slots the
        engine would otherwise spend idle while a memory fetch is in flight.
        """
        start = self.next_free_slot(now)
        if deadline <= start:
            return 0
        return (deadline - start) // self.config.issue_interval


@dataclass
class PadCacheStats:
    """Hit/miss/eviction counters for one :class:`PadCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def publish(self, registry, prefix: str = "crypto.pad_cache") -> None:
        """Export these counters into a telemetry registry under ``prefix``."""
        registry.counter(f"{prefix}.hits").inc(self.hits)
        registry.counter(f"{prefix}.misses").inc(self.misses)
        registry.counter(f"{prefix}.stores").inc(self.stores)
        registry.counter(f"{prefix}.evictions").inc(self.evictions)
        registry.gauge(f"{prefix}.hit_rate").set(self.hit_rate)


class PadCache:
    """Bounded LRU memo of computed one-time pads.

    Keys are ``(key_id, address, seqnum)`` triples and values the pad bytes
    for that unit.  A pad is a pure function of its key, so entries never
    invalidate; capacity is the only eviction reason.  ``capacity`` of 0
    disables the memo entirely (every lookup misses, nothing is stored) —
    benchmarks use that to measure the memo-less baseline.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = PadCacheStats()
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        """False when capacity 0 turned the memo off."""
        return self.capacity > 0

    def get(self, key: tuple) -> bytes | None:
        """The memoized pad for ``key``, refreshing its recency."""
        pad = self._entries.get(key)
        if pad is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return pad

    def put(self, key: tuple, pad: bytes) -> None:
        """Memoize ``pad``, evicting the least-recently-used overflow."""
        if not self.capacity:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = pad
            return
        self._entries[key] = pad
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._entries.clear()
