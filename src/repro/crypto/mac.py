"""Message authentication codes for the integrity substrate.

Counter mode by itself is malleable and provides no integrity (Section 2.1 of
the paper); a MAC must be layered on top.  Two constructions are provided:

* :class:`CbcMac` — AES-CBC-MAC with length prepending, matching the kind of
  block-cipher-based MAC a hardware crypto engine would share silicon with.
* :class:`HmacSha256` — HMAC (FIPS 198) over the from-scratch SHA-256, used
  by the hash-tree integrity substrate.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.sha256 import sha256

__all__ = ["CbcMac", "HmacSha256", "constant_time_equal"]


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit on first mismatch."""
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0


class CbcMac:
    """AES-CBC-MAC with the message length bound into the first block.

    Prepending the length makes the construction secure for variable-length
    messages (plain CBC-MAC is only secure for fixed-length input).
    """

    def __init__(self, key: bytes):
        self._cipher = AES(key)

    def tag(self, message: bytes) -> bytes:
        """Compute the 16-byte tag of ``message``."""
        header = len(message).to_bytes(8, "big").rjust(BLOCK_SIZE, b"\x00")
        padded = message + b"\x00" * (-len(message) % BLOCK_SIZE)
        state = self._cipher.encrypt_block(header)
        for start in range(0, len(padded), BLOCK_SIZE):
            block = padded[start: start + BLOCK_SIZE]
            state = self._cipher.encrypt_block(
                bytes(s ^ m for s, m in zip(state, block))
            )
        return state

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-time check that ``tag`` authenticates ``message``."""
        return constant_time_equal(self.tag(message), tag)


class HmacSha256:
    """HMAC-SHA256 (FIPS 198) built on the from-scratch SHA-256."""

    _BLOCK = 64

    def __init__(self, key: bytes):
        if len(key) > self._BLOCK:
            key = sha256(key)
        key = key.ljust(self._BLOCK, b"\x00")
        self._inner = bytes(b ^ 0x36 for b in key)
        self._outer = bytes(b ^ 0x5C for b in key)

    def tag(self, message: bytes) -> bytes:
        """Compute the 32-byte HMAC tag of ``message``."""
        return sha256(self._outer + sha256(self._inner + message))

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-time check that ``tag`` authenticates ``message``."""
        return constant_time_equal(self.tag(message), tag)
