"""Counter (CTR) mode encryption.

Implements the scheme of Section 2.1 of the paper: an encryption bitstream
(the *one-time pad*, OTP) ``E(key, cnt) || E(key, cnt+1) || ...`` is XORed
with the plaintext.  Decryption regenerates the same pad and XORs again.

Two interfaces are provided:

* :class:`CtrMode` — a conventional CTR cipher over arbitrary-length
  messages, with an explicit initial counter.  Used by the sealed-storage
  example and the generic crypto tests.
* :func:`make_counter_block` — the secure-processor input-block format from
  Figure 3: a 64-bit virtual address concatenated with a 64-bit sequence
  number, yielding one 128-bit AES input per 16-byte half cache line.

Security note (Section 4): distinct memory blocks may share a sequence
number, but because the *address* is part of the AES input every 16-byte
unit still gets a unique pad, so counter-mode security is preserved as long
as (address, seqnum) pairs never repeat across writes.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE

__all__ = ["CtrMode", "make_counter_block", "xor_bytes"]

_MASK64 = (1 << 64) - 1
_MASK128 = (1 << 128) - 1


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
        len(a), "big"
    )


def make_counter_block(address: int, seqnum: int) -> bytes:
    """Build the 128-bit AES input ``address(64) || seqnum(64)``.

    ``address`` is the virtual address of the 16-byte unit being padded
    (32-bit architectures zero-extend, matching the paper's prefix padding);
    ``seqnum`` is the per-line sequence number.
    """
    if address < 0 or seqnum < 0:
        raise ValueError("address and seqnum must be non-negative")
    return ((address & _MASK64) << 64 | (seqnum & _MASK64)).to_bytes(16, "big")


class CtrMode:
    """Conventional counter-mode cipher over a block cipher.

    Parameters
    ----------
    key:
        AES key (16/24/32 bytes).
    """

    def __init__(self, key: bytes):
        self._cipher = AES(key)

    def keystream(self, counter: int, length: int) -> bytes:
        """Generate ``length`` bytes of pad starting at ``counter``.

        All counter blocks for the message are assembled up front and
        encrypted in one :meth:`~repro.crypto.aes.AES.encrypt_blocks`
        batch, so long messages pay vectorized rather than per-block cost.
        """
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        count = -(-length // BLOCK_SIZE)
        inputs = b"".join(
            ((counter + i) & _MASK128).to_bytes(BLOCK_SIZE, "big")
            for i in range(count)
        )
        return self._cipher.encrypt_blocks(inputs)[:length]

    def encrypt(self, plaintext: bytes, counter: int) -> bytes:
        """Encrypt ``plaintext`` with the pad starting at ``counter``."""
        pad = self.keystream(counter, len(plaintext))
        return xor_bytes(plaintext, pad)

    def decrypt(self, ciphertext: bytes, counter: int) -> bytes:
        """Decrypt — identical to encryption in counter mode."""
        return self.encrypt(ciphertext, counter)
