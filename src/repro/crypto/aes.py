"""From-scratch AES (FIPS-197) block cipher.

This module implements the Advanced Encryption Standard for all three key
sizes (128/192/256 bits) with no external dependencies.  It is the block
cipher ``E`` used throughout the counter-mode security architecture: the
one-time pad for a memory block is ``E(key, vaddr || seqnum)``.

The implementation follows the standard structure described in Section 5.2
of the paper (sub-bytes, shift-rows, mix-columns, add-round-key) but fuses
the first three stages into four precomputed 32-bit lookup tables
("T-tables") for the encryption direction, which is the classic software
realization of the round function.  Decryption uses the equivalent inverse
cipher with inverse tables.

All table contents are *derived* from GF(2^8) arithmetic rather than pasted
in as magic constants, so the full derivation of the cipher lives in this
file.  Counter mode only ever *encrypts* (decryption is the same XOR), so
the inverse tables and the inverse key schedule are built lazily on the
first real decrypt — imports and CTR-only workloads never pay for them.

Two functional paths share the encryption tables:

* :meth:`AES.encrypt_block` — the scalar path, one 16-byte block per call;
* :meth:`AES.encrypt_blocks` — a batch path that runs every round over an
  ``n x 4`` uint32 state matrix with numpy gathers on the same T-tables.
  It is bit-exact with the scalar path (both are checked against the
  FIPS-197 vectors) and is how the pad pipeline amortizes cipher cost
  across a whole speculative candidate set at once.
"""

from __future__ import annotations

try:  # numpy accelerates the batch path; everything works without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

__all__ = ["AES", "BLOCK_SIZE", "KEY_SIZES", "set_vectorized", "vectorized_enabled"]

BLOCK_SIZE = 16
KEY_SIZES = (16, 24, 32)

# ---------------------------------------------------------------------------
# GF(2^8) arithmetic and table derivation
# ---------------------------------------------------------------------------

_AES_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1, the Rijndael field polynomial


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= _AES_POLY
    return value


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the Rijndael polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    """Derive the S-box from multiplicative inverses plus the affine map."""
    # Build the inverse table via exponentiation with generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    exp[255] = exp[0]

    def inverse(v: int) -> int:
        if v == 0:
            return 0
        return exp[255 - log[v]]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inv = inverse(value)
        # Affine transformation over GF(2): b ^ rotl(b,1..4) ^ 0x63.
        b = inv
        result = 0x63
        for shift in range(5):
            result ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[value] = result
    for value, substituted in enumerate(sbox):
        inv_sbox[substituted] = value
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()


def _build_enc_tables() -> list[list[int]]:
    """Fused SubBytes+ShiftRows+MixColumns tables for encryption."""
    t0 = [0] * 256
    for value in range(256):
        s = _SBOX[value]
        # MixColumns column for input byte: (2s, s, s, 3s).
        t0[value] = (
            (_gf_mul(s, 2) << 24)
            | (s << 16)
            | (s << 8)
            | _gf_mul(s, 3)
        )
    tables = [t0]
    for rotation in (1, 2, 3):
        tables.append(
            [((w >> (8 * rotation)) | (w << (32 - 8 * rotation))) & 0xFFFFFFFF for w in t0]
        )
    return tables


def _build_dec_tables() -> list[list[int]]:
    """Fused InvSubBytes+InvShiftRows+InvMixColumns tables for decryption."""
    d0 = [0] * 256
    for value in range(256):
        s = _INV_SBOX[value]
        d0[value] = (
            (_gf_mul(s, 0x0E) << 24)
            | (_gf_mul(s, 0x09) << 16)
            | (_gf_mul(s, 0x0D) << 8)
            | _gf_mul(s, 0x0B)
        )
    tables = [d0]
    for rotation in (1, 2, 3):
        tables.append(
            [((w >> (8 * rotation)) | (w << (32 - 8 * rotation))) & 0xFFFFFFFF for w in d0]
        )
    return tables


_TE0, _TE1, _TE2, _TE3 = _build_enc_tables()

# Inverse-cipher tables, built on first decrypt (CTR mode never needs them).
_DEC_TABLES: list[list[int]] | None = None

# numpy mirrors of the encryption tables for the batch path, built on first
# use of encrypt_blocks.
_ENC_ARRAYS = None

# Module-wide switch for the numpy batch path; flipping it off forces
# encrypt_blocks through the scalar loop (used by benchmarks to measure the
# pre-vectorization baseline, and automatic when numpy is absent).
_VECTORIZED = _np is not None

# Below this many blocks per call the scalar loop beats the numpy path
# (fixed per-ufunc dispatch overhead dominates tiny gathers; measured
# crossover on CPython 3.11/numpy 2.x is ~40-50 blocks).  encrypt_blocks
# switches implementation on this bound; both sides are bit-exact.
BATCH_THRESHOLD = 48


def set_vectorized(enabled: bool) -> bool:
    """Enable/disable the numpy batch path; returns the previous setting.

    Requests to enable are ignored when numpy is unavailable.  The scalar
    and vector paths are bit-exact, so this only affects throughput.
    """
    global _VECTORIZED
    previous = _VECTORIZED
    _VECTORIZED = bool(enabled) and _np is not None
    return previous


def vectorized_enabled() -> bool:
    """True when encrypt_blocks will use the numpy batch path."""
    return _VECTORIZED


def _dec_tables() -> list[list[int]]:
    """The inverse-cipher T-tables, derived once on first decrypt."""
    global _DEC_TABLES
    if _DEC_TABLES is None:
        _DEC_TABLES = _build_dec_tables()
    return _DEC_TABLES


def _enc_arrays():
    """uint32 numpy views of the encryption tables (plus the S-box)."""
    global _ENC_ARRAYS
    if _ENC_ARRAYS is None:
        _ENC_ARRAYS = (
            _np.array(_TE0, dtype=_np.uint32),
            _np.array(_TE1, dtype=_np.uint32),
            _np.array(_TE2, dtype=_np.uint32),
            _np.array(_TE3, dtype=_np.uint32),
            _np.array(_SBOX, dtype=_np.uint32),
        )
    return _ENC_ARRAYS

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))


def _sub_word(word: int) -> int:
    return (
        (_SBOX[(word >> 24) & 0xFF] << 24)
        | (_SBOX[(word >> 16) & 0xFF] << 16)
        | (_SBOX[(word >> 8) & 0xFF] << 8)
        | _SBOX[word & 0xFF]
    )


def _rot_word(word: int) -> int:
    return ((word << 8) | (word >> 24)) & 0xFFFFFFFF


def _inv_mix_word(word: int) -> int:
    """InvMixColumns on a single 32-bit column (used for decrypt key schedule)."""
    b0 = (word >> 24) & 0xFF
    b1 = (word >> 16) & 0xFF
    b2 = (word >> 8) & 0xFF
    b3 = word & 0xFF
    return (
        ((_gf_mul(b0, 0x0E) ^ _gf_mul(b1, 0x0B) ^ _gf_mul(b2, 0x0D) ^ _gf_mul(b3, 0x09)) << 24)
        | ((_gf_mul(b0, 0x09) ^ _gf_mul(b1, 0x0E) ^ _gf_mul(b2, 0x0B) ^ _gf_mul(b3, 0x0D)) << 16)
        | ((_gf_mul(b0, 0x0D) ^ _gf_mul(b1, 0x09) ^ _gf_mul(b2, 0x0E) ^ _gf_mul(b3, 0x0B)) << 8)
        | (_gf_mul(b0, 0x0B) ^ _gf_mul(b1, 0x0D) ^ _gf_mul(b2, 0x09) ^ _gf_mul(b3, 0x0E))
    )


class AES:
    """AES block cipher with a fixed key.

    Parameters
    ----------
    key:
        16, 24, or 32 bytes selecting AES-128/192/256 (10/12/14 rounds).

    Examples
    --------
    >>> cipher = AES(bytes(range(16)))
    >>> block = bytes(range(16, 32))
    >>> cipher.decrypt_block(cipher.encrypt_block(block)) == block
    True
    """

    def __init__(self, key: bytes):
        if not isinstance(key, (bytes, bytearray, memoryview)):
            raise TypeError(f"key must be bytes-like, got {type(key).__name__}")
        key = bytes(key)
        if len(key) not in KEY_SIZES:
            raise ValueError(
                f"key must be 16, 24, or 32 bytes, got {len(key)}"
            )
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[self.key_size]
        self._enc_keys = self._expand_key(key)
        # Inverse schedule is derived on first decrypt; encrypt-only users
        # (CTR mode, the OTP pipeline) never pay for the inversion.
        self._dec_keys_lazy: list[int] | None = None
        self._enc_key_array = None  # uint32 numpy copy, built on first batch

    # -- key schedule -------------------------------------------------------

    def _expand_key(self, key: bytes) -> list[int]:
        nk = self.key_size // 4
        total_words = 4 * (self.rounds + 1)
        words = [int.from_bytes(key[4 * i: 4 * i + 4], "big") for i in range(nk)]
        for i in range(nk, total_words):
            temp = words[i - 1]
            if i % nk == 0:
                temp = _sub_word(_rot_word(temp)) ^ (_RCON[i // nk - 1] << 24)
            elif nk > 6 and i % nk == 4:
                temp = _sub_word(temp)
            words.append(words[i - nk] ^ temp)
        return words

    def _invert_key_schedule(self, enc_keys: list[int]) -> list[int]:
        """Round keys for the equivalent inverse cipher (reversed, inv-mixed)."""
        rounds = self.rounds
        dec = [0] * len(enc_keys)
        for round_index in range(rounds + 1):
            src = 4 * (rounds - round_index)
            for col in range(4):
                word = enc_keys[src + col]
                if 0 < round_index < rounds:
                    word = _inv_mix_word(word)
                dec[4 * round_index + col] = word
        return dec

    @property
    def _dec_keys(self) -> list[int]:
        """The inverse key schedule, derived on first use."""
        if self._dec_keys_lazy is None:
            self._dec_keys_lazy = self._invert_key_schedule(self._enc_keys)
        return self._dec_keys_lazy

    # -- block operations ----------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        keys = self._enc_keys
        s0 = int.from_bytes(block[0:4], "big") ^ keys[0]
        s1 = int.from_bytes(block[4:8], "big") ^ keys[1]
        s2 = int.from_bytes(block[8:12], "big") ^ keys[2]
        s3 = int.from_bytes(block[12:16], "big") ^ keys[3]

        te0, te1, te2, te3 = _TE0, _TE1, _TE2, _TE3
        offset = 4
        for _ in range(self.rounds - 1):
            t0 = (
                te0[(s0 >> 24) & 0xFF]
                ^ te1[(s1 >> 16) & 0xFF]
                ^ te2[(s2 >> 8) & 0xFF]
                ^ te3[s3 & 0xFF]
                ^ keys[offset]
            )
            t1 = (
                te0[(s1 >> 24) & 0xFF]
                ^ te1[(s2 >> 16) & 0xFF]
                ^ te2[(s3 >> 8) & 0xFF]
                ^ te3[s0 & 0xFF]
                ^ keys[offset + 1]
            )
            t2 = (
                te0[(s2 >> 24) & 0xFF]
                ^ te1[(s3 >> 16) & 0xFF]
                ^ te2[(s0 >> 8) & 0xFF]
                ^ te3[s1 & 0xFF]
                ^ keys[offset + 2]
            )
            t3 = (
                te0[(s3 >> 24) & 0xFF]
                ^ te1[(s0 >> 16) & 0xFF]
                ^ te2[(s1 >> 8) & 0xFF]
                ^ te3[s2 & 0xFF]
                ^ keys[offset + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
            offset += 4

        sbox = _SBOX
        out = bytearray(BLOCK_SIZE)
        for col, state in enumerate(
            (
                (s0, s1, s2, s3),
                (s1, s2, s3, s0),
                (s2, s3, s0, s1),
                (s3, s0, s1, s2),
            )
        ):
            word = (
                (sbox[(state[0] >> 24) & 0xFF] << 24)
                | (sbox[(state[1] >> 16) & 0xFF] << 16)
                | (sbox[(state[2] >> 8) & 0xFF] << 8)
                | sbox[state[3] & 0xFF]
            ) ^ keys[offset + col]
            out[4 * col: 4 * col + 4] = word.to_bytes(4, "big")
        return bytes(out)

    def encrypt_blocks(self, data: bytes) -> bytes:
        """Encrypt ``n`` concatenated 16-byte blocks in ECB (one batch).

        Bit-exact with calling :meth:`encrypt_block` on each 16-byte slice;
        with numpy available the whole batch runs each round as a handful
        of vectorized table gathers, which is how the OTP pipeline makes a
        speculative candidate set cost barely more than a single block.
        """
        if len(data) % BLOCK_SIZE:
            raise ValueError(
                f"data must be a multiple of {BLOCK_SIZE} bytes, got {len(data)}"
            )
        count = len(data) // BLOCK_SIZE
        if count == 0:
            return b""
        if not _VECTORIZED or count < BATCH_THRESHOLD:
            return b"".join(
                self.encrypt_block(data[i * BLOCK_SIZE: (i + 1) * BLOCK_SIZE])
                for i in range(count)
            )
        return self._encrypt_blocks_numpy(data, count)

    def _encrypt_blocks_numpy(self, data: bytes, count: int) -> bytes:
        """The numpy batch path: state is four length-n uint32 columns."""
        te0, te1, te2, te3, sbox = _enc_arrays()
        if self._enc_key_array is None:
            self._enc_key_array = _np.array(self._enc_keys, dtype=_np.uint32)
        keys = self._enc_key_array

        state = _np.frombuffer(data, dtype=">u4").astype(_np.uint32).reshape(count, 4)
        s0 = state[:, 0] ^ keys[0]
        s1 = state[:, 1] ^ keys[1]
        s2 = state[:, 2] ^ keys[2]
        s3 = state[:, 3] ^ keys[3]

        offset = 4
        for _ in range(self.rounds - 1):
            t0 = (
                te0[(s0 >> 24) & 0xFF]
                ^ te1[(s1 >> 16) & 0xFF]
                ^ te2[(s2 >> 8) & 0xFF]
                ^ te3[s3 & 0xFF]
                ^ keys[offset]
            )
            t1 = (
                te0[(s1 >> 24) & 0xFF]
                ^ te1[(s2 >> 16) & 0xFF]
                ^ te2[(s3 >> 8) & 0xFF]
                ^ te3[s0 & 0xFF]
                ^ keys[offset + 1]
            )
            t2 = (
                te0[(s2 >> 24) & 0xFF]
                ^ te1[(s3 >> 16) & 0xFF]
                ^ te2[(s0 >> 8) & 0xFF]
                ^ te3[s1 & 0xFF]
                ^ keys[offset + 2]
            )
            t3 = (
                te0[(s3 >> 24) & 0xFF]
                ^ te1[(s0 >> 16) & 0xFF]
                ^ te2[(s1 >> 8) & 0xFF]
                ^ te3[s2 & 0xFF]
                ^ keys[offset + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
            offset += 4

        out = _np.empty((count, 4), dtype=_np.uint32)
        for col, (a, b, c, d) in enumerate(
            (
                (s0, s1, s2, s3),
                (s1, s2, s3, s0),
                (s2, s3, s0, s1),
                (s3, s0, s1, s2),
            )
        ):
            out[:, col] = (
                (sbox[(a >> 24) & 0xFF] << _np.uint32(24))
                | (sbox[(b >> 16) & 0xFF] << _np.uint32(16))
                | (sbox[(c >> 8) & 0xFF] << _np.uint32(8))
                | sbox[d & 0xFF]
            ) ^ keys[offset + col]
        return out.astype(">u4").tobytes()

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        keys = self._dec_keys
        s0 = int.from_bytes(block[0:4], "big") ^ keys[0]
        s1 = int.from_bytes(block[4:8], "big") ^ keys[1]
        s2 = int.from_bytes(block[8:12], "big") ^ keys[2]
        s3 = int.from_bytes(block[12:16], "big") ^ keys[3]

        td0, td1, td2, td3 = _dec_tables()
        offset = 4
        for _ in range(self.rounds - 1):
            t0 = (
                td0[(s0 >> 24) & 0xFF]
                ^ td1[(s3 >> 16) & 0xFF]
                ^ td2[(s2 >> 8) & 0xFF]
                ^ td3[s1 & 0xFF]
                ^ keys[offset]
            )
            t1 = (
                td0[(s1 >> 24) & 0xFF]
                ^ td1[(s0 >> 16) & 0xFF]
                ^ td2[(s3 >> 8) & 0xFF]
                ^ td3[s2 & 0xFF]
                ^ keys[offset + 1]
            )
            t2 = (
                td0[(s2 >> 24) & 0xFF]
                ^ td1[(s1 >> 16) & 0xFF]
                ^ td2[(s0 >> 8) & 0xFF]
                ^ td3[s3 & 0xFF]
                ^ keys[offset + 2]
            )
            t3 = (
                td0[(s3 >> 24) & 0xFF]
                ^ td1[(s2 >> 16) & 0xFF]
                ^ td2[(s1 >> 8) & 0xFF]
                ^ td3[s0 & 0xFF]
                ^ keys[offset + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
            offset += 4

        inv_sbox = _INV_SBOX
        out = bytearray(BLOCK_SIZE)
        for col, state in enumerate(
            (
                (s0, s3, s2, s1),
                (s1, s0, s3, s2),
                (s2, s1, s0, s3),
                (s3, s2, s1, s0),
            )
        ):
            word = (
                (inv_sbox[(state[0] >> 24) & 0xFF] << 24)
                | (inv_sbox[(state[1] >> 16) & 0xFF] << 16)
                | (inv_sbox[(state[2] >> 8) & 0xFF] << 8)
                | inv_sbox[state[3] & 0xFF]
            ) ^ keys[offset + col]
            out[4 * col: 4 * col + 4] = word.to_bytes(4, "big")
        return bytes(out)
