"""Deterministic model of the processor's hardware random number generator.

The architecture assigns a fresh random *root sequence number* to every
virtual page when it is mapped (and again whenever the adaptive predictor
resets a page).  The real design uses a hardware RNG; for reproducible
simulation we substitute a seeded xoshiro256** generator, which has the same
distributional properties that matter to the mechanism (uniform, independent
64-bit values) while making every experiment replayable.

The substitution is recorded in DESIGN.md Section 2.
"""

from __future__ import annotations

__all__ = ["HardwareRng"]

_MASK64 = (1 << 64) - 1


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (64 - amount))) & _MASK64


def _splitmix64(state: int) -> tuple[int, int]:
    """One step of splitmix64; returns (new_state, output)."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return state, z ^ (z >> 31)


class HardwareRng:
    """xoshiro256** seeded from splitmix64, mirroring the reference code."""

    def __init__(self, seed: int = 0x5EC0_12005):
        state = seed & _MASK64
        self._s = []
        for _ in range(4):
            state, word = _splitmix64(state)
            self._s.append(word)

    def next_u64(self) -> int:
        """Return the next uniform 64-bit value."""
        s0, s1, s2, s3 = self._s
        result = (_rotl((s1 * 5) & _MASK64, 7) * 9) & _MASK64
        t = (s1 << 17) & _MASK64
        s2 ^= s0
        s3 ^= s1
        s1 ^= s2
        s0 ^= s3
        s2 ^= t
        s3 = _rotl(s3, 45)
        self._s = [s0, s1, s2, s3]
        return result

    def next_bits(self, bits: int) -> int:
        """Return a uniform value in ``[0, 2**bits)`` for ``1 <= bits <= 64``."""
        if not 1 <= bits <= 64:
            raise ValueError(f"bits must be in [1, 64], got {bits}")
        return self.next_u64() >> (64 - bits)

    def next_below(self, bound: int) -> int:
        """Return a uniform value in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        bits = bound.bit_length()
        while True:
            candidate = self.next_bits(min(bits, 64))
            if candidate < bound:
                return candidate

    def next_bytes(self, count: int) -> bytes:
        """Return ``count`` uniform random bytes."""
        chunks = []
        remaining = count
        while remaining > 0:
            chunk = self.next_u64().to_bytes(8, "big")
            chunks.append(chunk[:remaining])
            remaining -= 8
        return b"".join(chunks)

    def next_float(self) -> float:
        """Return a uniform float in [0, 1) with 53 bits of precision."""
        return self.next_bits(53) / (1 << 53)
