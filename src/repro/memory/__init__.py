"""Memory-system substrate: addresses, caches, TLB, bus, DRAM, backing store."""

from repro.memory.address import AddressMap, DEFAULT_ADDRESS_MAP
from repro.memory.backing import BackingStore
from repro.memory.bus import BusConfig, BusStats, MemoryBus
from repro.memory.cache import Cache, CacheAccessResult, CacheConfig, CacheStats
from repro.memory.dram import Dram, DramConfig, DramStats, LineFetchTiming
from repro.memory.hierarchy import AccessOutcome, HierarchyConfig, MemoryHierarchy
from repro.memory.tlb import Tlb, TlbConfig

__all__ = [
    "AddressMap",
    "DEFAULT_ADDRESS_MAP",
    "BackingStore",
    "BusConfig",
    "BusStats",
    "MemoryBus",
    "Cache",
    "CacheAccessResult",
    "CacheConfig",
    "CacheStats",
    "Dram",
    "DramConfig",
    "DramStats",
    "LineFetchTiming",
    "AccessOutcome",
    "HierarchyConfig",
    "MemoryHierarchy",
    "Tlb",
    "TlbConfig",
]
