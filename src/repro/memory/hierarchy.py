"""Two-level cache hierarchy (L1 I/D + unified write-back L2).

Mirrors Table 1: direct-mapped 8KB L1s with 32-byte lines and a 4-way
unified L2 (256KB or 1MB).  The hierarchy produces the two event streams
the secure memory controller cares about:

* *fetches* — L2 misses that must bring an encrypted line (and its sequence
  number) in from RAM;
* *write-backs* — dirty L2 victims that must be encrypted under a fresh
  sequence number before leaving the protected domain (Figure 2).

The L2 is treated as inclusive of the L1s; a dirty L1 victim therefore just
marks its L2 copy dirty instead of generating a separate external write.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.address import AddressMap, DEFAULT_ADDRESS_MAP
from repro.memory.cache import Cache, CacheConfig

__all__ = ["HierarchyConfig", "AccessOutcome", "MemoryHierarchy"]


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry for the whole on-chip hierarchy (Table 1 defaults)."""

    l1i_size: int = 8 * 1024
    l1d_size: int = 8 * 1024
    l1_associativity: int = 1      # direct-mapped per Table 1
    l2_size: int = 256 * 1024
    l2_associativity: int = 4
    line_bytes: int = 32
    l1_latency: int = 1
    l2_latency: int = 4            # 4 cycles (256KB) / 8 cycles (1MB)


@dataclass(frozen=True)
class AccessOutcome:
    """What one CPU access did to the hierarchy."""

    address: int
    is_write: bool
    l1_hit: bool
    l2_hit: bool | None = None
    fetched_lines: tuple[int, ...] = ()
    writeback_lines: tuple[int, ...] = ()

    @property
    def l2_miss(self) -> bool:
        return self.l2_hit is False


class MemoryHierarchy:
    """L1I + L1D + unified L2, write-back write-allocate throughout."""

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        address_map: AddressMap = DEFAULT_ADDRESS_MAP,
    ):
        self.config = config or HierarchyConfig()
        if self.config.line_bytes != address_map.line_bytes:
            raise ValueError(
                f"hierarchy line size {self.config.line_bytes} does not match "
                f"address map line size {address_map.line_bytes}"
            )
        self.address_map = address_map
        self.l1i = Cache(
            CacheConfig(
                size_bytes=self.config.l1i_size,
                line_bytes=self.config.line_bytes,
                associativity=self.config.l1_associativity,
                name="l1i",
            )
        )
        self.l1d = Cache(
            CacheConfig(
                size_bytes=self.config.l1d_size,
                line_bytes=self.config.line_bytes,
                associativity=self.config.l1_associativity,
                name="l1d",
            )
        )
        self.l2 = Cache(
            CacheConfig(
                size_bytes=self.config.l2_size,
                line_bytes=self.config.line_bytes,
                associativity=self.config.l2_associativity,
                name="l2",
            )
        )

    def access(
        self, address: int, is_write: bool = False, is_instruction: bool = False
    ) -> AccessOutcome:
        """Run one access through L1 and (if needed) L2."""
        line = self.address_map.line_address(address)
        l1 = self.l1i if is_instruction else self.l1d
        l1_result = l1.access(line, is_write=is_write)
        if l1_result.hit:
            return AccessOutcome(address=address, is_write=is_write, l1_hit=True)

        fetched: list[int] = []
        writebacks: list[int] = []

        # A dirty L1 victim folds into its (inclusive) L2 copy.
        if l1_result.victim_dirty and l1_result.victim_address is not None:
            if not self.l2.mark_dirty(l1_result.victim_address):
                refill = self.l2.access(l1_result.victim_address, is_write=True)
                if not refill.hit:
                    fetched.append(l1_result.victim_address)
                if refill.victim_dirty and refill.victim_address is not None:
                    writebacks.append(refill.victim_address)

        l2_result = self.l2.access(line, is_write=is_write)
        if not l2_result.hit:
            fetched.append(line)
            victim = l2_result.victim_address
            if victim is not None:
                # Inclusion: anything leaving L2 must leave the L1s too, and
                # a dirty L1 copy makes the departing line dirty even if the
                # L2 copy itself was clean.
                self.l1i.invalidate(victim)
                _, l1d_dirty = self.l1d.pop_line(victim)
                if l2_result.victim_dirty or l1d_dirty:
                    writebacks.append(victim)

        return AccessOutcome(
            address=address,
            is_write=is_write,
            l1_hit=False,
            l2_hit=l2_result.hit,
            fetched_lines=tuple(fetched),
            writeback_lines=tuple(writebacks),
        )

    def publish_telemetry(self, registry, prefix: str = "memory.cache") -> None:
        """Export every level's counters (``memory.cache.l1i.hits`` ...)."""
        for level in (self.l1i, self.l1d, self.l2):
            level.stats.publish(registry, f"{prefix}.{level.config.name}")

    def flush_dirty(self) -> list[int]:
        """Clean all dirty lines (periodic OS flush); returns L2 write-backs."""
        stragglers = []
        for line in self.l1d.flush_dirty():
            if not self.l2.mark_dirty(line):
                # Inclusion should make this unreachable, but never lose a
                # dirty line if the invariant is ever relaxed.
                stragglers.append(line)
        return self.l2.flush_dirty() + stragglers
