"""TLB model with per-page security context.

Figure 5 of the paper tags each TLB entry with the page's *root sequence
number*; the prediction logic reads it straight from the TLB on a miss.
Here the TLB is a timing/residency structure: the authoritative per-page
security state (root sequence number, prediction history vector, old-root
history) lives in :class:`repro.secure.seqnum.PageSecurityTable`, which the
trusted kernel would preserve across TLB evictions and context switches
(Section 2.2's "proper management" assumption).  The TLB caches a view of
that state and counts how often the prediction logic finds it on-chip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import Cache, CacheConfig

__all__ = ["TlbConfig", "Tlb"]


@dataclass(frozen=True)
class TlbConfig:
    """Static TLB geometry (Table 1: 4-way, 256 entries)."""

    entries: int = 256
    associativity: int = 4
    page_bytes: int = 4096


class Tlb:
    """Set-associative TLB built on the generic cache tag array."""

    def __init__(self, config: TlbConfig | None = None):
        self.config = config or TlbConfig()
        cache_config = CacheConfig(
            size_bytes=self.config.entries * self.config.page_bytes,
            line_bytes=self.config.page_bytes,
            associativity=self.config.associativity,
            name="tlb",
        )
        self._tags = Cache(cache_config)

    @property
    def stats(self):
        """Hit/miss counters of the underlying tag array."""
        return self._tags.stats

    def access(self, address: int) -> bool:
        """Translate ``address``; returns True on a TLB hit.

        On a miss the entry is filled (the page walk itself is assumed to be
        covered by the same latency window as the L2 miss it accompanies).
        """
        return self._tags.access(address).hit

    def resident(self, address: int) -> bool:
        """True if the page of ``address`` currently has a TLB entry."""
        return self._tags.probe(address)

    def flush(self) -> None:
        """Invalidate all entries (context switch)."""
        for line in self._tags.resident_lines():
            self._tags.invalidate(line)
