"""Front-side memory bus occupancy model.

Table 1: 200 MHz bus, 8 bytes wide.  At a 1 GHz core clock every bus beat
costs 5 CPU cycles, so moving a 32-byte line takes 4 beats = 20 cycles, and
the 8-byte sequence number rides in one extra beat.  The bus serializes
transfers; back-to-back misses queue behind each other, which is one of the
ways aggressive speculation schemes (pre-decryption, Section 9.2) hurt and
OTP prediction — which never adds bus traffic — does not.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BusConfig", "BusStats", "MemoryBus"]


@dataclass(frozen=True)
class BusConfig:
    """Static bus parameters (Table 1 defaults at a 1 GHz core)."""

    width_bytes: int = 8
    bus_mhz: float = 200.0
    cpu_ghz: float = 1.0

    @property
    def cycles_per_beat(self) -> int:
        """CPU cycles per bus beat."""
        return max(1, round(self.cpu_ghz * 1000.0 / self.bus_mhz))

    def transfer_cycles(self, num_bytes: int) -> int:
        """CPU cycles to move ``num_bytes`` across the bus."""
        beats = -(-num_bytes // self.width_bytes)  # ceil division
        return beats * self.cycles_per_beat


@dataclass
class BusStats:
    """Occupancy counters."""

    transfers: int = 0
    bytes_moved: int = 0
    busy_cycles: int = 0
    queue_delay_cycles: int = 0

    def absorb(
        self,
        transfers: int = 0,
        bytes_moved: int = 0,
        busy_cycles: int = 0,
        queue_delay_cycles: int = 0,
    ) -> None:
        """Fold a batch of transfers into the counters.

        Batch entry point for the batched replay core, which accumulates
        per-epoch deltas instead of bumping these fields per transfer.
        """
        self.transfers += transfers
        self.bytes_moved += bytes_moved
        self.busy_cycles += busy_cycles
        self.queue_delay_cycles += queue_delay_cycles


class MemoryBus:
    """Single shared bus; transfers are serialized in arrival order."""

    def __init__(self, config: BusConfig | None = None):
        self.config = config or BusConfig()
        self.stats = BusStats()
        self._free_at = 0

    def reset(self) -> None:
        """Clear occupancy state and statistics."""
        self.stats = BusStats()
        self._free_at = 0

    def transfer(self, now: int, num_bytes: int) -> int:
        """Schedule a transfer of ``num_bytes`` at cycle ``now``.

        Returns the cycle at which the last byte arrives.
        """
        if num_bytes <= 0:
            return now
        start = max(now, self._free_at)
        duration = self.config.transfer_cycles(num_bytes)
        self._free_at = start + duration
        self.stats.transfers += 1
        self.stats.bytes_moved += num_bytes
        self.stats.busy_cycles += duration
        self.stats.queue_delay_cycles += start - now
        return self._free_at
