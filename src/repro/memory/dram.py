"""Banked SDRAM timing model.

Section 5.1 of the paper integrates "an accurate DRAM model [Gries/Romer]
... in which bank conflicts, page miss, row miss are all modeled following
the PC SDRAM specification".  This module reproduces that first-order
structure:

* multiple banks, each with at most one open row (open-page policy);
* three access classes — row hit (CAS only), row empty (RCD+CAS), and row
  conflict (precharge + RCD + CAS);
* data movement serialized over the shared :class:`~repro.memory.bus.MemoryBus`.

Each cache-line-sized memory block has its sequence number stored alongside
it in RAM (Figure 2), so an encrypted-line fetch returns *two* timestamps:
when the 8-byte sequence number is on-chip and when the full 32-byte line
is.  The gap between them is exactly the window the crypto engine has to
finish a demand pad computation after a prediction miss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.bus import BusConfig, MemoryBus
from repro.telemetry.events import NULL_TRACER

__all__ = ["DramConfig", "DramStats", "LineFetchTiming", "Dram"]


@dataclass(frozen=True)
class DramConfig:
    """SDRAM geometry and timing (bus-clock units, PC SDRAM class)."""

    num_banks: int = 4
    row_bytes: int = 2048
    t_cas: int = 2          # column access, bus clocks
    t_rcd: int = 2          # row activate, bus clocks
    t_rp: int = 2           # precharge, bus clocks
    controller_cycles: int = 40  # CPU cycles: queueing, chipset, wire delay
    bus: BusConfig = BusConfig()

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.num_banks & (self.num_banks - 1):
            raise ValueError(f"num_banks must be a power of two, got {self.num_banks}")
        if self.row_bytes <= 0 or self.row_bytes & (self.row_bytes - 1):
            raise ValueError(f"row_bytes must be a power of two, got {self.row_bytes}")


@dataclass
class DramStats:
    """Access-class counters."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_empties: int = 0
    row_conflicts: int = 0
    bank_queue_cycles: int = 0

    def absorb(
        self,
        reads: int = 0,
        writes: int = 0,
        row_hits: int = 0,
        row_empties: int = 0,
        row_conflicts: int = 0,
        bank_queue_cycles: int = 0,
    ) -> None:
        """Fold a batch of accesses into the counters.

        Batch entry point for the batched replay core, which accumulates
        per-epoch deltas instead of bumping these fields per access.
        """
        self.reads += reads
        self.writes += writes
        self.row_hits += row_hits
        self.row_empties += row_empties
        self.row_conflicts += row_conflicts
        self.bank_queue_cycles += bank_queue_cycles

    def publish(self, registry, prefix: str = "memory.dram") -> None:
        """Export these counters into a telemetry registry under ``prefix``."""
        registry.counter(f"{prefix}.reads").inc(self.reads)
        registry.counter(f"{prefix}.writes").inc(self.writes)
        registry.counter(f"{prefix}.row_hits").inc(self.row_hits)
        registry.counter(f"{prefix}.row_empties").inc(self.row_empties)
        registry.counter(f"{prefix}.row_conflicts").inc(self.row_conflicts)
        registry.counter(f"{prefix}.bank_queue_cycles").inc(self.bank_queue_cycles)
        accesses = self.row_hits + self.row_empties + self.row_conflicts
        registry.gauge(f"{prefix}.row_hit_rate").set(
            self.row_hits / accesses if accesses else 0.0
        )


@dataclass(frozen=True)
class LineFetchTiming:
    """Timestamps produced by a combined line+seqnum fetch."""

    issue: int
    seqnum_ready: int
    line_ready: int


class Dram:
    """Open-page banked SDRAM behind a shared bus."""

    def __init__(self, config: DramConfig | None = None):
        self.config = config or DramConfig()
        self.bus = MemoryBus(self.config.bus)
        self.stats = DramStats()
        self._open_rows: list[int | None] = [None] * self.config.num_banks
        self._bank_free_at = [0] * self.config.num_banks
        self._row_shift = self.config.row_bytes.bit_length() - 1
        self._bank_mask = self.config.num_banks - 1
        # Timeline instrumentation (attached by the controller): with a
        # live tracer each line fetch samples the outstanding-read depth;
        # the completion list is only maintained while tracing.
        self.tracer = NULL_TRACER
        self._outstanding: list[int] = []

    def reset(self) -> None:
        """Close all rows and clear statistics."""
        self.bus.reset()
        self.stats = DramStats()
        self._open_rows = [None] * self.config.num_banks
        self._bank_free_at = [0] * self.config.num_banks
        self._outstanding = []

    def _bank_and_row(self, address: int) -> tuple[int, int]:
        row = address >> self._row_shift
        return row & self._bank_mask, row >> (self._bank_mask.bit_length())

    def _access_bank(self, now: int, address: int) -> int:
        """Open the right row; returns the cycle data can start moving."""
        bank, row = self._bank_and_row(address)
        per_beat = self.config.bus.cycles_per_beat
        start = max(now, self._bank_free_at[bank])
        self.stats.bank_queue_cycles += start - now

        open_row = self._open_rows[bank]
        if open_row == row:
            self.stats.row_hits += 1
            latency = self.config.t_cas * per_beat
        elif open_row is None:
            self.stats.row_empties += 1
            latency = (self.config.t_rcd + self.config.t_cas) * per_beat
        else:
            self.stats.row_conflicts += 1
            latency = (self.config.t_rp + self.config.t_rcd + self.config.t_cas) * per_beat
        self._open_rows[bank] = row
        ready = start + latency
        self._bank_free_at[bank] = ready
        return ready

    def fetch_line_with_seqnum(
        self, now: int, address: int, line_bytes: int, seqnum_bytes: int = 8
    ) -> LineFetchTiming:
        """Fetch a line and its co-located sequence number, pipelined.

        The memory controller returns the sequence number first (critical
        word for decryption), then streams the line.
        """
        self.stats.reads += 1
        issue = now + self.config.controller_cycles
        data_start = self._access_bank(issue, address)
        seqnum_ready = self.bus.transfer(data_start, seqnum_bytes)
        line_ready = self.bus.transfer(seqnum_ready, line_bytes)
        if self.tracer.enabled:
            self._outstanding = [
                done for done in self._outstanding if done > issue
            ]
            self._outstanding.append(line_ready)
            self.tracer.counter(
                "dram.outstanding", issue, track="dram",
                fetches=len(self._outstanding),
            )
        return LineFetchTiming(issue=issue, seqnum_ready=seqnum_ready, line_ready=line_ready)

    def read(self, now: int, address: int, num_bytes: int) -> int:
        """Plain read; returns completion cycle."""
        self.stats.reads += 1
        issue = now + self.config.controller_cycles
        data_start = self._access_bank(issue, address)
        return self.bus.transfer(data_start, num_bytes)

    def write(self, now: int, address: int, num_bytes: int) -> int:
        """Posted write (line write-back plus its sequence-number update)."""
        self.stats.writes += 1
        issue = now + self.config.controller_cycles
        data_start = self._access_bank(issue, address)
        return self.bus.transfer(data_start, num_bytes)
