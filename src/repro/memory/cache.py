"""Set-associative write-back cache model.

Used for the L1 instruction/data caches and the unified L2 of Table 1, and
reused (with a different payload interpretation) by the sequence-number
cache in :mod:`repro.secure.seqcache`.

The model tracks tags, LRU state, and dirty bits — it does not store data
(the functional backing store lives in :mod:`repro.memory.backing`).  Every
access returns a :class:`CacheAccessResult` describing the hit/miss and any
victim the caller must handle (dirty victims trigger the encrypted
write-back path in the secure controller).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheConfig", "CacheStats", "CacheAccessResult", "Cache"]


@dataclass(frozen=True)
class CacheConfig:
    """Static cache geometry."""

    size_bytes: int
    line_bytes: int = 32
    associativity: int = 4
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"line_bytes must be a power of two, got {self.line_bytes}")
        if self.associativity <= 0:
            raise ValueError(f"associativity must be positive, got {self.associativity}")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line_bytes*associativity = {self.line_bytes * self.associativity}"
            )
        num_sets = self.size_bytes // (self.line_bytes * self.associativity)
        if num_sets & (num_sets - 1):
            raise ValueError(f"{self.name}: number of sets {num_sets} must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    writes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def absorb(
        self,
        accesses: int = 0,
        hits: int = 0,
        misses: int = 0,
        evictions: int = 0,
        dirty_evictions: int = 0,
        writes: int = 0,
    ) -> None:
        """Fold a batch of accesses into the counters.

        Batch entry point for the batched replay core, which accumulates
        per-epoch deltas instead of bumping these fields per access.
        """
        self.accesses += accesses
        self.hits += hits
        self.misses += misses
        self.evictions += evictions
        self.dirty_evictions += dirty_evictions
        self.writes += writes

    def publish(self, registry, prefix: str) -> None:
        """Export these counters into a telemetry registry under ``prefix``."""
        registry.counter(f"{prefix}.accesses").inc(self.accesses)
        registry.counter(f"{prefix}.hits").inc(self.hits)
        registry.counter(f"{prefix}.misses").inc(self.misses)
        registry.counter(f"{prefix}.evictions").inc(self.evictions)
        registry.counter(f"{prefix}.dirty_evictions").inc(self.dirty_evictions)
        registry.counter(f"{prefix}.writes").inc(self.writes)
        registry.gauge(f"{prefix}.hit_rate").set(self.hit_rate)


@dataclass(frozen=True)
class CacheAccessResult:
    """Outcome of one cache access.

    ``victim_address``/``victim_dirty`` describe the line evicted to make
    room on a miss (``None`` if an empty way was available or on a hit).
    """

    hit: bool
    address: int
    victim_address: int | None = None
    victim_dirty: bool = False


class Cache:
    """LRU set-associative cache tracking tags and dirty bits only."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        # Each set maps tag -> [lru_stamp, dirty]; small dicts keep lookups O(1).
        self._sets: list[dict[int, list]] = [dict() for _ in range(config.num_sets)]
        self._clock = 0

    def _locate(self, address: int) -> tuple[dict[int, list], int]:
        line = address >> self._line_shift
        return self._sets[line & self._set_mask], line

    def access(self, address: int, is_write: bool = False) -> CacheAccessResult:
        """Look up ``address``; on a miss, allocate and report the victim."""
        self.stats.accesses += 1
        if is_write:
            self.stats.writes += 1
        self._clock += 1
        cache_set, tag = self._locate(address)
        entry = cache_set.get(tag)
        if entry is not None:
            self.stats.hits += 1
            entry[0] = self._clock
            if is_write:
                entry[1] = True
            return CacheAccessResult(hit=True, address=address)

        self.stats.misses += 1
        victim_address = None
        victim_dirty = False
        if len(cache_set) >= self.config.associativity:
            victim_tag = min(cache_set, key=lambda t: cache_set[t][0])
            victim_dirty = cache_set[victim_tag][1]
            del cache_set[victim_tag]
            victim_address = victim_tag << self._line_shift
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.dirty_evictions += 1
        cache_set[tag] = [self._clock, is_write]
        return CacheAccessResult(
            hit=False,
            address=address,
            victim_address=victim_address,
            victim_dirty=victim_dirty,
        )

    def probe(self, address: int) -> bool:
        """True if ``address`` is resident; does not update LRU or stats."""
        cache_set, tag = self._locate(address)
        return tag in cache_set

    @property
    def occupancy(self) -> int:
        """Number of lines currently resident across all sets."""
        return sum(len(cache_set) for cache_set in self._sets)

    def mark_dirty(self, address: int) -> bool:
        """Set the dirty bit on a resident line; returns residency."""
        cache_set, tag = self._locate(address)
        entry = cache_set.get(tag)
        if entry is None:
            return False
        entry[1] = True
        return True

    def invalidate(self, address: int) -> bool:
        """Drop a line without write-back; returns True if it was resident."""
        cache_set, tag = self._locate(address)
        return cache_set.pop(tag, None) is not None

    def pop_line(self, address: int) -> tuple[bool, bool]:
        """Remove a line, reporting ``(was_resident, was_dirty)``.

        Used for back-invalidation in an inclusive hierarchy, where a dirty
        L1 copy being dropped must still reach the write-back path.
        """
        cache_set, tag = self._locate(address)
        entry = cache_set.pop(tag, None)
        if entry is None:
            return False, False
        return True, entry[1]

    def flush_dirty(self) -> list[int]:
        """Clean every dirty line, returning their addresses.

        Models the periodic OS-induced flush of Section 5.1 ("dirty lines of
        caches are flushed every 25 million cycles").  Lines stay resident
        but become clean; the caller encrypts and writes them back.
        """
        flushed = []
        for cache_set in self._sets:
            for tag, entry in cache_set.items():
                if entry[1]:
                    entry[1] = False
                    flushed.append(tag << self._line_shift)
        return flushed

    def resident_lines(self) -> list[int]:
        """Addresses of all resident lines (diagnostics / integration tests)."""
        lines = []
        for cache_set in self._sets:
            lines.extend(tag << self._line_shift for tag in cache_set)
        return lines

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)
