"""Functional backing store: the unprotected RAM of Figure 2.

Holds, per cache-line-sized block: the (encrypted) data bytes and the
associated sequence number, exactly as the paper lays physical memory out
("Encrypted RAM Block (32 bytes) | counter").  The integrity substrate can
additionally attach a MAC per line.

Everything here is *outside* the protected domain — tests in
:mod:`repro.secure.threat` treat this object as the adversary's view.
"""

from __future__ import annotations

from repro.memory.address import AddressMap, DEFAULT_ADDRESS_MAP

__all__ = ["BackingStore"]


class BackingStore:
    """Sparse line-granular memory with co-located sequence numbers."""

    def __init__(self, address_map: AddressMap = DEFAULT_ADDRESS_MAP):
        self.address_map = address_map
        self._data: dict[int, bytes] = {}
        self._seqnums: dict[int, int] = {}
        self._macs: dict[int, bytes] = {}

    # -- data ---------------------------------------------------------------

    def read_line(self, address: int) -> bytes:
        """Read the (encrypted) bytes of the line containing ``address``."""
        line = self.address_map.line_address(address)
        blank = bytes(self.address_map.line_bytes)
        return self._data.get(line, blank)

    def has_line(self, address: int) -> bool:
        """True if the line containing ``address`` was ever written."""
        return self.address_map.line_address(address) in self._data

    def write_line(self, address: int, data: bytes) -> None:
        """Store line bytes (must be exactly one line long)."""
        if len(data) != self.address_map.line_bytes:
            raise ValueError(
                f"line must be {self.address_map.line_bytes} bytes, got {len(data)}"
            )
        self._data[self.address_map.line_address(address)] = bytes(data)

    # -- sequence numbers -----------------------------------------------------

    def read_seqnum(self, address: int) -> int | None:
        """Sequence number stored next to the line.

        Returns ``None`` for a line whose counter was never written, so the
        secure controller can substitute the page's mapping-time root (the
        value the counter array conceptually holds after page setup).
        """
        return self._seqnums.get(self.address_map.line_address(address))

    def write_seqnum(self, address: int, seqnum: int) -> None:
        """Store the line's counter (the write-back path's update)."""
        if seqnum < 0:
            raise ValueError(f"seqnum must be non-negative, got {seqnum}")
        self._seqnums[self.address_map.line_address(address)] = seqnum

    # -- MACs -----------------------------------------------------------------

    def read_mac(self, address: int) -> bytes | None:
        """The line's stored MAC, or None."""
        return self._macs.get(self.address_map.line_address(address))

    def write_mac(self, address: int, mac: bytes) -> None:
        """Store the line's MAC."""
        self._macs[self.address_map.line_address(address)] = bytes(mac)

    # -- adversary / diagnostics ----------------------------------------------

    def tamper_line(self, address: int, flip_mask: bytes) -> None:
        """Adversarially XOR ``flip_mask`` into a stored line (threat model)."""
        line = self.address_map.line_address(address)
        current = bytearray(self.read_line(line))
        for i, flip in enumerate(flip_mask[: len(current)]):
            current[i] ^= flip
        self._data[line] = bytes(current)

    def stored_lines(self) -> list[int]:
        """Addresses of all lines ever written (adversary's observable set)."""
        return sorted(self._data)

    def seqnum_lines(self) -> list[int]:
        """Addresses of all lines with a stored counter.

        In timing-only mode the counter array is populated while the data
        array stays empty, so this set can be wider than
        :meth:`stored_lines`; the page re-encryption path walks it to reach
        every counter-bearing line of a page.
        """
        return sorted(self._seqnums)

    def __len__(self) -> int:
        return len(self._data)
