"""Address arithmetic shared by every memory-system component.

The architecture works on 32-byte cache lines inside 4KB virtual pages
(Table 1 / Section 7.2 of the paper: 4KB pages, 32-byte lines, 128 lines per
page).  All simulator components address memory by *byte virtual address*
and convert with the helpers here, so line/page geometry is defined exactly
once.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AddressMap", "DEFAULT_ADDRESS_MAP"]


def _check_power_of_two(value: int, name: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class AddressMap:
    """Geometry of the address space: line size and page size in bytes."""

    line_bytes: int = 32
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        _check_power_of_two(self.line_bytes, "line_bytes")
        _check_power_of_two(self.page_bytes, "page_bytes")
        if self.page_bytes % self.line_bytes:
            raise ValueError("page_bytes must be a multiple of line_bytes")

    @property
    def line_shift(self) -> int:
        return self.line_bytes.bit_length() - 1

    @property
    def page_shift(self) -> int:
        return self.page_bytes.bit_length() - 1

    @property
    def lines_per_page(self) -> int:
        return self.page_bytes // self.line_bytes

    def line_address(self, address: int) -> int:
        """Byte address of the start of the line containing ``address``."""
        return address & ~(self.line_bytes - 1)

    def line_index(self, address: int) -> int:
        """Global line number of ``address``."""
        return address >> self.line_shift

    def page_number(self, address: int) -> int:
        """Virtual page number of ``address``."""
        return address >> self.page_shift

    def page_base(self, address: int) -> int:
        """Byte address of the start of the page containing ``address``."""
        return address & ~(self.page_bytes - 1)

    def line_in_page(self, address: int) -> int:
        """Index of the line within its page (0..lines_per_page-1)."""
        return (address >> self.line_shift) & (self.lines_per_page - 1)


DEFAULT_ADDRESS_MAP = AddressMap()
