"""Fault injection and resilience validation for the secure memory pipeline.

The paper *assumes* an integrity substrate that detects tampering with
off-chip data, counters and MAC-tree nodes (Section 2.2); this package
turns that assumption into something testable.  A deterministic, seeded
:class:`~repro.faults.injector.FaultInjector` plays the untrusted-DRAM
adversary (and plain hardware corruption) against a live controller, and a
:class:`~repro.faults.campaign.FaultCampaign` sweeps fault types x rates to
produce a machine-readable detection/recovery matrix.

Public surface:

* :class:`~repro.faults.injector.FaultType` — the attack/failure taxonomy.
* :class:`~repro.faults.injector.FaultInjector` — wraps a controller's
  backing store, DRAM and integrity tree with injection hooks.
* :class:`~repro.faults.campaign.FaultCampaign` /
  :class:`~repro.faults.campaign.CampaignReport` — the sweep runner and its
  report.
* :class:`~repro.faults.orchestration.SweepChaos` /
  :func:`~repro.faults.orchestration.run_sweep_soak` — seeded sabotage of
  the sweep *executor* itself (worker kills, hangs, cache corruption) and
  the soak proving the supervisor recovers to bit-identical results.
"""

from repro.faults.injector import FaultInjector, FaultType, InjectedFault
from repro.faults.campaign import (
    CampaignCell,
    CampaignReport,
    FaultCampaign,
    run_smoke_campaign,
)
from repro.faults.orchestration import (
    ChaosSpec,
    SweepChaos,
    render_soak_report,
    run_sweep_soak,
)

__all__ = [
    "FaultType",
    "FaultInjector",
    "InjectedFault",
    "CampaignCell",
    "CampaignReport",
    "FaultCampaign",
    "run_smoke_campaign",
    "ChaosSpec",
    "SweepChaos",
    "run_sweep_soak",
    "render_soak_report",
]
